"""Seeded random-workload generation for the soundness fuzzer.

A :class:`FuzzCase` is one fully self-contained differential-test input:
mesh dimensions, a stream set (coordinates, priorities, timing parameters,
release phases) and the oracle knobs (simulation horizon, residency margin,
bound perturbation). Cases serialise to plain JSON so counterexamples can
be committed to a corpus and replayed bit-for-bit (:mod:`repro.fuzz.corpus`).

:func:`generate_case` draws a case from a seed through one of several
*presets*:

``uniform``
    The paper's traffic model scaled down: distinct random sources, uniform
    destinations, uniform priorities/periods/lengths.
``chain``
    An L-shaped convoy engineered so consecutive streams overlap by exactly
    one channel while streams two apart are channel-disjoint — the deepest
    possible blocking-dependency graph for the stream count, stressing
    INDIRECT elements and ``Modify_Diagram``.
``hotspot``
    Every stream targets one node (the paper's Fig. 1 host): maximal direct
    contention on the final channels.
``funnel``
    All sources on the left edge aiming at the two rightmost columns: long
    paths whose X-segments are disjoint but whose Y-segments collide,
    mixing DIRECT and INDIRECT relations.

All randomness flows through one :class:`numpy.random.Generator` seeded per
case, so ``generate_case(seed, cfg)`` is a pure function of its arguments.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core.streams import MessageStream, StreamSet
from ..errors import AnalysisError
from ..topology.mesh import Mesh2D
from ..topology.routing import XYRouting

__all__ = ["FuzzStream", "FuzzCase", "GeneratorConfig", "generate_case", "PRESETS"]

PRESETS = ("uniform", "chain", "hotspot", "funnel")

#: JSON schema version written into serialised cases.
CASE_SCHEMA = 1


@dataclass(frozen=True)
class FuzzStream:
    """One stream of a fuzz case, with mesh coordinates and release phase."""

    stream_id: int
    src_xy: Tuple[int, int]
    dst_xy: Tuple[int, int]
    priority: int
    period: int
    length: int
    deadline: int
    phase: int = 0

    def to_spec(self) -> Dict[str, Any]:
        return {
            "id": self.stream_id,
            "src": list(self.src_xy),
            "dst": list(self.dst_xy),
            "priority": self.priority,
            "period": self.period,
            "length": self.length,
            "deadline": self.deadline,
            "phase": self.phase,
        }

    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "FuzzStream":
        return cls(
            stream_id=int(spec["id"]),
            src_xy=(int(spec["src"][0]), int(spec["src"][1])),
            dst_xy=(int(spec["dst"][0]), int(spec["dst"][1])),
            priority=int(spec["priority"]),
            period=int(spec["period"]),
            length=int(spec["length"]),
            deadline=int(spec["deadline"]),
            phase=int(spec.get("phase", 0)),
        )


@dataclass(frozen=True)
class FuzzCase:
    """A self-contained differential-test input (mesh + streams + knobs).

    ``bound_delta`` is the self-test perturbation: the oracle checks
    observed delays against ``max(1, U_i - bound_delta)``, so any positive
    value weakens the analysis bound artificially. ``0`` (the default)
    checks the real analysis.
    """

    width: int
    height: int
    streams: Tuple[FuzzStream, ...]
    sim_time: int
    residency_margin: int = 1
    bound_delta: int = 0
    seed: Optional[int] = None
    preset: str = "uniform"

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise AnalysisError(
                f"fuzz case mesh must be at least 1x1, got "
                f"{self.width}x{self.height}"
            )
        if not self.streams:
            raise AnalysisError("fuzz case needs at least one stream")
        if self.sim_time < 1:
            raise AnalysisError("fuzz case sim_time must be positive")
        if self.bound_delta < 0:
            raise AnalysisError("bound_delta must be >= 0")
        sources = set()
        for s in self.streams:
            for label, (x, y) in (("src", s.src_xy), ("dst", s.dst_xy)):
                if not (0 <= x < self.width and 0 <= y < self.height):
                    raise AnalysisError(
                        f"stream {s.stream_id}: {label} {(x, y)} outside "
                        f"{self.width}x{self.height} mesh"
                    )
            if s.src_xy == s.dst_xy:
                raise AnalysisError(
                    f"stream {s.stream_id}: source equals destination "
                    f"{s.src_xy}"
                )
            if s.src_xy in sources:
                # The paper's traffic model: at most one stream per source
                # node. Two streams sharing a source (and priority) would
                # also share an injection VC, a coupling the analysis does
                # not model — keep it out of the differential input space.
                raise AnalysisError(
                    f"stream {s.stream_id}: duplicate source {s.src_xy}"
                )
            sources.add(s.src_xy)

    # ------------------------------------------------------------------ #
    # Model construction
    # ------------------------------------------------------------------ #

    def build(self) -> Tuple[Mesh2D, XYRouting, StreamSet]:
        """Materialise the mesh, routing and stream set of this case."""
        mesh = Mesh2D(self.width, self.height)
        routing = XYRouting(mesh)
        streams = StreamSet()
        for s in self.streams:
            streams.add(MessageStream(
                stream_id=s.stream_id,
                src=mesh.node_xy(*s.src_xy),
                dst=mesh.node_xy(*s.dst_xy),
                priority=s.priority,
                period=s.period,
                length=s.length,
                deadline=s.deadline,
            ))
        return mesh, routing, streams

    def phases(self) -> Dict[int, int]:
        """Per-stream release offsets (all zero = the critical instant)."""
        return {s.stream_id: s.phase for s in self.streams}

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #

    def to_spec(self) -> Dict[str, Any]:
        return {
            "schema": CASE_SCHEMA,
            "mesh": {"width": self.width, "height": self.height},
            "streams": [s.to_spec() for s in self.streams],
            "sim_time": self.sim_time,
            "residency_margin": self.residency_margin,
            "bound_delta": self.bound_delta,
            "seed": self.seed,
            "preset": self.preset,
        }

    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "FuzzCase":
        schema = int(spec.get("schema", CASE_SCHEMA))
        if schema != CASE_SCHEMA:
            raise AnalysisError(
                f"unsupported fuzz-case schema {schema} (expected "
                f"{CASE_SCHEMA})"
            )
        mesh = spec.get("mesh", {})
        return cls(
            width=int(mesh["width"]),
            height=int(mesh["height"]),
            streams=tuple(
                FuzzStream.from_spec(s) for s in spec["streams"]
            ),
            sim_time=int(spec["sim_time"]),
            residency_margin=int(spec.get("residency_margin", 1)),
            bound_delta=int(spec.get("bound_delta", 0)),
            seed=spec.get("seed"),
            preset=str(spec.get("preset", "uniform")),
        )


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the random case generator (picklable, all primitives)."""

    width: int = 4
    height: int = 4
    max_streams: int = 8
    period_range: Tuple[int, int] = (16, 160)
    length_range: Tuple[int, int] = (2, 12)
    sim_time: int = 2500
    residency_margin: int = 1
    bound_delta: int = 0
    #: Probability that a case uses random release phases instead of the
    #: all-zero critical instant.
    phase_probability: float = 0.3
    presets: Tuple[str, ...] = PRESETS

    def __post_init__(self) -> None:
        if self.width < 2 and self.height < 2:
            raise AnalysisError("generator mesh needs at least two nodes")
        if self.max_streams < 1:
            raise AnalysisError("max_streams must be >= 1")
        unknown = set(self.presets) - set(PRESETS)
        if unknown:
            raise AnalysisError(f"unknown presets {sorted(unknown)}")
        if not self.presets:
            raise AnalysisError("need at least one preset")


# ---------------------------------------------------------------------- #
# Per-preset placement
# ---------------------------------------------------------------------- #


def _draw_timing(rng: np.random.Generator, cfg: GeneratorConfig) -> Tuple[int, int]:
    period = int(rng.integers(cfg.period_range[0], cfg.period_range[1] + 1))
    length = int(rng.integers(cfg.length_range[0], cfg.length_range[1] + 1))
    return period, length


def _place_uniform(
    rng: np.random.Generator, cfg: GeneratorConfig
) -> List[Tuple[Tuple[int, int], Tuple[int, int], int]]:
    """Random distinct sources, uniform destinations, uniform priorities."""
    nodes = cfg.width * cfg.height
    n = int(rng.integers(2, min(cfg.max_streams, nodes) + 1))
    levels = int(rng.integers(1, min(n, 5) + 1))
    sources = rng.choice(nodes, size=n, replace=False)
    out = []
    for src in (int(s) for s in sources):
        dst = int(rng.integers(0, nodes - 1))
        if dst >= src:
            dst += 1
        priority = int(rng.integers(1, levels + 1))
        out.append((
            (src % cfg.width, src // cfg.width),
            (dst % cfg.width, dst // cfg.width),
            priority,
        ))
    return out


def _l_path(width: int, height: int) -> List[Tuple[int, int]]:
    """The L-shaped node walk row 0 rightward then last column downward.

    X-Y routing between any two nodes of this walk follows the walk itself
    (x-dimension first, then y), so stream segments along it overlap exactly
    where the walk overlaps.
    """
    path = [(x, 0) for x in range(width)]
    path.extend((width - 1, y) for y in range(1, height))
    return path


def _place_chain(
    rng: np.random.Generator, cfg: GeneratorConfig
) -> List[Tuple[Tuple[int, int], Tuple[int, int], int]]:
    """Convoy along the L-path: stream ``k`` spans walk channels
    ``[k, k+1]``, so it shares a channel with ``k±1`` only. Priorities
    ascend with ``k``: stream 0 is directly blocked by 1, indirectly by
    2..n-1 through the full-depth chain."""
    path = _l_path(cfg.width, cfg.height)
    max_chain = len(path) - 3  # streams k: src path[k], dst path[k+2]
    if max_chain < 2:
        return _place_uniform(rng, cfg)
    n = int(rng.integers(2, min(cfg.max_streams, max_chain) + 1))
    start = int(rng.integers(0, max_chain - n + 1))
    out = []
    for k in range(n):
        i = start + k
        out.append((path[i], path[i + 2], k + 1))
    return out


def _place_hotspot(
    rng: np.random.Generator, cfg: GeneratorConfig
) -> List[Tuple[Tuple[int, int], Tuple[int, int], int]]:
    """Many-to-one: distinct random sources all sending to one node."""
    nodes = cfg.width * cfg.height
    hotspot = int(rng.integers(0, nodes))
    others = [i for i in range(nodes) if i != hotspot]
    n = int(rng.integers(2, min(cfg.max_streams, len(others)) + 1))
    picked = rng.choice(len(others), size=n, replace=False)
    levels = int(rng.integers(1, min(n, 5) + 1))
    hx, hy = hotspot % cfg.width, hotspot // cfg.width
    out = []
    for i in sorted(int(p) for p in picked):
        src = others[i]
        out.append((
            (src % cfg.width, src // cfg.width),
            (hx, hy),
            int(rng.integers(1, levels + 1)),
        ))
    return out


def _place_funnel(
    rng: np.random.Generator, cfg: GeneratorConfig
) -> List[Tuple[Tuple[int, int], Tuple[int, int], int]]:
    """Left-edge sources funnelling into the rightmost columns."""
    if cfg.width < 2:
        return _place_uniform(rng, cfg)
    n = int(rng.integers(2, min(cfg.max_streams, cfg.height) + 1))
    rows = rng.choice(cfg.height, size=n, replace=False)
    levels = int(rng.integers(1, min(n, 5) + 1))
    out = []
    for y in sorted(int(r) for r in rows):
        dx = int(rng.integers(max(0, cfg.width - 2), cfg.width))
        dy = int(rng.integers(0, cfg.height))
        if (dx, dy) == (0, y):
            dx = cfg.width - 1
        out.append(((0, y), (dx, dy), int(rng.integers(1, levels + 1))))
    return out


_PLACERS = {
    "uniform": _place_uniform,
    "chain": _place_chain,
    "hotspot": _place_hotspot,
    "funnel": _place_funnel,
}

#: Preset sampling weights (uniform traffic is the bulk; the adversarial
#: presets each get a steady share of the seed budget).
_PRESET_WEIGHTS = {"uniform": 0.45, "chain": 0.25, "hotspot": 0.15,
                   "funnel": 0.15}


def generate_case(seed: int, cfg: GeneratorConfig) -> FuzzCase:
    """Draw one fuzz case deterministically from ``(seed, cfg)``."""
    rng = np.random.default_rng(seed)
    presets = list(cfg.presets)
    weights = np.array([_PRESET_WEIGHTS[p] for p in presets], dtype=float)
    preset = presets[int(rng.choice(len(presets), p=weights / weights.sum()))]
    placement = _PLACERS[preset](rng, cfg)

    use_phases = bool(rng.random() < cfg.phase_probability)
    streams = []
    for i, (src_xy, dst_xy, priority) in enumerate(placement):
        period, length = _draw_timing(rng, cfg)
        phase = int(rng.integers(0, period)) if use_phases else 0
        streams.append(FuzzStream(
            stream_id=i,
            src_xy=src_xy,
            dst_xy=dst_xy,
            priority=priority,
            period=period,
            length=length,
            deadline=period,
            phase=phase,
        ))
    return FuzzCase(
        width=cfg.width,
        height=cfg.height,
        streams=tuple(streams),
        sim_time=cfg.sim_time,
        residency_margin=cfg.residency_margin,
        bound_delta=cfg.bound_delta,
        seed=seed,
        preset=preset,
    )
