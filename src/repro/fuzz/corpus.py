"""Counterexample corpus: JSON serialisation and deterministic replay.

A corpus entry is one shrunk counterexample with full provenance::

    {
      "schema": 1,
      "kind": "soundness",
      "violations": [{"kind": ..., "detail": ..., ...}],
      "case": { ... FuzzCase.to_spec() ... },        # the shrunk case
      "original_case": { ... },                      # as drawn by the seed
      "shrink": {"evals": 37, "streams_before": 6, "streams_after": 1}
    }

Entries live one-per-file under a corpus directory (default
``fuzz-corpus/``), named ``cex-<kind>-seed<seed>-<digest>.json`` so that
re-finding the same counterexample is idempotent. :func:`replay` re-runs
the oracle on the stored case and reports whether the recorded violation
kind still reproduces — the gate both the nightly CI job and
``repro fuzz --replay`` stand on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Tuple, Union

from ..errors import AnalysisError
from .generator import FuzzCase
from .oracle import CaseResult, FuzzViolation, run_case

__all__ = [
    "CORPUS_SCHEMA",
    "counterexample_spec",
    "write_counterexample",
    "load_counterexample",
    "ReplayResult",
    "replay",
]

CORPUS_SCHEMA = 1


def counterexample_spec(
    kind: str,
    case: FuzzCase,
    violations: Sequence[FuzzViolation],
    *,
    original: Optional[FuzzCase] = None,
    shrink_evals: int = 0,
) -> Dict[str, Any]:
    """Build the JSON document for one counterexample."""
    spec: Dict[str, Any] = {
        "schema": CORPUS_SCHEMA,
        "kind": kind,
        "violations": [v.to_spec() for v in violations],
        "case": case.to_spec(),
    }
    if original is not None:
        spec["original_case"] = original.to_spec()
        spec["shrink"] = {
            "evals": shrink_evals,
            "streams_before": len(original.streams),
            "streams_after": len(case.streams),
        }
    return spec


def write_counterexample(
    corpus_dir: Union[str, Path], spec: Dict[str, Any]
) -> Path:
    """Write one counterexample into the corpus; returns its path."""
    corpus = Path(corpus_dir)
    corpus.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(spec, indent=2, sort_keys=True) + "\n"
    digest = hashlib.sha256(
        json.dumps(spec["case"], sort_keys=True).encode()
    ).hexdigest()[:10]
    seed = spec["case"].get("seed")
    name = f"cex-{spec['kind']}-seed{seed}-{digest}.json"
    path = corpus / name
    path.write_text(payload)
    return path


def load_counterexample(
    path: Union[str, Path]
) -> Tuple[str, FuzzCase, Dict[str, Any]]:
    """Load one corpus entry: (kind, case, full spec)."""
    with open(path) as f:
        spec = json.load(f)
    schema = int(spec.get("schema", CORPUS_SCHEMA))
    if schema != CORPUS_SCHEMA:
        raise AnalysisError(
            f"unsupported corpus schema {schema} in {path}"
        )
    if "kind" not in spec or "case" not in spec:
        raise AnalysisError(
            f"corpus entry {path} needs 'kind' and 'case' keys"
        )
    return str(spec["kind"]), FuzzCase.from_spec(spec["case"]), spec


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of replaying one corpus entry."""

    path: Path
    recorded_kind: str
    result: CaseResult

    @property
    def reproduced(self) -> bool:
        """True iff a violation of the recorded kind still occurs."""
        return self.recorded_kind in self.result.kinds()

    def summary(self) -> str:
        case = self.result.case
        head = (
            f"{self.path.name}: {case.width}x{case.height} mesh, "
            f"{len(case.streams)} stream(s), sim_time={case.sim_time}"
        )
        if self.reproduced:
            lines = [head, f"REPRODUCED ({self.recorded_kind}):"]
            lines += [
                f"  {v.detail}" for v in self.result.violations
                if v.kind == self.recorded_kind
            ]
        else:
            lines = [
                head,
                f"not reproduced: recorded kind {self.recorded_kind!r}, "
                f"observed {list(self.result.kinds()) or 'no violations'}",
            ]
        return "\n".join(lines)


def replay(path: Union[str, Path]) -> ReplayResult:
    """Re-run the oracle on a stored counterexample."""
    kind, case, _ = load_counterexample(path)
    result = run_case(case)
    return ReplayResult(path=Path(path), recorded_kind=kind, result=result)
