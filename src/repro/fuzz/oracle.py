"""The differential oracle: run one case through analysis and simulation
and check the reproduction's standing invariants.

Every registered bound backend (:mod:`repro.core.backends`) runs on every
case — the oracle is *cross-backend*: soundness is checked per backend
against the same simulation, refinement relations are checked between
backends, and each backend's verdict digest is pinned for determinism.

For a :class:`~repro.fuzz.generator.FuzzCase` the oracle checks:

``nondeterminism``
    Two independently constructed analyzers must produce identical bounds
    — per backend (the analysis is a pure function of the stream set and
    the backend's configuration). Each backend's canonical verdict digest
    (sha256 over the sorted ``stream id -> U`` map) must be identical
    across constructions.
``monotonicity``
    A backend that declares ``refines="X"`` (e.g. ``tighter`` refines
    ``kim98``) must never be looser than ``X``: per stream its bound is
    ``<=`` X's whenever X's is finite, and its admitted set is a superset
    of X's — the tighter analysis never rejects a stream set the
    reference admits.
``divergence``
    The event-driven fast path and the reference ``_step_slow`` loop must
    produce bit-identical statistics: same per-stream delay samples (in
    order), same transfer totals, same unfinished count.
``soundness``
    For every stream a backend *admits*, no simulated transmission
    delay may exceed that backend's ``U_i``. Admission requires ``0 <
    U_i <= min(T_i, D_i)`` for the stream itself AND for every member of
    its transitive HP closure. Both halves scope the check to what the
    paper actually claims:

    * the ``min`` with the period keeps self-interference out: a stream
      whose bound exceeds its own period legitimately queues behind its
      previous message at the source, a delay component the analysis
      never covers (the paper inflates ``T := U`` before simulating, see
      :mod:`repro.analysis.experiments`);
    * the closure condition mirrors the timing diagram's construction,
      which confines every HP member instance to its own period window
      ``(kT, (k+1)T]`` — valid exactly when that member itself completes
      within its window. The paper's theorem is about sets that pass
      ``Determine-Feasibility`` wholesale; ``U_i`` for a stream whose
      blockers are themselves infeasible is conditional on an assumption
      known to be false (see EXPERIMENTS.md, finding F-7).
``sim-error``
    The simulator must not raise (deadlock watchdog, internal invariant)
    on any generated workload; X-Y routing is deadlock-free, so any raise
    is a model bug.

A positive ``case.bound_delta`` weakens every admitted bound — of every
backend — to ``max(1, U_i - bound_delta)`` before the soundness
comparison: the self-test hook that proves the harness can catch, shrink
and replay a genuinely unsound analysis, regardless of which backend it
ships in.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..core import backends as _backends
from ..errors import ReproError
from ..sim.network import WormholeSimulator
from ..sim.stats import StatsCollector
from .generator import FuzzCase

__all__ = [
    "FuzzViolation",
    "CaseResult",
    "run_case",
    "stats_fingerprint",
    "bounds_digest",
]


@dataclass(frozen=True)
class FuzzViolation:
    """One invariant violation observed while running a case."""

    # "soundness" | "divergence" | "nondeterminism" | "sim-error"
    # | "monotonicity"
    kind: str
    detail: str
    stream_id: Optional[int] = None
    observed: Optional[int] = None
    bound: Optional[int] = None
    #: Bound backend the violation is attributed to (``None`` for
    #: backend-independent checks such as simulator divergence).
    backend: Optional[str] = None

    def to_spec(self) -> Dict[str, object]:
        out: Dict[str, object] = {"kind": self.kind, "detail": self.detail}
        if self.stream_id is not None:
            out["stream_id"] = self.stream_id
        if self.observed is not None:
            out["observed"] = self.observed
        if self.bound is not None:
            out["bound"] = self.bound
        if self.backend is not None:
            out["backend"] = self.backend
        return out


@dataclass(frozen=True)
class CaseResult:
    """Everything the oracle learned about one case."""

    case: FuzzCase
    #: Streams the reference (kim98) analysis admits: finite bound within
    #: min(period, deadline), for the stream and its whole transitive HP
    #: closure.
    admitted: Tuple[int, ...]
    #: Effective (possibly perturbed) kim98 bound per admitted stream.
    bounds: Dict[int, int]
    #: Maximum observed delay per stream that produced samples.
    max_observed: Dict[int, int]
    violations: Tuple[FuzzViolation, ...]
    #: Raw bounds per registered backend (``backend name -> sid -> U``).
    backend_bounds: Dict[str, Dict[int, int]] = field(default_factory=dict)
    #: Admitted set per registered backend.
    backend_admitted: Dict[str, Tuple[int, ...]] = field(
        default_factory=dict
    )
    #: Canonical verdict digest per backend (sha256 hex).
    digests: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def kinds(self) -> Tuple[str, ...]:
        """Distinct violation kinds, sorted."""
        return tuple(sorted({v.kind for v in self.violations}))


def stats_fingerprint(
    sim: WormholeSimulator, stats: StatsCollector
) -> Dict[str, object]:
    """A canonical, comparable digest of one simulation run.

    Two runs of the same workload through semantically identical execution
    paths must produce equal fingerprints — per-stream sample sequences
    (order included), transfer totals and the unfinished count.
    """
    return {
        "samples": {sid: stats.samples(sid) for sid in stats.stream_ids()},
        "total_transfers": sim.total_transfers,
        "unfinished": stats.unfinished,
        "retransmissions": sim.retransmissions,
    }


def _fingerprint_diff(a: Dict[str, object], b: Dict[str, object]) -> str:
    """Human-readable first difference between two run fingerprints."""
    for key in ("total_transfers", "unfinished", "retransmissions"):
        if a[key] != b[key]:
            return f"{key}: fast={a[key]} slow={b[key]}"
    sa, sb = a["samples"], b["samples"]
    assert isinstance(sa, dict) and isinstance(sb, dict)
    for sid in sorted(set(sa) | set(sb)):
        va, vb = sa.get(sid), sb.get(sid)
        if va != vb:
            return (
                f"stream {sid} samples differ: fast has "
                f"{len(va or ())} samples, slow has {len(vb or ())}; "
                f"first mismatch at index "
                f"{next((i for i, (x, y) in enumerate(zip(va or (), vb or ())) if x != y), min(len(va or ()), len(vb or ())))}"
            )
    return "fingerprints differ in an unknown field"


def bounds_digest(bounds: Dict[int, int]) -> str:
    """Canonical sha256 digest of one backend's verdict map."""
    canonical = json.dumps(
        {str(sid): bounds[sid] for sid in sorted(bounds)},
        separators=(",", ":"), sort_keys=True,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _analysis_bounds(
    case: FuzzCase,
    backend: str = "kim98",
) -> Tuple[Dict[int, int], Dict[int, Tuple[int, ...]]]:
    """One fresh analysis pass under ``backend``.

    Returns ``(stream id -> upper bound over the deadline horizon,
    stream id -> HP-set member ids)``. The HP sets are backend
    *independent* (they derive from routes and priorities alone); only
    the bounds differ between backends.
    """
    _, routing, streams = case.build()
    analyzer = _backends.get(backend).analyzer(
        streams, routing, residency_margin=case.residency_margin
    )
    bounds = analyzer.determine_feasibility().upper_bounds()
    hp_ids = {sid: analyzer.hp_sets[sid].ids() for sid in bounds}
    return bounds, hp_ids


def _admitted(
    case: FuzzCase,
    bounds: Dict[int, int],
    hp_ids: Dict[int, Tuple[int, ...]],
) -> Tuple[int, ...]:
    """Streams whose bound the analysis actually stands behind.

    A stream is admitted when ``0 < U <= min(T, D)`` holds for itself and
    for every member of its transitive HP closure: the timing diagram
    confines each member instance to its own period window, which only
    models reality when that member finishes within its window.
    """
    by_id = {s.stream_id: s for s in case.streams}
    ok = {
        sid for sid, u in bounds.items()
        if 0 < u <= min(by_id[sid].period, by_id[sid].deadline)
    }
    changed = True
    while changed:
        changed = False
        for sid in sorted(ok):
            if any(m != sid and m not in ok for m in hp_ids.get(sid, ())):
                ok.discard(sid)
                changed = True
    return tuple(sorted(ok))


def run_case(
    case: FuzzCase,
    *,
    check_divergence: bool = True,
    analysis_repeats: int = 2,
) -> CaseResult:
    """Run the full differential pipeline on one case."""
    violations = []

    # --- analysis: every registered backend (+ determinism) ------------ #
    names = _backends.names()
    backend_bounds: Dict[str, Dict[int, int]] = {}
    digests: Dict[str, str] = {}
    hp_ids: Dict[int, Tuple[int, ...]] = {}
    for name in names:
        bounds, hp = _analysis_bounds(case, name)
        backend_bounds[name] = bounds
        digests[name] = bounds_digest(bounds)
        if not hp_ids:
            hp_ids = hp
    for _ in range(max(0, analysis_repeats - 1)):
        for name in names:
            again, _ = _analysis_bounds(case, name)
            if bounds_digest(again) != digests[name]:
                first = backend_bounds[name]
                diff = sorted(
                    sid for sid in first if again.get(sid) != first[sid]
                )
                violations.append(FuzzViolation(
                    kind="nondeterminism",
                    detail=(
                        f"repeated {name} analysis disagrees on streams "
                        f"{diff}: {[first[i] for i in diff]} vs "
                        f"{[again.get(i) for i in diff]}"
                    ),
                    backend=name,
                ))
        if any(v.kind == "nondeterminism" for v in violations):
            break

    by_id = {s.stream_id: s for s in case.streams}
    backend_admitted = {
        name: _admitted(case, backend_bounds[name], hp_ids)
        for name in names
    }
    bounds_raw = backend_bounds.get("kim98", backend_bounds[names[0]])
    admitted = backend_admitted.get("kim98", backend_admitted[names[0]])
    effective = {
        sid: max(1, bounds_raw[sid] - case.bound_delta) for sid in admitted
    }

    # --- refinement monotonicity --------------------------------------- #
    for name in names:
        ref = _backends.get(name).refines
        if ref is None or ref not in backend_bounds:
            continue
        ref_bounds, own_bounds = backend_bounds[ref], backend_bounds[name]
        for sid in sorted(ref_bounds):
            u_ref, u_own = ref_bounds[sid], own_bounds.get(sid)
            if u_ref > 0 and u_own is not None and (
                u_own < 0 or u_own > u_ref
            ):
                violations.append(FuzzViolation(
                    kind="monotonicity",
                    detail=(
                        f"{name} bound {u_own} for stream {sid} is looser "
                        f"than {ref} bound {u_ref}"
                    ),
                    stream_id=sid,
                    bound=u_own,
                    backend=name,
                ))
        lost = sorted(
            set(backend_admitted[ref]) - set(backend_admitted[name])
        )
        if lost:
            violations.append(FuzzViolation(
                kind="monotonicity",
                detail=(
                    f"{name} rejects streams {lost} that {ref} admits "
                    f"(admitted sets: {ref}={backend_admitted[ref]}, "
                    f"{name}={backend_admitted[name]})"
                ),
                backend=name,
            ))

    # --- simulation (fast path, + reference path) ---------------------- #
    phases = case.phases()

    def _simulate(fastpath: bool):
        mesh, routing, streams = case.build()
        sim = WormholeSimulator(
            mesh, routing, streams, warmup=0, fastpath=fastpath
        )
        stats = sim.simulate_streams(case.sim_time, phases=phases)
        return sim, stats

    try:
        sim_fast, stats_fast = _simulate(True)
    except ReproError as exc:
        violations.append(FuzzViolation(
            kind="sim-error",
            detail=f"fast path raised {type(exc).__name__}: {exc}",
        ))
        return CaseResult(
            case=case, admitted=admitted, bounds=effective,
            max_observed={}, violations=tuple(violations),
            backend_bounds=backend_bounds,
            backend_admitted=backend_admitted, digests=digests,
        )

    fp_fast = stats_fingerprint(sim_fast, stats_fast)
    if check_divergence:
        try:
            sim_slow, stats_slow = _simulate(False)
        except ReproError as exc:
            violations.append(FuzzViolation(
                kind="sim-error",
                detail=f"reference path raised {type(exc).__name__}: {exc}",
            ))
            sim_slow = stats_slow = None
        if sim_slow is not None:
            fp_slow = stats_fingerprint(sim_slow, stats_slow)
            if fp_fast != fp_slow:
                violations.append(FuzzViolation(
                    kind="divergence",
                    detail=(
                        "fast/reference statistics differ: "
                        + _fingerprint_diff(fp_fast, fp_slow)
                    ),
                ))

    # --- soundness: every backend's admitted bounds dominate the sim --- #
    max_observed = {
        sid: max(samples)
        for sid, samples in fp_fast["samples"].items()  # type: ignore[union-attr]
        if samples
    }
    for name in names:
        own_bounds = backend_bounds[name]
        for sid in backend_admitted[name]:
            observed = max_observed.get(sid)
            if observed is None:
                continue
            u = max(1, own_bounds[sid] - case.bound_delta)
            if observed > u:
                violations.append(FuzzViolation(
                    kind="soundness",
                    detail=(
                        f"[{name}] stream {sid} (P{by_id[sid].priority}) "
                        f"observed delay {observed} exceeds bound {u}"
                        + (f" (U={own_bounds[sid]} perturbed by "
                           f"-{case.bound_delta})"
                           if case.bound_delta else "")
                    ),
                    stream_id=sid,
                    observed=observed,
                    bound=u,
                    backend=name,
                ))

    return CaseResult(
        case=case,
        admitted=admitted,
        bounds=effective,
        max_observed=max_observed,
        violations=tuple(violations),
        backend_bounds=backend_bounds,
        backend_admitted=backend_admitted,
        digests=digests,
    )
