"""The differential oracle: run one case through analysis and simulation
and check the reproduction's standing invariants.

For a :class:`~repro.fuzz.generator.FuzzCase` the oracle checks:

``nondeterminism``
    Two independently constructed analyzers must produce identical bounds
    (the analysis is a pure function of the stream set).
``divergence``
    The event-driven fast path and the reference ``_step_slow`` loop must
    produce bit-identical statistics: same per-stream delay samples (in
    order), same transfer totals, same unfinished count.
``soundness``
    For every stream the analysis *admits*, no simulated transmission
    delay may exceed ``U_i``. Admission requires ``0 < U_i <= min(T_i,
    D_i)`` for the stream itself AND for every member of its transitive
    HP closure. Both halves scope the check to what the paper actually
    claims:

    * the ``min`` with the period keeps self-interference out: a stream
      whose bound exceeds its own period legitimately queues behind its
      previous message at the source, a delay component the analysis
      never covers (the paper inflates ``T := U`` before simulating, see
      :mod:`repro.analysis.experiments`);
    * the closure condition mirrors the timing diagram's construction,
      which confines every HP member instance to its own period window
      ``(kT, (k+1)T]`` — valid exactly when that member itself completes
      within its window. The paper's theorem is about sets that pass
      ``Determine-Feasibility`` wholesale; ``U_i`` for a stream whose
      blockers are themselves infeasible is conditional on an assumption
      known to be false (see EXPERIMENTS.md, finding F-7).
``sim-error``
    The simulator must not raise (deadlock watchdog, internal invariant)
    on any generated workload; X-Y routing is deadlock-free, so any raise
    is a model bug.

A positive ``case.bound_delta`` weakens every admitted bound to
``max(1, U_i - bound_delta)`` before the soundness comparison — the
self-test hook that proves the harness can catch, shrink and replay a
genuinely unsound analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..core.feasibility import FeasibilityAnalyzer
from ..errors import ReproError
from ..sim.network import WormholeSimulator
from ..sim.stats import StatsCollector
from .generator import FuzzCase

__all__ = ["FuzzViolation", "CaseResult", "run_case", "stats_fingerprint"]


@dataclass(frozen=True)
class FuzzViolation:
    """One invariant violation observed while running a case."""

    kind: str  # "soundness" | "divergence" | "nondeterminism" | "sim-error"
    detail: str
    stream_id: Optional[int] = None
    observed: Optional[int] = None
    bound: Optional[int] = None

    def to_spec(self) -> Dict[str, object]:
        out: Dict[str, object] = {"kind": self.kind, "detail": self.detail}
        if self.stream_id is not None:
            out["stream_id"] = self.stream_id
        if self.observed is not None:
            out["observed"] = self.observed
        if self.bound is not None:
            out["bound"] = self.bound
        return out


@dataclass(frozen=True)
class CaseResult:
    """Everything the oracle learned about one case."""

    case: FuzzCase
    #: Streams the analysis admits: finite bound within min(period,
    #: deadline), for the stream and its whole transitive HP closure.
    admitted: Tuple[int, ...]
    #: Effective (possibly perturbed) bound per admitted stream.
    bounds: Dict[int, int]
    #: Maximum observed delay per stream that produced samples.
    max_observed: Dict[int, int]
    violations: Tuple[FuzzViolation, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def kinds(self) -> Tuple[str, ...]:
        """Distinct violation kinds, sorted."""
        return tuple(sorted({v.kind for v in self.violations}))


def stats_fingerprint(
    sim: WormholeSimulator, stats: StatsCollector
) -> Dict[str, object]:
    """A canonical, comparable digest of one simulation run.

    Two runs of the same workload through semantically identical execution
    paths must produce equal fingerprints — per-stream sample sequences
    (order included), transfer totals and the unfinished count.
    """
    return {
        "samples": {sid: stats.samples(sid) for sid in stats.stream_ids()},
        "total_transfers": sim.total_transfers,
        "unfinished": stats.unfinished,
        "retransmissions": sim.retransmissions,
    }


def _fingerprint_diff(a: Dict[str, object], b: Dict[str, object]) -> str:
    """Human-readable first difference between two run fingerprints."""
    for key in ("total_transfers", "unfinished", "retransmissions"):
        if a[key] != b[key]:
            return f"{key}: fast={a[key]} slow={b[key]}"
    sa, sb = a["samples"], b["samples"]
    assert isinstance(sa, dict) and isinstance(sb, dict)
    for sid in sorted(set(sa) | set(sb)):
        va, vb = sa.get(sid), sb.get(sid)
        if va != vb:
            return (
                f"stream {sid} samples differ: fast has "
                f"{len(va or ())} samples, slow has {len(vb or ())}; "
                f"first mismatch at index "
                f"{next((i for i, (x, y) in enumerate(zip(va or (), vb or ())) if x != y), min(len(va or ()), len(vb or ())))}"
            )
    return "fingerprints differ in an unknown field"


def _analysis_bounds(
    case: FuzzCase,
) -> Tuple[Dict[int, int], Dict[int, Tuple[int, ...]]]:
    """One fresh analysis pass.

    Returns ``(stream id -> upper bound over the deadline horizon,
    stream id -> HP-set member ids)``.
    """
    _, routing, streams = case.build()
    analyzer = FeasibilityAnalyzer(
        streams, routing, residency_margin=case.residency_margin
    )
    bounds = analyzer.determine_feasibility().upper_bounds()
    hp_ids = {sid: analyzer.hp_sets[sid].ids() for sid in bounds}
    return bounds, hp_ids


def _admitted(
    case: FuzzCase,
    bounds: Dict[int, int],
    hp_ids: Dict[int, Tuple[int, ...]],
) -> Tuple[int, ...]:
    """Streams whose bound the analysis actually stands behind.

    A stream is admitted when ``0 < U <= min(T, D)`` holds for itself and
    for every member of its transitive HP closure: the timing diagram
    confines each member instance to its own period window, which only
    models reality when that member finishes within its window.
    """
    by_id = {s.stream_id: s for s in case.streams}
    ok = {
        sid for sid, u in bounds.items()
        if 0 < u <= min(by_id[sid].period, by_id[sid].deadline)
    }
    changed = True
    while changed:
        changed = False
        for sid in sorted(ok):
            if any(m != sid and m not in ok for m in hp_ids.get(sid, ())):
                ok.discard(sid)
                changed = True
    return tuple(sorted(ok))


def run_case(
    case: FuzzCase,
    *,
    check_divergence: bool = True,
    analysis_repeats: int = 2,
) -> CaseResult:
    """Run the full differential pipeline on one case."""
    violations = []

    # --- analysis (+ determinism) ------------------------------------- #
    bounds_raw, hp_ids = _analysis_bounds(case)
    for _ in range(max(0, analysis_repeats - 1)):
        again, _ = _analysis_bounds(case)
        if again != bounds_raw:
            diff = sorted(
                sid for sid in bounds_raw
                if again.get(sid) != bounds_raw[sid]
            )
            violations.append(FuzzViolation(
                kind="nondeterminism",
                detail=(
                    f"repeated analysis disagrees on streams {diff}: "
                    f"{[bounds_raw[i] for i in diff]} vs "
                    f"{[again.get(i) for i in diff]}"
                ),
            ))
            break

    by_id = {s.stream_id: s for s in case.streams}
    admitted = _admitted(case, bounds_raw, hp_ids)
    effective = {
        sid: max(1, bounds_raw[sid] - case.bound_delta) for sid in admitted
    }

    # --- simulation (fast path, + reference path) ---------------------- #
    phases = case.phases()

    def _simulate(fastpath: bool):
        mesh, routing, streams = case.build()
        sim = WormholeSimulator(
            mesh, routing, streams, warmup=0, fastpath=fastpath
        )
        stats = sim.simulate_streams(case.sim_time, phases=phases)
        return sim, stats

    try:
        sim_fast, stats_fast = _simulate(True)
    except ReproError as exc:
        violations.append(FuzzViolation(
            kind="sim-error",
            detail=f"fast path raised {type(exc).__name__}: {exc}",
        ))
        return CaseResult(
            case=case, admitted=admitted, bounds=effective,
            max_observed={}, violations=tuple(violations),
        )

    fp_fast = stats_fingerprint(sim_fast, stats_fast)
    if check_divergence:
        try:
            sim_slow, stats_slow = _simulate(False)
        except ReproError as exc:
            violations.append(FuzzViolation(
                kind="sim-error",
                detail=f"reference path raised {type(exc).__name__}: {exc}",
            ))
            sim_slow = stats_slow = None
        if sim_slow is not None:
            fp_slow = stats_fingerprint(sim_slow, stats_slow)
            if fp_fast != fp_slow:
                violations.append(FuzzViolation(
                    kind="divergence",
                    detail=(
                        "fast/reference statistics differ: "
                        + _fingerprint_diff(fp_fast, fp_slow)
                    ),
                ))

    # --- soundness ----------------------------------------------------- #
    max_observed = {
        sid: max(samples)
        for sid, samples in fp_fast["samples"].items()  # type: ignore[union-attr]
        if samples
    }
    for sid in admitted:
        observed = max_observed.get(sid)
        if observed is None:
            continue
        u = effective[sid]
        if observed > u:
            violations.append(FuzzViolation(
                kind="soundness",
                detail=(
                    f"stream {sid} (P{by_id[sid].priority}) observed delay "
                    f"{observed} exceeds bound {u}"
                    + (f" (U={bounds_raw[sid]} perturbed by "
                       f"-{case.bound_delta})" if case.bound_delta else "")
                ),
                stream_id=sid,
                observed=observed,
                bound=u,
            ))

    return CaseResult(
        case=case,
        admitted=admitted,
        bounds=effective,
        max_observed=max_observed,
        violations=tuple(violations),
    )
