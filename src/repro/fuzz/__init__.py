"""Differential soundness fuzzing: randomized workloads cross-validated
between the feasibility analysis and the flit-level simulator.

The subsystem is the repository's standing correctness gate (see
EXPERIMENTS.md, section "Soundness fuzzing"):

* :mod:`repro.fuzz.generator` — seeded random cases with adversarial
  presets (deep blocking chains, hotspots, funnels);
* :mod:`repro.fuzz.oracle` — per-case invariants, run for *every*
  registered bound backend: analysis determinism (pinned per-backend
  verdict digests), fast-path/reference-path bit-identity, per-backend
  ``U_i`` soundness, and refinement monotonicity (a backend declaring
  ``refines`` never rejects what its reference admits);
* :mod:`repro.fuzz.shrink` — greedy counterexample minimisation;
* :mod:`repro.fuzz.corpus` — JSON persistence and deterministic replay;
* :mod:`repro.fuzz.campaign` — parallel, time-boxable campaign driver and
  the ``--self-test`` canary.

CLI entry points: ``repro fuzz``, ``repro fuzz --replay``,
``repro fuzz --self-test``.
"""

from .campaign import (
    FuzzReport,
    SeedOutcome,
    run_fuzz_campaign,
    run_self_test,
)
from .corpus import ReplayResult, load_counterexample, replay, write_counterexample
from .generator import PRESETS, FuzzCase, FuzzStream, GeneratorConfig, generate_case
from .oracle import (
    CaseResult,
    FuzzViolation,
    bounds_digest,
    run_case,
    stats_fingerprint,
)
from .shrink import ShrinkResult, shrink_case

__all__ = [
    "FuzzCase",
    "FuzzStream",
    "GeneratorConfig",
    "generate_case",
    "PRESETS",
    "CaseResult",
    "FuzzViolation",
    "run_case",
    "stats_fingerprint",
    "bounds_digest",
    "ShrinkResult",
    "shrink_case",
    "ReplayResult",
    "replay",
    "load_counterexample",
    "write_counterexample",
    "FuzzReport",
    "SeedOutcome",
    "run_fuzz_campaign",
    "run_self_test",
]
