"""Counterexample shrinking: reduce a failing case to a minimal one.

Greedy delta-debugging over the case structure: repeatedly try a
simplification (drop a stream, halve a length or period, zero a phase,
shrink the simulation horizon, crop the mesh to the streams' bounding box)
and keep it iff the violation still reproduces. The predicate is "the
oracle still reports a violation of one of the original kinds", so a
shrunk soundness counterexample still violates soundness, not merely
*something*.

Every candidate evaluation is one full oracle run, so the total number of
evaluations is budgeted (``max_evals``); shrinking is best-effort, not
guaranteed-minimal — the classic trade for a fuzzing harness, where a
5-line counterexample found in seconds beats a 3-line one found in hours.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, FrozenSet, List, Optional, Tuple

from ..errors import ReproError
from .generator import FuzzCase, FuzzStream
from .oracle import run_case

__all__ = ["ShrinkResult", "shrink_case"]


@dataclass(frozen=True)
class ShrinkResult:
    """Outcome of one shrink run."""

    case: FuzzCase
    evals: int
    #: True if any simplification was accepted.
    improved: bool


def _default_predicate(kinds: FrozenSet[str]) -> Callable[[FuzzCase], bool]:
    def predicate(case: FuzzCase) -> bool:
        try:
            result = run_case(case)
        except ReproError:
            # A candidate that breaks case construction is not a valid
            # simplification.
            return False
        return bool(set(result.kinds()) & kinds)

    return predicate


def _crop_to_bounding_box(case: FuzzCase) -> Optional[FuzzCase]:
    """Translate all coordinates to the origin and crop the mesh."""
    xs = [c for s in case.streams for c in (s.src_xy[0], s.dst_xy[0])]
    ys = [c for s in case.streams for c in (s.src_xy[1], s.dst_xy[1])]
    min_x, min_y = min(xs), min(ys)
    width, height = max(xs) - min_x + 1, max(ys) - min_y + 1
    if (min_x, min_y) == (0, 0) and (width, height) == (case.width,
                                                        case.height):
        return None
    streams = tuple(
        dataclasses.replace(
            s,
            src_xy=(s.src_xy[0] - min_x, s.src_xy[1] - min_y),
            dst_xy=(s.dst_xy[0] - min_x, s.dst_xy[1] - min_y),
        )
        for s in case.streams
    )
    return dataclasses.replace(
        case, width=width, height=height, streams=streams
    )


def _stream_candidates(s: FuzzStream) -> List[FuzzStream]:
    """Simplified variants of one stream, most aggressive first."""
    out: List[FuzzStream] = []
    for length in (1, s.length // 2, s.length - 1):
        if 1 <= length < s.length:
            out.append(dataclasses.replace(s, length=length))
    for period in (s.length, s.period // 2, s.period - 1):
        if 1 <= period < s.period:
            out.append(dataclasses.replace(
                s, period=period, deadline=min(s.deadline, period) or 1
            ))
    if s.deadline != s.period:
        out.append(dataclasses.replace(s, deadline=s.period))
    if s.phase:
        out.append(dataclasses.replace(s, phase=0))
    return out


def shrink_case(
    case: FuzzCase,
    kinds: Tuple[str, ...],
    *,
    predicate: Optional[Callable[[FuzzCase], bool]] = None,
    max_evals: int = 200,
) -> ShrinkResult:
    """Shrink ``case`` while a violation of one of ``kinds`` reproduces.

    ``predicate`` overrides the default oracle re-run (used by tests to
    shrink against a cheap synthetic condition).
    """
    if predicate is None:
        predicate = _default_predicate(frozenset(kinds))
    evals = 0
    improved = False

    def holds(candidate: FuzzCase) -> bool:
        nonlocal evals
        evals += 1
        return predicate(candidate)

    current = case
    progress = True
    while progress and evals < max_evals:
        progress = False

        # Pass 1: drop whole streams, one at a time.
        for s in list(current.streams):
            if len(current.streams) <= 1 or evals >= max_evals:
                break
            candidate_streams = tuple(
                t for t in current.streams if t.stream_id != s.stream_id
            )
            try:
                candidate = dataclasses.replace(
                    current, streams=candidate_streams
                )
            except ReproError:  # pragma: no cover - defensive
                continue
            if holds(candidate):
                current = candidate
                progress = improved = True

        # Pass 2: shrink per-stream parameters. Candidates are recomputed
        # from the *current* stream after every accepted step, so a later
        # acceptance can never revert an earlier one.
        for sid in [s.stream_id for s in current.streams]:
            changed = True
            while changed and evals < max_evals:
                changed = False
                s = next(
                    t for t in current.streams if t.stream_id == sid
                )
                for variant in _stream_candidates(s):
                    if evals >= max_evals:
                        break
                    candidate_streams = tuple(
                        variant if t.stream_id == sid else t
                        for t in current.streams
                    )
                    try:
                        candidate = dataclasses.replace(
                            current, streams=candidate_streams
                        )
                    except ReproError:
                        continue
                    if holds(candidate):
                        current = candidate
                        progress = improved = changed = True
                        break

        # Pass 3: shrink the simulation horizon.
        for sim_time in (64, current.sim_time // 4, current.sim_time // 2):
            if evals >= max_evals:
                break
            if not 1 <= sim_time < current.sim_time:
                continue
            candidate = dataclasses.replace(current, sim_time=sim_time)
            if holds(candidate):
                current = candidate
                progress = improved = True
                break

        # Pass 4: crop the mesh to the streams' bounding box.
        if evals < max_evals:
            candidate = _crop_to_bounding_box(current)
            if candidate is not None and holds(candidate):
                current = candidate
                progress = improved = True

    return ShrinkResult(case=current, evals=evals, improved=improved)
