"""Campaign runner: fan seeds out, collect violations, shrink, persist.

A campaign is ``N`` independent seeds, each expanded to a case
(:mod:`repro.fuzz.generator`) and run through the differential oracle
(:mod:`repro.fuzz.oracle`). Seeds fan out over
:func:`repro.analysis.parallel.map_seeds` in batches, so campaigns can be
time-boxed (the nightly CI job) without giving up process-level
parallelism; per-seed results are bit-identical to a serial run.

Violating cases are shrunk (:mod:`repro.fuzz.shrink`) and written to the
corpus (:mod:`repro.fuzz.corpus`) in the parent process — violations are
rare, so the serial shrink cost is irrelevant next to the fanned-out
search.

:func:`run_self_test` is the harness's own canary: it injects a bound
perturbation (``bound_delta``), asserts the campaign catches it, shrinks
the counterexample, writes it to the corpus and replays it through the
public replay path. A harness that cannot catch a *known-broken* analysis
proves nothing about a sound one.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis.parallel import map_seeds
from ..errors import AnalysisError
from .corpus import counterexample_spec, replay, write_counterexample
from .generator import FuzzCase, GeneratorConfig, generate_case
from .oracle import FuzzViolation, run_case
from .shrink import shrink_case

__all__ = [
    "SeedOutcome",
    "FuzzReport",
    "run_fuzz_campaign",
    "run_self_test",
]


@dataclass(frozen=True)
class SeedOutcome:
    """Per-seed digest returned from the worker processes."""

    seed: int
    preset: str
    num_streams: int
    admitted: int
    checked: int
    violation_kinds: Tuple[str, ...]
    violations: Tuple[FuzzViolation, ...]
    #: Serialised case, present only when the seed violated (keeps IPC thin).
    case_spec: Optional[Dict[str, Any]] = None


def _run_one_seed(seed: int, cfg: GeneratorConfig) -> SeedOutcome:
    """Worker body: generate one case and run the oracle (picklable)."""
    case = generate_case(seed, cfg)
    result = run_case(case)
    return SeedOutcome(
        seed=seed,
        preset=case.preset,
        num_streams=len(case.streams),
        admitted=len(result.admitted),
        checked=sum(1 for sid in result.admitted
                    if sid in result.max_observed),
        violation_kinds=result.kinds(),
        violations=result.violations,
        case_spec=case.to_spec() if result.violations else None,
    )


@dataclass(frozen=True)
class CounterexampleRecord:
    """One shrunk-and-persisted counterexample."""

    seed: int
    kinds: Tuple[str, ...]
    path: Optional[str]
    streams_before: int
    streams_after: int
    shrink_evals: int


@dataclass(frozen=True)
class FuzzReport:
    """Outcome of one fuzz campaign."""

    seeds_run: int
    seeds_requested: int
    checked: int
    admitted: int
    outcomes_by_preset: Dict[str, int]
    violations: Tuple[SeedOutcome, ...]
    counterexamples: Tuple[CounterexampleRecord, ...]
    wall_seconds: float
    stopped_early: bool

    @property
    def sound(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        presets = ", ".join(
            f"{k}={v}" for k, v in sorted(self.outcomes_by_preset.items())
        )
        head = (
            f"{self.seeds_run}/{self.seeds_requested} seeds"
            f"{' (time budget hit)' if self.stopped_early else ''}, "
            f"{self.checked} bounded stream-checks "
            f"({self.admitted} admitted), presets: {presets}; "
            f"{self.wall_seconds:.1f}s"
        )
        if self.sound:
            return f"sound: 0 violations over {head}"
        lines = [f"UNSOUND: {len(self.violations)} violating seed(s) over "
                 f"{head}"]
        for outcome in self.violations:
            for v in outcome.violations:
                lines.append(f"  seed={outcome.seed} [{v.kind}] {v.detail}")
        for record in self.counterexamples:
            lines.append(
                f"  counterexample seed={record.seed}: shrunk "
                f"{record.streams_before} -> {record.streams_after} "
                f"stream(s) in {record.shrink_evals} evals"
                + (f", saved to {record.path}" if record.path else "")
            )
        return "\n".join(lines)


def run_fuzz_campaign(
    *,
    seeds: int = 100,
    seed0: int = 0,
    generator: Optional[GeneratorConfig] = None,
    jobs: int = 1,
    time_budget: Optional[float] = None,
    batch_size: int = 32,
    shrink: bool = True,
    max_shrink: int = 5,
    shrink_evals: int = 200,
    corpus_dir: Optional[str] = None,
) -> FuzzReport:
    """Run one soundness-fuzzing campaign.

    Parameters
    ----------
    seeds, seed0:
        Seed count and first seed (cases are pure functions of the seed).
    generator:
        Case-generator configuration (mesh size, ranges, perturbation).
    jobs:
        Worker processes; ``0`` means one per CPU, ``1`` runs serially.
    time_budget:
        Soft wall-clock cap in seconds: no new batch starts once exceeded
        (already-running batches finish, so the cap can overshoot by one
        batch).
    shrink, max_shrink, shrink_evals:
        Shrink up to ``max_shrink`` violating cases, each with an oracle
        budget of ``shrink_evals`` evaluations.
    corpus_dir:
        When given, shrunk counterexamples are written there as JSON.
    """
    if seeds < 1:
        raise AnalysisError("need at least one seed")
    if jobs < 0:
        raise AnalysisError(f"jobs must be >= 0, got {jobs}")
    cfg = generator or GeneratorConfig()
    t0 = time.perf_counter()
    worker = functools.partial(_run_one_seed, cfg=cfg)
    processes = None if jobs == 0 else jobs

    all_seeds = list(range(seed0, seed0 + seeds))
    outcomes: List[SeedOutcome] = []
    stopped_early = False
    for start in range(0, len(all_seeds), max(1, batch_size)):
        if time_budget is not None and time.perf_counter() - t0 > time_budget:
            stopped_early = True
            break
        batch = all_seeds[start:start + max(1, batch_size)]
        outcomes.extend(map_seeds(worker, batch, processes=processes))

    violations = tuple(o for o in outcomes if o.violation_kinds)
    by_preset: Dict[str, int] = {}
    for o in outcomes:
        by_preset[o.preset] = by_preset.get(o.preset, 0) + 1

    records: List[CounterexampleRecord] = []
    if shrink:
        for outcome in violations[:max_shrink]:
            assert outcome.case_spec is not None
            original = FuzzCase.from_spec(outcome.case_spec)
            shrunk = shrink_case(
                original, outcome.violation_kinds, max_evals=shrink_evals
            )
            # Re-run the oracle on the shrunk case so the stored violation
            # details describe the case actually persisted.
            final = run_case(shrunk.case)
            path: Optional[str] = None
            if corpus_dir is not None:
                spec = counterexample_spec(
                    outcome.violation_kinds[0],
                    shrunk.case,
                    final.violations or outcome.violations,
                    original=original,
                    shrink_evals=shrunk.evals,
                )
                path = str(write_counterexample(corpus_dir, spec))
            records.append(CounterexampleRecord(
                seed=outcome.seed,
                kinds=outcome.violation_kinds,
                path=path,
                streams_before=len(original.streams),
                streams_after=len(shrunk.case.streams),
                shrink_evals=shrunk.evals,
            ))

    return FuzzReport(
        seeds_run=len(outcomes),
        seeds_requested=seeds,
        checked=sum(o.checked for o in outcomes),
        admitted=sum(o.admitted for o in outcomes),
        outcomes_by_preset=by_preset,
        violations=violations,
        counterexamples=tuple(records),
        wall_seconds=time.perf_counter() - t0,
        stopped_early=stopped_early,
    )


def run_self_test(
    *,
    corpus_dir: str,
    generator: Optional[GeneratorConfig] = None,
    seeds: int = 4,
    jobs: int = 1,
) -> Tuple[bool, str]:
    """Prove the harness end to end against a known-broken analysis.

    Injects ``bound_delta`` so every admitted bound collapses to 1 (any
    real transmission takes longer), then requires: the campaign reports a
    soundness violation, the counterexample shrinks, it lands in the
    corpus, and the public replay path reproduces it.

    Returns ``(ok, report_text)``.
    """
    import dataclasses

    cfg = dataclasses.replace(
        generator or GeneratorConfig(),
        bound_delta=1 << 20,
        # The perturbation fires on every admitted stream; plain uniform
        # traffic is enough and keeps the self-test fast.
        presets=("uniform",),
        phase_probability=0.0,
    )
    report = run_fuzz_campaign(
        seeds=seeds, generator=cfg, jobs=jobs, shrink=True,
        max_shrink=1, corpus_dir=corpus_dir,
    )
    lines = [report.summary()]
    if report.sound:
        lines.append(
            "SELF-TEST FAILED: injected bound perturbation was not caught"
        )
        return False, "\n".join(lines)
    record = next(
        (r for r in report.counterexamples if r.path is not None), None
    )
    if record is None:
        lines.append(
            "SELF-TEST FAILED: no counterexample was shrunk and persisted"
        )
        return False, "\n".join(lines)
    if record.streams_after > record.streams_before:
        lines.append("SELF-TEST FAILED: shrinking grew the case")
        return False, "\n".join(lines)
    assert record.path is not None
    rep = replay(record.path)
    lines.append(rep.summary())
    if not rep.reproduced:
        lines.append(
            "SELF-TEST FAILED: persisted counterexample did not replay"
        )
        return False, "\n".join(lines)
    lines.append(
        f"self-test ok: perturbation caught, shrunk to "
        f"{record.streams_after} stream(s), replayed from {record.path}"
    )
    return True, "\n".join(lines)
