"""Comparison baselines: classical non-preemptive wormhole switching (the
priority-inversion demonstration of the paper's Fig. 2) and the naive
per-link rate-monotonic utilization test the paper's related-work section
argues against."""

from .nonpreemptive import (
    InversionComparison,
    compare_arbitration,
    priority_inversion_scenario,
)
from .rate_monotonic import (
    LinkVerdict,
    RMLinkAnalysis,
    liu_layland_bound,
    rm_link_feasibility,
)

__all__ = [
    "InversionComparison",
    "compare_arbitration",
    "priority_inversion_scenario",
    "LinkVerdict",
    "RMLinkAnalysis",
    "liu_layland_bound",
    "rm_link_feasibility",
]
