"""Classical (non-preemptive) wormhole switching baseline.

Traditional wormhole routers have no priority handling: a physical channel
is monopolised by whichever message holds it until the tail flit passes, and
a blocked message holds *its* channels while waiting. The paper's Fig. 2
shows the consequence — **priority inversion**: a top-priority message can
be blocked indefinitely behind lower-priority traffic.

This module runs the same workload twice on the same simulator, once with
the paper's per-priority preemptive VCs and once with single-VC classical
wormhole switching, and reports the per-priority latency blow-up. It also
provides :func:`priority_inversion_scenario`, a deterministic three-way
contention pattern in the spirit of Fig. 2 in which the highest-priority
stream shares its path prefix with a lower-priority stream while
medium-priority cross traffic keeps the contended channel busy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.streams import MessageStream, StreamSet
from ..errors import SimulationError
from ..sim.arbiter import ChannelArbiter, PriorityPreemptiveArbiter
from ..sim.network import WormholeSimulator
from ..sim.stats import DelayStats, StatsCollector
from ..topology.mesh import Mesh2D
from ..topology.routing import RoutingAlgorithm, XYRouting

__all__ = [
    "InversionComparison",
    "compare_arbitration",
    "priority_inversion_scenario",
]


@dataclass(frozen=True)
class InversionComparison:
    """Latency statistics of one workload under both switching modes."""

    preemptive: Dict[int, DelayStats]
    classical: Dict[int, DelayStats]

    def blowup(self, priority: int) -> float:
        """Mean-latency factor classical/preemptive for one priority level."""
        return (
            self.classical[priority].mean / self.preemptive[priority].mean
        )

    def max_blowup(self, priority: int) -> float:
        """Max-latency factor classical/preemptive for one priority level."""
        return (
            self.classical[priority].maximum
            / self.preemptive[priority].maximum
        )


def compare_arbitration(
    topology: Mesh2D,
    routing: RoutingAlgorithm,
    streams: StreamSet,
    *,
    until: int = 30_000,
    warmup: int = 2_000,
    arbiter: Optional[ChannelArbiter] = None,
) -> InversionComparison:
    """Run a workload under preemptive and classical wormhole switching.

    Both runs use identical release schedules (zero phases), so differences
    are purely due to the switching mode.
    """
    results = []
    for vc_mode in ("per_priority", "single"):
        sim = WormholeSimulator(
            topology,
            routing,
            streams,
            vc_mode=vc_mode,
            warmup=warmup,
            arbiter=arbiter or PriorityPreemptiveArbiter(),
        )
        stats = sim.simulate_streams(until)
        results.append(stats.priority_stats())
    return InversionComparison(preemptive=results[0], classical=results[1])


def priority_inversion_scenario(
    *, width: int = 10, height: int = 10
) -> Tuple[Mesh2D, XYRouting, StreamSet]:
    """Build the Fig. 2-style contention pattern on a 2-D mesh.

    Streams (priorities as in the figure: larger = more important):

    * ``A`` — priority 2, long messages, enters the contended row early and
      holds the shared channels;
    * ``1``/``2``/``n`` — priority 3 cross traffic injected part-way along
      the row, keeping the contended output channel busy whenever it frees;
    * ``B`` — priority 4 (highest), short urgent messages sharing the row
      prefix with ``A``.

    Under classical wormhole switching ``B`` repeatedly loses the channel to
    the priority-3 traffic and to ``A``'s residency (priority inversion);
    under the paper's preemptive VCs its latency stays near the no-load
    value.
    """
    if width < 8 or height < 2:
        raise SimulationError("scenario needs at least an 8x2 mesh")
    mesh = Mesh2D(width, height)
    routing = XYRouting(mesh)
    y = height // 2
    right = width - 1
    streams = StreamSet(
        [
            # A: low-priority bulk traffic over the whole row.
            MessageStream(
                0,
                mesh.node_xy(0, y),
                mesh.node_xy(right, y),
                priority=2,
                period=60,
                length=40,
                deadline=10_000,
            ),
            # Medium-priority cross traffic injected mid-row.
            MessageStream(
                1,
                mesh.node_xy(3, y),
                mesh.node_xy(right, y),
                priority=3,
                period=50,
                length=25,
                deadline=10_000,
            ),
            MessageStream(
                2,
                mesh.node_xy(4, y),
                mesh.node_xy(right, y),
                priority=3,
                period=55,
                length=25,
                deadline=10_000,
            ),
            # B: highest priority, shares the row prefix with A.
            MessageStream(
                3,
                mesh.node_xy(1, y),
                mesh.node_xy(right, y),
                priority=4,
                period=200,
                length=6,
                deadline=10_000,
            ),
        ]
    )
    return mesh, routing, streams
