"""Rate-monotonic utilization test over network links (Mutka-style baseline).

Mutka proposed checking schedulability of periodic wormhole traffic with
rate-monotonic scheduling theory; the paper's related-work section argues
that "because of the blocking characteristic of wormhole networks, mere
application of the rate monotonic algorithm to real-time message traffic is
not appropriate". This module implements the naive approach so the claim
can be examined quantitatively:

* each directed channel is treated as a processor;
* the streams whose routes cross it are its task set with utilization
  ``C_i / T_i``;
* the Liu & Layland bound ``U(n) = n (2^{1/n} - 1)`` accepts the channel if
  the summed utilization is below it (``ln 2`` in the limit).

The test ignores inter-link coupling (a message must hold *all* its
channels simultaneously) and priority-inversion blocking, so it is
optimistic about feasibility in exactly the way the paper criticises: a
stream set can pass every per-link RM test and still miss deadlines in
simulation. ``benchmarks/bench_ablation_arbiter.py`` and
``tests/test_baselines.py`` exercise the comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from ..core.streams import StreamSet
from ..errors import AnalysisError
from ..topology.base import Channel
from ..topology.routing import RoutingAlgorithm

__all__ = ["liu_layland_bound", "LinkVerdict", "RMLinkAnalysis", "rm_link_feasibility"]


def liu_layland_bound(n: int) -> float:
    """Return the Liu & Layland utilization bound ``n (2^(1/n) - 1)``."""
    if n < 0:
        raise AnalysisError(f"task count must be >= 0, got {n}")
    if n == 0:
        return 1.0
    return n * (2.0 ** (1.0 / n) - 1.0)


@dataclass(frozen=True)
class LinkVerdict:
    """RM verdict for one directed channel."""

    channel: Channel
    stream_ids: Tuple[int, ...]
    utilization: float
    bound: float

    @property
    def schedulable(self) -> bool:
        return self.utilization <= self.bound


@dataclass(frozen=True)
class RMLinkAnalysis:
    """Per-link RM verdicts plus the overall (naive) feasibility claim."""

    verdicts: Mapping[Channel, LinkVerdict]

    @property
    def feasible(self) -> bool:
        """Naive claim: feasible iff every used link passes its RM bound."""
        return all(v.schedulable for v in self.verdicts.values())

    def failing_links(self) -> Tuple[Channel, ...]:
        """Links whose utilization exceeds their RM bound."""
        return tuple(
            sorted(c for c, v in self.verdicts.items() if not v.schedulable)
        )

    def max_utilization(self) -> float:
        """The most loaded link's utilization (0.0 when no link is used)."""
        if not self.verdicts:
            return 0.0
        return max(v.utilization for v in self.verdicts.values())


def rm_link_feasibility(
    streams: StreamSet, routing: RoutingAlgorithm
) -> RMLinkAnalysis:
    """Run the per-link rate-monotonic utilization test.

    Only links actually crossed by at least one stream receive a verdict.
    Note the test is priority-agnostic: RM assumes priorities are assigned
    by rate, which the paper's workloads do **not** do — one more reason the
    naive transfer of RM theory is inappropriate here.
    """
    per_link: Dict[Channel, list] = {}
    for s in streams:
        for ch in routing.route_channels(s.src, s.dst):
            per_link.setdefault(ch, []).append(s)
    verdicts = {}
    for ch, members in per_link.items():
        util = sum(m.utilization() for m in members)
        verdicts[ch] = LinkVerdict(
            channel=ch,
            stream_ids=tuple(sorted(m.stream_id for m in members)),
            utilization=util,
            bound=liu_layland_bound(len(members)),
        )
    return RMLinkAnalysis(verdicts=verdicts)
