"""Load-generator client for the channel broker (``repro load``).

:class:`BrokerClient` is a small synchronous JSON-lines client (unix
socket or TCP) used by the CI smoke job, the perf harness
(``benchmarks/perf/run_admission.py``) and scripts. The load generator
replays seeded admit/release churn against a broker: it keeps a target
number of live streams, admitting locality-biased random streams and
releasing random live ones, and reports throughput, acceptance rate and
the server's own stats.
"""

from __future__ import annotations

import json
import math
import random
import socket
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any, Deque, Dict, List, Optional, Sequence, Tuple, Union,
)

from ..errors import ReproError
from .protocol import retry_backoff

__all__ = [
    "BrokerClient",
    "LoadSummary",
    "churn_spec",
    "generate_trace",
    "load_trace",
    "run_load",
    "run_trace",
    "save_trace",
]

TRACE_PATTERNS = ("bursty", "diurnal")


class BrokerClient:
    """Blocking JSON-lines client for one broker connection.

    Remembers its connect parameters, so a dropped connection can be
    re-established with :meth:`reconnect` — the building block of
    :meth:`request_with_retry`, the at-least-once retry loop that pairs
    with the server's ``rid`` idempotency (see
    :mod:`repro.service.protocol`).
    """

    def __init__(
        self,
        *,
        socket_path: Optional[Union[str, Path]] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: float = 30.0,
    ):
        if (socket_path is None) == (host is None):
            raise ReproError("pass exactly one of socket_path or host/port")
        self._socket_path = socket_path
        self._host = host
        self._port = port
        self._timeout = timeout
        self._seq = 0
        self._connect()

    def _connect(self) -> None:
        if self._socket_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(self._timeout)
            self._sock.connect(str(self._socket_path))
        else:
            assert self._port is not None
            self._sock = socket.create_connection(
                (self._host, self._port), timeout=self._timeout
            )
        self._fh = self._sock.makefile("rwb")
        # Requests on the wire whose responses have not been read yet
        # (pipelined I/O); a fresh connection has none by definition.
        self._pending: Deque[int] = deque()

    def reconnect(self, *, timeout: float = 10.0) -> None:
        """Tear the connection down and dial again, retrying until the
        server accepts (it may be mid-restart) or ``timeout`` expires."""
        self.close()
        deadline = time.monotonic() + timeout
        while True:
            try:
                self._connect()
                return
            except OSError:
                if time.monotonic() >= deadline:
                    raise ReproError(
                        f"broker did not accept a reconnect within "
                        f"{timeout:.0f}s"
                    ) from None
                time.sleep(0.05)

    @classmethod
    def wait_for_unix(
        cls,
        socket_path: Union[str, Path],
        *,
        timeout: float = 10.0,
        **kwargs,
    ) -> "BrokerClient":
        """Connect to a unix socket, retrying until the server is up."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return cls(socket_path=socket_path, **kwargs)
            except OSError:
                if time.monotonic() >= deadline:
                    raise ReproError(
                        f"broker did not come up on {socket_path} within "
                        f"{timeout:.0f}s"
                    ) from None
                time.sleep(0.05)

    def send(self, op: str, **fields: Any) -> int:
        """Queue one op on the wire without waiting for its response.

        Returns the request's sequence number; pair with :meth:`flush`
        and :meth:`recv` for pipelined I/O. The server answers each
        connection's requests in order, so responses are consumed FIFO.
        """
        self._seq += 1
        payload = {"op": op, "id": self._seq, **fields}
        self._fh.write(
            (json.dumps(payload, separators=(",", ":")) + "\n").encode()
        )
        self._pending.append(self._seq)
        return self._seq

    def flush(self) -> None:
        """Push every queued request onto the socket."""
        self._fh.flush()

    def recv(self, seq: Optional[int] = None) -> Dict[str, Any]:
        """Read the response of the oldest in-flight request.

        ``seq`` (when given) must name that request — responses are
        strictly FIFO per connection.
        """
        if not self._pending:
            raise ReproError("recv with no request in flight")
        expect = self._pending.popleft()
        if seq is not None and seq != expect:
            raise ReproError(
                f"recv out of order: oldest in-flight request is "
                f"{expect}, asked for {seq}"
            )
        line = self._fh.readline()
        if not line:
            raise ReproError("broker closed the connection")
        response = json.loads(line.decode("utf-8"))
        if response.get("id") not in (None, expect):
            raise ReproError(
                f"response id {response.get('id')} does not match "
                f"request id {expect}"
            )
        return response

    @property
    def in_flight(self) -> int:
        """Number of sent requests whose responses are still unread."""
        return len(self._pending)

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one op and return the matching response."""
        seq = self.send(op, **fields)
        self.flush()
        return self.recv(seq)

    def check(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Like :meth:`request` but raises on ``ok: false`` responses."""
        response = self.request(op, **fields)
        if not response.get("ok"):
            raise ReproError(
                f"broker op {op!r} failed: {response.get('error')}"
            )
        return response

    def request_with_retry(
        self,
        op: str,
        *,
        rid: str,
        max_attempts: int = 6,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        rng: Optional[random.Random] = None,
        reconnect_timeout: float = 10.0,
        **fields: Any,
    ) -> Dict[str, Any]:
        """Send an idempotent mutation, retrying across dropped
        connections with full-jitter exponential backoff.

        Every attempt carries the same ``rid``, so the server applies the
        mutation at most once no matter how many times the wire eats the
        acknowledgement; the response may carry ``"duplicate": true``
        when an earlier attempt already committed. Transport failures
        (connection reset, EOF, refused reconnect) are retried; an
        application-level error response is returned to the caller as-is.
        """
        last_exc: Optional[Exception] = None
        for attempt in range(max_attempts):
            if attempt:
                time.sleep(retry_backoff(
                    attempt - 1, base=backoff_base, cap=backoff_cap,
                    rng=rng,
                ))
                try:
                    self.reconnect(timeout=reconnect_timeout)
                except ReproError as exc:
                    last_exc = exc
                    continue
            try:
                return self.request(op, rid=rid, **fields)
            except (ReproError, OSError, ValueError) as exc:
                # ValueError covers writes on a file object whose
                # connection was already torn down (and JSONDecodeError).
                last_exc = exc
        raise ReproError(
            f"broker op {op!r} (rid {rid!r}) failed after "
            f"{max_attempts} attempts: {last_exc}"
        )

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:
            pass
        finally:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    def __enter__(self) -> "BrokerClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------- #
# Churn workload
# ---------------------------------------------------------------------- #


def churn_spec(
    rng: random.Random,
    nodes: int,
    *,
    priority_levels: int = 15,
) -> Dict[str, int]:
    """Draw one random stream spec (integer node ids, no explicit id).

    Node pairs are drawn uniformly; periods/deadlines are generous
    relative to message lengths so a healthy fraction of requests admits
    even at high occupancy (the interesting regime for a broker).
    """
    src = rng.randrange(nodes)
    dst = rng.randrange(nodes)
    while dst == src:
        dst = rng.randrange(nodes)
    length = rng.randint(1, 8)
    period = rng.randint(80, 400)
    return {
        "src": src,
        "dst": dst,
        "priority": rng.randint(1, priority_levels),
        "period": period,
        "length": length,
        "deadline": rng.randint(period // 2, period),
    }


@dataclass
class LoadSummary:
    """Outcome of one load run, printed as JSON by ``repro load``."""

    ops: int = 0
    admits_tried: int = 0
    admits_accepted: int = 0
    releases: int = 0
    link_ops: int = 0
    errors: int = 0
    seconds: float = 0.0
    live_at_end: int = 0
    pipeline: int = 1
    server_stats: Dict[str, Any] = field(default_factory=dict)

    def ops_per_second(self) -> float:
        return self.ops / self.seconds if self.seconds else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ops": self.ops,
            "admits_tried": self.admits_tried,
            "admits_accepted": self.admits_accepted,
            "acceptance_rate": round(
                self.admits_accepted / self.admits_tried, 4
            ) if self.admits_tried else None,
            "releases": self.releases,
            "link_ops": self.link_ops,
            "errors": self.errors,
            "seconds": round(self.seconds, 3),
            "ops_per_second": round(self.ops_per_second(), 1),
            "live_at_end": self.live_at_end,
            "pipeline": self.pipeline,
            "server_stats": self.server_stats,
        }


def run_load(
    client: BrokerClient,
    *,
    ops: int = 300,
    seed: int = 0,
    target_live: int = 40,
    batch_size: int = 1,
    pipeline: int = 1,
) -> LoadSummary:
    """Replay seeded admit/release churn through an open client.

    Below ``target_live`` admitted streams the generator mostly admits;
    above it, it mostly releases — holding occupancy near the target,
    which is where admission decisions are non-trivial.

    ``pipeline`` is the number of requests kept in flight: 1 (default)
    is the classic closed loop — send, wait, repeat — and reproduces the
    exact request sequence of earlier versions; larger windows keep the
    server's request-batching worker fed instead of letting the
    connection go idle for a round trip per op. Admit/release decisions
    then steer by the *estimated* live count (confirmed live streams —
    which in-flight releases already left — plus in-flight admits), and
    only confirmed ids are ever released, so the workload stays
    well-formed at any depth.
    """
    rng = random.Random(seed)
    hello = client.check("hello")
    nodes = int(hello["nodes"])
    live: List[int] = []
    summary = LoadSummary()
    pipeline = max(1, int(pipeline))
    summary.pipeline = pipeline
    batch = max(1, batch_size)
    window: Deque[Tuple[int, str]] = deque()  # (seq, "admit"|"release")
    in_flight = {"admit": 0, "release": 0}  # release kept for introspection

    def settle(limit: int) -> None:
        """Absorb responses until at most ``limit`` remain in flight."""
        while len(window) > limit:
            seq, kind = window.popleft()
            response = client.recv(seq)
            in_flight[kind] -= 1
            if kind == "admit":
                if response.get("ok") and response.get("admitted"):
                    summary.admits_accepted += 1
                    live.extend(response["ids"])
                elif not response.get("ok"):
                    summary.errors += 1
            elif not response.get("ok"):
                summary.errors += 1

    t0 = time.perf_counter()
    for _ in range(ops):
        # Released ids leave `live` at send time (the pop below), so
        # in-flight releases are already accounted for — only unconfirmed
        # admits need adding on top.
        est_live = len(live) + in_flight["admit"] * batch
        admit = (est_live < target_live
                 if rng.random() < 0.8 else est_live >= target_live)
        if admit or not live:
            specs = [churn_spec(rng, nodes) for _ in range(batch)]
            seq = client.send("admit", streams=specs)
            summary.admits_tried += 1
            window.append((seq, "admit"))
            in_flight["admit"] += 1
        else:
            sid = live.pop(rng.randrange(len(live)))
            seq = client.send("release", ids=[sid])
            summary.releases += 1
            window.append((seq, "release"))
            in_flight["release"] += 1
        summary.ops += 1
        client.flush()
        settle(pipeline - 1)
    settle(0)
    summary.seconds = time.perf_counter() - t0
    summary.live_at_end = len(live)
    stats = client.request("stats")
    if stats.get("ok"):
        summary.server_stats = {
            "admitted": stats.get("admitted"),
            "engine": stats.get("engine"),
            "batching": stats.get("service", {}).get("batching"),
        }
    return summary


# ---------------------------------------------------------------------- #
# Trace-driven workload
# ---------------------------------------------------------------------- #
#
# A trace is a list of JSON op records, one per line on disk:
#
#   {"op": "admit", "streams": [<spec>, ...]}
#   {"op": "release", "refs": [<handle>, ...]}
#   {"op": "fail_link", "link": [u, v]}
#   {"op": "restore_link", "link": [u, v]}
#
# Admitted streams are named by *handles*: every spec across the trace's
# admit ops gets the next integer handle in admit order, whether or not
# the broker later accepts it. Releases reference handles, never raw
# server ids, so a trace is broker-independent — the runner maps handles
# to the ids a given broker actually assigned and silently skips handles
# that were rejected, already released, or evicted by a link failure.
# Generation is a pure function of its arguments (the rng carries all
# randomness), so one seed replays byte-identically forever.


def generate_trace(
    pattern: str,
    rng: random.Random,
    nodes: int,
    *,
    ops: int = 300,
    target_live: int = 40,
    priority_levels: int = 15,
    links: Optional[Sequence[Tuple[int, int]]] = None,
    link_rate: float = 0.0,
) -> List[Dict[str, Any]]:
    """Build a replayable op trace for :func:`run_trace`.

    ``bursty`` alternates admit bursts with release waves — occupancy
    saws around ``target_live``. ``diurnal`` tracks a sinusoidal
    occupancy target over the trace, admitting on the rising edge and
    releasing on the falling edge. With ``links`` given and
    ``link_rate > 0`` both patterns interleave fail/restore events on
    random links (at most three down at once, failed links are always
    eventually restorable).
    """
    if pattern not in TRACE_PATTERNS:
        raise ReproError(
            f"unknown trace pattern {pattern!r}; "
            f"expected one of {', '.join(TRACE_PATTERNS)}"
        )
    trace: List[Dict[str, Any]] = []
    outstanding: List[int] = []  # handles the trace believes are live
    next_handle = 0
    up = sorted(tuple(sorted(l)) for l in links) if links else []
    down: List[Tuple[int, int]] = []

    def admit(count: int) -> None:
        nonlocal next_handle
        count = max(1, count)
        specs = [churn_spec(rng, nodes, priority_levels=priority_levels)
                 for _ in range(count)]
        trace.append({"op": "admit", "streams": specs})
        outstanding.extend(range(next_handle, next_handle + count))
        next_handle += count

    def release(count: int) -> None:
        refs = []
        for _ in range(min(count, len(outstanding))):
            refs.append(outstanding.pop(rng.randrange(len(outstanding))))
        if refs:
            trace.append({"op": "release", "refs": sorted(refs)})

    def maybe_link_event() -> None:
        if not up and not down:
            return
        if rng.random() >= link_rate:
            return
        # Fail when nothing is down, restore when three links already
        # are (or none are left to fail), otherwise flip a coin.
        if not down:
            fail = True
        elif len(down) >= 3 or not up:
            fail = False
        else:
            fail = rng.random() < 0.5
        if fail and up:
            link = up.pop(rng.randrange(len(up)))
            down.append(link)
            trace.append({"op": "fail_link", "link": list(link)})
        elif down:
            link = down.pop(rng.randrange(len(down)))
            up.append(link)
            up.sort()
            trace.append({"op": "restore_link", "link": list(link)})

    if pattern == "bursty":
        while len(trace) < ops:
            maybe_link_event()
            if len(outstanding) < target_live:
                for _ in range(rng.randint(2, 6)):  # admit burst
                    if len(trace) >= ops:
                        break
                    admit(rng.randint(1, 4))
            else:  # release wave sheds roughly half the live set
                release(max(1, len(outstanding) // 2))
    else:  # diurnal
        for i in range(ops):
            maybe_link_event()
            if len(trace) >= ops:
                break
            wanted = int(round(
                target_live * (0.5 + 0.5 * math.sin(
                    2.0 * math.pi * i / max(1, ops)
                ))
            ))
            if len(outstanding) <= wanted:
                admit(rng.randint(1, 3))
            else:
                release(max(1, (len(outstanding) - wanted) // 2))
    return trace[:ops]


def save_trace(path: Union[str, Path], trace: List[Dict[str, Any]]) -> None:
    """Write a trace as JSON lines (one op per line, stable key order)."""
    with open(path, "w", encoding="utf-8") as fh:
        for op in trace:
            fh.write(json.dumps(op, separators=(",", ":")) + "\n")


def load_trace(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Read a JSON-lines trace written by :func:`save_trace`."""
    trace: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                op = json.loads(line)
            except ValueError as exc:
                raise ReproError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from None
            if not isinstance(op, dict) or "op" not in op:
                raise ReproError(
                    f"{path}:{lineno}: trace ops are objects with an "
                    f"'op' key"
                )
            trace.append(op)
    return trace


def run_trace(
    client: BrokerClient,
    trace: Sequence[Dict[str, Any]],
) -> LoadSummary:
    """Replay a trace through an open client, strictly in order.

    Handles map to server ids as admits are acknowledged; releases name
    handles and skip any that never admitted or that a link failure
    already evicted (the broker's eviction ids are folded back into the
    handle table), so a trace recorded against one broker replays
    cleanly against another — or against the same broker after a crash.
    """
    summary = LoadSummary()
    handle_ids: List[Optional[int]] = []  # handle -> live server id
    id_handle: Dict[int, int] = {}
    t0 = time.perf_counter()
    for op in trace:
        kind = op.get("op")
        summary.ops += 1
        if kind == "admit":
            specs = list(op.get("streams", []))
            base = len(handle_ids)
            handle_ids.extend([None] * len(specs))
            summary.admits_tried += 1
            response = client.request("admit", streams=specs)
            if response.get("ok") and response.get("admitted"):
                summary.admits_accepted += 1
                for offset, sid in enumerate(response.get("ids", [])):
                    handle_ids[base + offset] = sid
                    id_handle[sid] = base + offset
            elif not response.get("ok"):
                summary.errors += 1
        elif kind == "release":
            ids = []
            for ref in op.get("refs", []):
                if 0 <= ref < len(handle_ids) and \
                        handle_ids[ref] is not None:
                    ids.append(handle_ids[ref])
                    handle_ids[ref] = None
            if not ids:
                continue
            summary.releases += 1
            response = client.request("release", ids=ids)
            if not response.get("ok"):
                summary.errors += 1
        elif kind in ("fail_link", "restore_link"):
            summary.link_ops += 1
            response = client.request(kind, link=op["link"])
            if not response.get("ok"):
                summary.errors += 1
                continue
            for sid in (list(response.get("evicted", ()))
                        + list(response.get("disconnected", ()))):
                ref = id_handle.pop(sid, None)
                if ref is not None:
                    handle_ids[ref] = None
        else:
            raise ReproError(f"unknown trace op {kind!r}")
    summary.seconds = time.perf_counter() - t0
    summary.live_at_end = sum(1 for sid in handle_ids if sid is not None)
    stats = client.request("stats")
    if stats.get("ok"):
        summary.server_stats = {
            "admitted": stats.get("admitted"),
            "engine": stats.get("engine"),
            "batching": stats.get("service", {}).get("batching"),
        }
    return summary
