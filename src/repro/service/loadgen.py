"""Load-generator client for the channel broker (``repro load``).

:class:`BrokerClient` is a small synchronous JSON-lines client (unix
socket or TCP) used by the CI smoke job, the perf harness
(``benchmarks/perf/run_admission.py``) and scripts. The load generator
replays seeded admit/release churn against a broker: it keeps a target
number of live streams, admitting locality-biased random streams and
releasing random live ones, and reports throughput, acceptance rate and
the server's own stats.
"""

from __future__ import annotations

import json
import random
import socket
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..errors import ReproError

__all__ = ["BrokerClient", "LoadSummary", "churn_spec", "run_load"]


class BrokerClient:
    """Blocking JSON-lines client for one broker connection."""

    def __init__(
        self,
        *,
        socket_path: Optional[Union[str, Path]] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: float = 30.0,
    ):
        if (socket_path is None) == (host is None):
            raise ReproError("pass exactly one of socket_path or host/port")
        if socket_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(str(socket_path))
        else:
            assert port is not None
            self._sock = socket.create_connection(
                (host, port), timeout=timeout
            )
        self._fh = self._sock.makefile("rwb")
        self._seq = 0

    @classmethod
    def wait_for_unix(
        cls,
        socket_path: Union[str, Path],
        *,
        timeout: float = 10.0,
        **kwargs,
    ) -> "BrokerClient":
        """Connect to a unix socket, retrying until the server is up."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return cls(socket_path=socket_path, **kwargs)
            except OSError:
                if time.monotonic() >= deadline:
                    raise ReproError(
                        f"broker did not come up on {socket_path} within "
                        f"{timeout:.0f}s"
                    ) from None
                time.sleep(0.05)

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one op and return the matching response."""
        self._seq += 1
        payload = {"op": op, "id": self._seq, **fields}
        self._fh.write(
            (json.dumps(payload, separators=(",", ":")) + "\n").encode()
        )
        self._fh.flush()
        line = self._fh.readline()
        if not line:
            raise ReproError("broker closed the connection")
        response = json.loads(line.decode("utf-8"))
        if response.get("id") not in (None, self._seq):
            raise ReproError(
                f"response id {response.get('id')} does not match "
                f"request id {self._seq}"
            )
        return response

    def check(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Like :meth:`request` but raises on ``ok: false`` responses."""
        response = self.request(op, **fields)
        if not response.get("ok"):
            raise ReproError(
                f"broker op {op!r} failed: {response.get('error')}"
            )
        return response

    def close(self) -> None:
        try:
            self._fh.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "BrokerClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------- #
# Churn workload
# ---------------------------------------------------------------------- #


def churn_spec(
    rng: random.Random,
    nodes: int,
    *,
    priority_levels: int = 15,
) -> Dict[str, int]:
    """Draw one random stream spec (integer node ids, no explicit id).

    Node pairs are drawn uniformly; periods/deadlines are generous
    relative to message lengths so a healthy fraction of requests admits
    even at high occupancy (the interesting regime for a broker).
    """
    src = rng.randrange(nodes)
    dst = rng.randrange(nodes)
    while dst == src:
        dst = rng.randrange(nodes)
    length = rng.randint(1, 8)
    period = rng.randint(80, 400)
    return {
        "src": src,
        "dst": dst,
        "priority": rng.randint(1, priority_levels),
        "period": period,
        "length": length,
        "deadline": rng.randint(period // 2, period),
    }


@dataclass
class LoadSummary:
    """Outcome of one load run, printed as JSON by ``repro load``."""

    ops: int = 0
    admits_tried: int = 0
    admits_accepted: int = 0
    releases: int = 0
    errors: int = 0
    seconds: float = 0.0
    live_at_end: int = 0
    server_stats: Dict[str, Any] = field(default_factory=dict)

    def ops_per_second(self) -> float:
        return self.ops / self.seconds if self.seconds else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ops": self.ops,
            "admits_tried": self.admits_tried,
            "admits_accepted": self.admits_accepted,
            "acceptance_rate": round(
                self.admits_accepted / self.admits_tried, 4
            ) if self.admits_tried else None,
            "releases": self.releases,
            "errors": self.errors,
            "seconds": round(self.seconds, 3),
            "ops_per_second": round(self.ops_per_second(), 1),
            "live_at_end": self.live_at_end,
            "server_stats": self.server_stats,
        }


def run_load(
    client: BrokerClient,
    *,
    ops: int = 300,
    seed: int = 0,
    target_live: int = 40,
    batch_size: int = 1,
) -> LoadSummary:
    """Replay seeded admit/release churn through an open client.

    Below ``target_live`` admitted streams the generator mostly admits;
    above it, it mostly releases — holding occupancy near the target,
    which is where admission decisions are non-trivial.
    """
    rng = random.Random(seed)
    hello = client.check("hello")
    nodes = int(hello["nodes"])
    live: List[int] = []
    summary = LoadSummary()
    t0 = time.perf_counter()
    for _ in range(ops):
        admit = (len(live) < target_live
                 if rng.random() < 0.8 else len(live) >= target_live)
        if admit or not live:
            specs = [churn_spec(rng, nodes)
                     for _ in range(max(1, batch_size))]
            response = client.request("admit", streams=specs)
            summary.admits_tried += 1
            if response.get("ok") and response.get("admitted"):
                summary.admits_accepted += 1
                live.extend(response["ids"])
            elif not response.get("ok"):
                summary.errors += 1
        else:
            sid = live.pop(rng.randrange(len(live)))
            response = client.request("release", ids=[sid])
            summary.releases += 1
            if not response.get("ok"):
                summary.errors += 1
        summary.ops += 1
    summary.seconds = time.perf_counter() - t0
    summary.live_at_end = len(live)
    stats = client.request("stats")
    if stats.get("ok"):
        summary.server_stats = {
            "admitted": stats.get("admitted"),
            "engine": stats.get("engine"),
            "batching": stats.get("service", {}).get("batching"),
        }
    return summary
