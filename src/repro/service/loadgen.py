"""Load-generator client for the channel broker (``repro load``).

:class:`BrokerClient` is a small synchronous JSON-lines client (unix
socket or TCP) used by the CI smoke job, the perf harness
(``benchmarks/perf/run_admission.py``) and scripts. The load generator
replays seeded admit/release churn against a broker: it keeps a target
number of live streams, admitting locality-biased random streams and
releasing random live ones, and reports throughput, acceptance rate and
the server's own stats.
"""

from __future__ import annotations

import json
import random
import socket
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Tuple, Union

from ..errors import ReproError
from .protocol import retry_backoff

__all__ = ["BrokerClient", "LoadSummary", "churn_spec", "run_load"]


class BrokerClient:
    """Blocking JSON-lines client for one broker connection.

    Remembers its connect parameters, so a dropped connection can be
    re-established with :meth:`reconnect` — the building block of
    :meth:`request_with_retry`, the at-least-once retry loop that pairs
    with the server's ``rid`` idempotency (see
    :mod:`repro.service.protocol`).
    """

    def __init__(
        self,
        *,
        socket_path: Optional[Union[str, Path]] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: float = 30.0,
    ):
        if (socket_path is None) == (host is None):
            raise ReproError("pass exactly one of socket_path or host/port")
        self._socket_path = socket_path
        self._host = host
        self._port = port
        self._timeout = timeout
        self._seq = 0
        self._connect()

    def _connect(self) -> None:
        if self._socket_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(self._timeout)
            self._sock.connect(str(self._socket_path))
        else:
            assert self._port is not None
            self._sock = socket.create_connection(
                (self._host, self._port), timeout=self._timeout
            )
        self._fh = self._sock.makefile("rwb")
        # Requests on the wire whose responses have not been read yet
        # (pipelined I/O); a fresh connection has none by definition.
        self._pending: Deque[int] = deque()

    def reconnect(self, *, timeout: float = 10.0) -> None:
        """Tear the connection down and dial again, retrying until the
        server accepts (it may be mid-restart) or ``timeout`` expires."""
        self.close()
        deadline = time.monotonic() + timeout
        while True:
            try:
                self._connect()
                return
            except OSError:
                if time.monotonic() >= deadline:
                    raise ReproError(
                        f"broker did not accept a reconnect within "
                        f"{timeout:.0f}s"
                    ) from None
                time.sleep(0.05)

    @classmethod
    def wait_for_unix(
        cls,
        socket_path: Union[str, Path],
        *,
        timeout: float = 10.0,
        **kwargs,
    ) -> "BrokerClient":
        """Connect to a unix socket, retrying until the server is up."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return cls(socket_path=socket_path, **kwargs)
            except OSError:
                if time.monotonic() >= deadline:
                    raise ReproError(
                        f"broker did not come up on {socket_path} within "
                        f"{timeout:.0f}s"
                    ) from None
                time.sleep(0.05)

    def send(self, op: str, **fields: Any) -> int:
        """Queue one op on the wire without waiting for its response.

        Returns the request's sequence number; pair with :meth:`flush`
        and :meth:`recv` for pipelined I/O. The server answers each
        connection's requests in order, so responses are consumed FIFO.
        """
        self._seq += 1
        payload = {"op": op, "id": self._seq, **fields}
        self._fh.write(
            (json.dumps(payload, separators=(",", ":")) + "\n").encode()
        )
        self._pending.append(self._seq)
        return self._seq

    def flush(self) -> None:
        """Push every queued request onto the socket."""
        self._fh.flush()

    def recv(self, seq: Optional[int] = None) -> Dict[str, Any]:
        """Read the response of the oldest in-flight request.

        ``seq`` (when given) must name that request — responses are
        strictly FIFO per connection.
        """
        if not self._pending:
            raise ReproError("recv with no request in flight")
        expect = self._pending.popleft()
        if seq is not None and seq != expect:
            raise ReproError(
                f"recv out of order: oldest in-flight request is "
                f"{expect}, asked for {seq}"
            )
        line = self._fh.readline()
        if not line:
            raise ReproError("broker closed the connection")
        response = json.loads(line.decode("utf-8"))
        if response.get("id") not in (None, expect):
            raise ReproError(
                f"response id {response.get('id')} does not match "
                f"request id {expect}"
            )
        return response

    @property
    def in_flight(self) -> int:
        """Number of sent requests whose responses are still unread."""
        return len(self._pending)

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one op and return the matching response."""
        seq = self.send(op, **fields)
        self.flush()
        return self.recv(seq)

    def check(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Like :meth:`request` but raises on ``ok: false`` responses."""
        response = self.request(op, **fields)
        if not response.get("ok"):
            raise ReproError(
                f"broker op {op!r} failed: {response.get('error')}"
            )
        return response

    def request_with_retry(
        self,
        op: str,
        *,
        rid: str,
        max_attempts: int = 6,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        rng: Optional[random.Random] = None,
        reconnect_timeout: float = 10.0,
        **fields: Any,
    ) -> Dict[str, Any]:
        """Send an idempotent mutation, retrying across dropped
        connections with full-jitter exponential backoff.

        Every attempt carries the same ``rid``, so the server applies the
        mutation at most once no matter how many times the wire eats the
        acknowledgement; the response may carry ``"duplicate": true``
        when an earlier attempt already committed. Transport failures
        (connection reset, EOF, refused reconnect) are retried; an
        application-level error response is returned to the caller as-is.
        """
        last_exc: Optional[Exception] = None
        for attempt in range(max_attempts):
            if attempt:
                time.sleep(retry_backoff(
                    attempt - 1, base=backoff_base, cap=backoff_cap,
                    rng=rng,
                ))
                try:
                    self.reconnect(timeout=reconnect_timeout)
                except ReproError as exc:
                    last_exc = exc
                    continue
            try:
                return self.request(op, rid=rid, **fields)
            except (ReproError, OSError, ValueError) as exc:
                # ValueError covers writes on a file object whose
                # connection was already torn down (and JSONDecodeError).
                last_exc = exc
        raise ReproError(
            f"broker op {op!r} (rid {rid!r}) failed after "
            f"{max_attempts} attempts: {last_exc}"
        )

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:
            pass
        finally:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    def __enter__(self) -> "BrokerClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------- #
# Churn workload
# ---------------------------------------------------------------------- #


def churn_spec(
    rng: random.Random,
    nodes: int,
    *,
    priority_levels: int = 15,
) -> Dict[str, int]:
    """Draw one random stream spec (integer node ids, no explicit id).

    Node pairs are drawn uniformly; periods/deadlines are generous
    relative to message lengths so a healthy fraction of requests admits
    even at high occupancy (the interesting regime for a broker).
    """
    src = rng.randrange(nodes)
    dst = rng.randrange(nodes)
    while dst == src:
        dst = rng.randrange(nodes)
    length = rng.randint(1, 8)
    period = rng.randint(80, 400)
    return {
        "src": src,
        "dst": dst,
        "priority": rng.randint(1, priority_levels),
        "period": period,
        "length": length,
        "deadline": rng.randint(period // 2, period),
    }


@dataclass
class LoadSummary:
    """Outcome of one load run, printed as JSON by ``repro load``."""

    ops: int = 0
    admits_tried: int = 0
    admits_accepted: int = 0
    releases: int = 0
    errors: int = 0
    seconds: float = 0.0
    live_at_end: int = 0
    pipeline: int = 1
    server_stats: Dict[str, Any] = field(default_factory=dict)

    def ops_per_second(self) -> float:
        return self.ops / self.seconds if self.seconds else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ops": self.ops,
            "admits_tried": self.admits_tried,
            "admits_accepted": self.admits_accepted,
            "acceptance_rate": round(
                self.admits_accepted / self.admits_tried, 4
            ) if self.admits_tried else None,
            "releases": self.releases,
            "errors": self.errors,
            "seconds": round(self.seconds, 3),
            "ops_per_second": round(self.ops_per_second(), 1),
            "live_at_end": self.live_at_end,
            "pipeline": self.pipeline,
            "server_stats": self.server_stats,
        }


def run_load(
    client: BrokerClient,
    *,
    ops: int = 300,
    seed: int = 0,
    target_live: int = 40,
    batch_size: int = 1,
    pipeline: int = 1,
) -> LoadSummary:
    """Replay seeded admit/release churn through an open client.

    Below ``target_live`` admitted streams the generator mostly admits;
    above it, it mostly releases — holding occupancy near the target,
    which is where admission decisions are non-trivial.

    ``pipeline`` is the number of requests kept in flight: 1 (default)
    is the classic closed loop — send, wait, repeat — and reproduces the
    exact request sequence of earlier versions; larger windows keep the
    server's request-batching worker fed instead of letting the
    connection go idle for a round trip per op. Admit/release decisions
    then steer by the *estimated* live count (confirmed live streams —
    which in-flight releases already left — plus in-flight admits), and
    only confirmed ids are ever released, so the workload stays
    well-formed at any depth.
    """
    rng = random.Random(seed)
    hello = client.check("hello")
    nodes = int(hello["nodes"])
    live: List[int] = []
    summary = LoadSummary()
    pipeline = max(1, int(pipeline))
    summary.pipeline = pipeline
    batch = max(1, batch_size)
    window: Deque[Tuple[int, str]] = deque()  # (seq, "admit"|"release")
    in_flight = {"admit": 0, "release": 0}  # release kept for introspection

    def settle(limit: int) -> None:
        """Absorb responses until at most ``limit`` remain in flight."""
        while len(window) > limit:
            seq, kind = window.popleft()
            response = client.recv(seq)
            in_flight[kind] -= 1
            if kind == "admit":
                if response.get("ok") and response.get("admitted"):
                    summary.admits_accepted += 1
                    live.extend(response["ids"])
                elif not response.get("ok"):
                    summary.errors += 1
            elif not response.get("ok"):
                summary.errors += 1

    t0 = time.perf_counter()
    for _ in range(ops):
        # Released ids leave `live` at send time (the pop below), so
        # in-flight releases are already accounted for — only unconfirmed
        # admits need adding on top.
        est_live = len(live) + in_flight["admit"] * batch
        admit = (est_live < target_live
                 if rng.random() < 0.8 else est_live >= target_live)
        if admit or not live:
            specs = [churn_spec(rng, nodes) for _ in range(batch)]
            seq = client.send("admit", streams=specs)
            summary.admits_tried += 1
            window.append((seq, "admit"))
            in_flight["admit"] += 1
        else:
            sid = live.pop(rng.randrange(len(live)))
            seq = client.send("release", ids=[sid])
            summary.releases += 1
            window.append((seq, "release"))
            in_flight["release"] += 1
        summary.ops += 1
        client.flush()
        settle(pipeline - 1)
    settle(0)
    summary.seconds = time.perf_counter() - t0
    summary.live_at_end = len(live)
    stats = client.request("stats")
    if stats.get("ok"):
        summary.server_stats = {
            "admitted": stats.get("admitted"),
            "engine": stats.get("engine"),
            "batching": stats.get("service", {}).get("batching"),
        }
    return summary
