"""Snapshot + journal persistence for the channel broker.

The broker's durable state is the admitted stream set. It is stored as:

``snapshot.json``
    A plain problem file (see :mod:`repro.io`): topology spec + admitted
    streams, plus a ``next_id`` key recording the broker's fresh-id
    high-water mark (ignored by ``load_problem``) so released ids are
    never reissued across restarts, and an ``applied`` map of recently
    applied request ids (rid -> outcome) so client retries stay
    idempotent across a compaction. Written atomically (tmp file +
    rename) by ``compact``.
``journal.jsonl``
    One JSON line per committed mutation since the snapshot:
    ``{"op": "admit", "streams": [...]}`` (streams as problem-file
    entries with server-assigned ids, appended only after the engine
    accepted the batch) and ``{"op": "release", "ids": [...]}``. Ops
    carry the client's ``rid`` when the request had one.

Recovery replays the snapshot as one admit batch and then the journal in
order, through the normal engine — the analysis is deterministic, so a
set that was admitted before restarts admits again bit-identically. After
a successful recovery the broker compacts, so the journal stays short.

Crash tolerance
---------------
A crash mid-append leaves a *torn tail*: a partial final record with no
newline. Recovery skips it — the op was never acknowledged, so dropping
it is correct — and truncates the file back to the last good record, so
a later append can never fuse with the partial bytes into one corrupt
line. Corruption anywhere *before* the tail is not survivable and raises.

A failed append (``OSError``: disk full, I/O error on fsync) leaves the
journal in an uncertain state. :meth:`BrokerState.append` self-repairs by
truncating back to the pre-append offset before re-raising, so the disk
never contains a record the caller was told failed; the broker then
degrades to read-only (see :mod:`repro.service.server`).

Fault injection
---------------
When a :class:`~repro.faults.plane.FaultPlane` is installed, ``append``
consults the ``journal.append`` site and fires whatever persistence fault
is armed there (torn writes, injected crashes, fsync/ENOSPC errors) —
see :mod:`repro.faults.plane` for the taxonomy.
"""

from __future__ import annotations

import errno
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..core.streams import StreamSet
from ..errors import ReproError
from ..faults.plane import FaultPlane, FaultSpec, InjectedCrash, SITE_JOURNAL_APPEND
from ..io import streams_to_spec

__all__ = ["BrokerState", "RecoveredState", "RID_CAP"]

#: Most applied request ids kept for duplicate detection (FIFO eviction).
RID_CAP = 1024


@dataclass
class RecoveredState:
    """Everything :meth:`BrokerState.recover` reads back from disk."""

    #: Snapshot stream entries, or ``None`` when no snapshot exists.
    snapshot: Optional[List[dict]] = None
    #: Journal ops in append order (torn tail already dropped).
    ops: List[Dict[str, Any]] = field(default_factory=list)
    #: Snapshotted fresh-id high-water mark, or ``None``.
    next_id: Optional[int] = None
    #: Applied request ids persisted with the snapshot (rid -> outcome).
    applied_rids: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Failed physical links persisted with the snapshot, as sorted
    #: ``[u, v]`` pairs. Applied *before* stream replay so the admitted
    #: set re-admits under the same degraded routing it was vetted on.
    failed_links: List[List[int]] = field(default_factory=list)
    #: Whether a torn (partial) final journal record was skipped.
    torn_tail: bool = False


class BrokerState:
    """Owns the snapshot and journal files under one state directory."""

    def __init__(
        self,
        state_dir: Union[str, Path],
        topology_spec: Dict[str, Any],
        *,
        fault_plane: Optional[FaultPlane] = None,
    ):
        self.dir = Path(state_dir)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.topology_spec = dict(topology_spec)
        self.snapshot_path = self.dir / "snapshot.json"
        self.journal_path = self.dir / "journal.jsonl"
        self.fault_plane = fault_plane
        self._journal_fh = None

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #

    def recover(self) -> RecoveredState:
        """Read the snapshot and journal back; see :class:`RecoveredState`.

        Validates that a present snapshot was taken over the same topology
        the server is being started with — recovering a 10x10-mesh
        admitted set onto a torus would silently re-route everything.
        """
        out = RecoveredState()
        if self.snapshot_path.exists():
            spec = json.loads(self.snapshot_path.read_text())
            topo = spec.get("topology")
            if topo != self.topology_spec:
                raise ReproError(
                    f"snapshot topology {topo} does not match the "
                    f"server topology {self.topology_spec}"
                )
            out.snapshot = list(spec.get("streams", []))
            if spec.get("next_id") is not None:
                out.next_id = int(spec["next_id"])
            applied = spec.get("applied")
            if isinstance(applied, dict):
                out.applied_rids = {
                    str(rid): dict(v) for rid, v in applied.items()
                }
            out.failed_links = [
                [int(u), int(v)]
                for u, v in spec.get("failed_links", [])
            ]
        if self.journal_path.exists():
            self._read_journal(out)
        return out

    def _read_journal(self, out: RecoveredState) -> None:
        """Parse the journal into ``out.ops``, tolerating a torn tail.

        A record that fails to parse (or is not an object) is accepted
        only when nothing but whitespace follows it — the signature of a
        crash mid-append. The partial bytes are then truncated away so a
        subsequent ``append`` starts on a clean line; corruption earlier
        in the file raises.
        """
        data = self.journal_path.read_bytes()
        pos = 0
        good_end = 0  # byte offset just past the last well-formed record
        lineno = 0
        size = len(data)
        while pos < size:
            nl = data.find(b"\n", pos)
            end = nl if nl != -1 else size
            chunk = data[pos:end]
            next_pos = end + 1 if nl != -1 else size
            lineno += 1
            stripped = chunk.strip()
            if stripped:
                op: Any = None
                try:
                    op = json.loads(stripped.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    pass
                if not isinstance(op, dict):
                    if data[next_pos:].strip():
                        raise ReproError(
                            f"corrupt journal line {lineno} in "
                            f"{self.journal_path}"
                        )
                    out.torn_tail = True
                    break
                out.ops.append(op)
            good_end = next_pos
            pos = next_pos
        if out.torn_tail and good_end < size:
            self._truncate_to(good_end)

    # ------------------------------------------------------------------ #
    # Mutation log
    # ------------------------------------------------------------------ #

    def append(self, op: Dict[str, Any]) -> None:
        """Append one committed mutation to the journal (fsynced).

        On ``OSError`` (disk full, failed fsync) the journal is repaired
        — truncated back to its pre-append length, so the record whose
        write failed is guaranteed absent — and the error re-raised for
        the server to roll back and degrade on.
        """
        record = (
            json.dumps(op, separators=(",", ":"), sort_keys=True) + "\n"
        ).encode("utf-8")
        if self._journal_fh is None:
            self._journal_fh = open(self.journal_path, "ab")
        fh = self._journal_fh
        fh.seek(0, os.SEEK_END)
        offset = fh.tell()
        fault = (
            self.fault_plane.take(SITE_JOURNAL_APPEND)
            if self.fault_plane is not None else None
        )
        try:
            self._write_record(fh, record, fault)
        except InjectedCrash:
            raise  # simulated power loss: no repair, by definition
        except OSError:
            self._truncate_to(offset)
            raise

    def _write_record(
        self, fh, record: bytes, fault: Optional[FaultSpec]
    ) -> None:
        if fault is None:
            fh.write(record)
            fh.flush()
            os.fsync(fh.fileno())
            return
        kind = fault.kind
        if kind == "disk_full":
            raise OSError(
                errno.ENOSPC, "injected fault: no space left on device"
            )
        if kind == "fsync_error":
            fh.write(record)
            fh.flush()
            raise OSError(errno.EIO, "injected fault: fsync failed")
        if kind in ("torn_write", "crash_after_append"):
            if kind == "torn_write":
                # Strict prefix: at least 1 byte, never the whole record.
                rng = (self.fault_plane.rng if self.fault_plane is not None
                       else None)
                cut = fault.payload.get("cut")
                if cut is None:
                    cut = (rng.randint(1, len(record) - 1)
                           if rng is not None else len(record) // 2)
                record = record[:max(1, min(int(cut), len(record) - 1))]
            fh.write(record)
            fh.flush()
            os.fsync(fh.fileno())
            raise InjectedCrash(f"injected fault: {kind}")
        raise ReproError(
            f"fault kind {kind!r} is not a persistence fault"
        )  # pragma: no cover - campaign only arms persistence kinds

    def _truncate_to(self, offset: int) -> None:
        """Best-effort repair: cut the journal back to ``offset``.

        If even the truncate fails, the leftover partial record is a torn
        tail, which the next recovery skips — so the failure mode stays
        recoverable either way.
        """
        try:
            if self._journal_fh is not None:
                self._journal_fh.close()
        except OSError:  # pragma: no cover - close failure is harmless
            pass
        self._journal_fh = None
        try:
            os.truncate(self.journal_path, offset)
        except OSError:  # pragma: no cover - torn tail handled at recovery
            pass

    def compact(
        self,
        streams: StreamSet,
        *,
        next_id: Optional[int] = None,
        applied_rids: Optional[Dict[str, Dict[str, Any]]] = None,
        analyses: Optional[Dict[int, str]] = None,
        failed_links: Optional[List] = None,
    ) -> Path:
        """Write a fresh snapshot atomically and truncate the journal.

        ``analyses`` maps stream ids to the bound-backend name each was
        admitted under; it is embedded per stream entry so recovery
        re-vets every stream under the same analysis (the snapshot stays
        a valid problem file — ``stream_from_spec`` ignores the key).
        ``failed_links`` is the broker's current failed-link set; it must
        be restored *before* the streams replay, so it rides in the
        snapshot rather than being reconstructed from journal history.
        """
        entries = streams_to_spec(streams)
        if analyses:
            for entry in entries:
                name = analyses.get(entry["id"])
                if name is not None:
                    entry["analysis"] = name
        payload: Dict[str, Any] = {
            "topology": self.topology_spec,
            "streams": entries,
        }
        if next_id is not None:
            payload["next_id"] = int(next_id)
        if applied_rids:
            payload["applied"] = dict(applied_rids)
        if failed_links:
            payload["failed_links"] = sorted(
                [int(u), int(v)] for u, v in failed_links
            )
        tmp = self.snapshot_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, indent=2) + "\n")
        os.replace(tmp, self.snapshot_path)
        if self._journal_fh is not None:
            self._journal_fh.close()
            self._journal_fh = None
        open(self.journal_path, "w").close()
        return self.snapshot_path

    def close(self) -> None:
        if self._journal_fh is not None:
            self._journal_fh.close()
            self._journal_fh = None
