"""Snapshot + journal persistence for the channel broker.

The broker's durable state is the admitted stream set. It is stored as:

``snapshot.json``
    A plain problem file (see :mod:`repro.io`): topology spec + admitted
    streams, plus a ``next_id`` key recording the broker's fresh-id
    high-water mark (ignored by ``load_problem``) so released ids are
    never reissued across restarts. Written atomically (tmp file +
    rename) by ``compact``.
``journal.jsonl``
    One JSON line per committed mutation since the snapshot:
    ``{"op": "admit", "streams": [...]}`` (streams as problem-file
    entries with server-assigned ids, appended only after the engine
    accepted the batch) and ``{"op": "release", "ids": [...]}``.

Recovery replays the snapshot as one admit batch and then the journal in
order, through the normal engine — the analysis is deterministic, so a
set that was admitted before restarts admits again bit-identically. After
a successful recovery the broker compacts, so the journal stays short.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..core.streams import StreamSet
from ..errors import ReproError
from ..io import streams_to_spec

__all__ = ["BrokerState"]


class BrokerState:
    """Owns the snapshot and journal files under one state directory."""

    def __init__(
        self, state_dir: Union[str, Path], topology_spec: Dict[str, Any]
    ):
        self.dir = Path(state_dir)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.topology_spec = dict(topology_spec)
        self.snapshot_path = self.dir / "snapshot.json"
        self.journal_path = self.dir / "journal.jsonl"
        self._journal_fh = None

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #

    def recover(
        self,
    ) -> Tuple[Optional[List[dict]], List[Dict[str, Any]], Optional[int]]:
        """Return ``(snapshot stream entries or None, journal ops,
        snapshotted next_id or None)``.

        Validates that a present snapshot was taken over the same topology
        the server is being started with — recovering a 10x10-mesh
        admitted set onto a torus would silently re-route everything.
        """
        snapshot = None
        next_id = None
        if self.snapshot_path.exists():
            spec = json.loads(self.snapshot_path.read_text())
            topo = spec.get("topology")
            if topo != self.topology_spec:
                raise ReproError(
                    f"snapshot topology {topo} does not match the "
                    f"server topology {self.topology_spec}"
                )
            snapshot = list(spec.get("streams", []))
            if spec.get("next_id") is not None:
                next_id = int(spec["next_id"])
        ops: List[Dict[str, Any]] = []
        if self.journal_path.exists():
            with open(self.journal_path) as fh:
                for lineno, line in enumerate(fh, 1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        ops.append(json.loads(line))
                    except json.JSONDecodeError:
                        # A torn final line (crash mid-append) is expected;
                        # anything before it must parse.
                        with open(self.journal_path) as check:
                            rest = check.readlines()[lineno:]
                        if any(r.strip() for r in rest):
                            raise ReproError(
                                f"corrupt journal line {lineno} in "
                                f"{self.journal_path}"
                            ) from None
                        break
        return snapshot, ops, next_id

    # ------------------------------------------------------------------ #
    # Mutation log
    # ------------------------------------------------------------------ #

    def append(self, op: Dict[str, Any]) -> None:
        """Append one committed mutation to the journal (flushed)."""
        if self._journal_fh is None:
            self._journal_fh = open(self.journal_path, "a")
        self._journal_fh.write(
            json.dumps(op, separators=(",", ":"), sort_keys=True) + "\n"
        )
        self._journal_fh.flush()
        os.fsync(self._journal_fh.fileno())

    def compact(
        self, streams: StreamSet, *, next_id: Optional[int] = None
    ) -> Path:
        """Write a fresh snapshot atomically and truncate the journal."""
        payload = {
            "topology": self.topology_spec,
            "streams": streams_to_spec(streams),
        }
        if next_id is not None:
            payload["next_id"] = int(next_id)
        tmp = self.snapshot_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, indent=2) + "\n")
        os.replace(tmp, self.snapshot_path)
        if self._journal_fh is not None:
            self._journal_fh.close()
            self._journal_fh = None
        open(self.journal_path, "w").close()
        return self.snapshot_path

    def close(self) -> None:
        if self._journal_fh is not None:
            self._journal_fh.close()
            self._journal_fh = None
