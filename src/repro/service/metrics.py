"""Per-op service metrics: counters and log-scale latency histograms.

The broker tracks, per protocol op, a request counter and a latency
histogram with power-of-two bucket boundaries (microseconds up to ~8 s),
plus admit/reject outcome counters and the batch sizes the worker drained
from the request queue. Everything is exposed through the ``stats`` op —
no external metrics dependency is assumed.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

__all__ = ["LatencyHistogram", "ServiceMetrics"]

# Bucket upper bounds in microseconds: 1us, 2us, ... ~8.4s, +inf.
_BUCKET_BOUNDS_US = [1 << i for i in range(24)]


class LatencyHistogram:
    """Latency histogram with power-of-two microsecond buckets."""

    def __init__(self) -> None:
        self.counts: List[int] = [0] * (len(_BUCKET_BOUNDS_US) + 1)
        self.total_seconds = 0.0
        self.max_seconds = 0.0
        self.count = 0

    def record(self, seconds: float) -> None:
        us = seconds * 1e6
        for i, bound in enumerate(_BUCKET_BOUNDS_US):
            if us <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.count += 1
        self.total_seconds += seconds
        self.max_seconds = max(self.max_seconds, seconds)

    def quantile(self, q: float) -> Optional[float]:
        """Approximate quantile in seconds (bucket upper bound), or
        ``None`` when empty."""
        if self.count == 0:
            return None
        target = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target:
                if i < len(_BUCKET_BOUNDS_US):
                    return _BUCKET_BOUNDS_US[i] / 1e6
                return self.max_seconds
        return self.max_seconds

    def to_dict(self) -> Dict[str, object]:
        buckets = {
            f"le_{bound}us": c
            for bound, c in zip(_BUCKET_BOUNDS_US, self.counts)
            if c
        }
        if self.counts[-1]:
            buckets["le_inf"] = self.counts[-1]
        mean = self.total_seconds / self.count if self.count else 0.0
        return {
            "count": self.count,
            "mean_ms": round(mean * 1e3, 4),
            "max_ms": round(self.max_seconds * 1e3, 4),
            "p50_ms": _ms(self.quantile(0.5)),
            "p99_ms": _ms(self.quantile(0.99)),
            "buckets": buckets,
        }


def _ms(seconds: Optional[float]) -> Optional[float]:
    return None if seconds is None else round(seconds * 1e3, 4)


class ServiceMetrics:
    """Aggregated broker metrics, serialised by the ``stats`` op."""

    def __init__(self) -> None:
        self.started_at = time.time()
        self.op_counts: Dict[str, int] = {}
        self.op_errors: Dict[str, int] = {}
        self.op_latency: Dict[str, LatencyHistogram] = {}
        self.admitted_ok = 0
        self.admitted_rejected = 0
        self.batches = 0
        self.batched_requests = 0
        self.max_batch = 0
        self.connections = 0

    def record_op(self, op: str, seconds: float, *, error: bool = False) -> None:
        self.op_counts[op] = self.op_counts.get(op, 0) + 1
        if error:
            self.op_errors[op] = self.op_errors.get(op, 0) + 1
        self.op_latency.setdefault(op, LatencyHistogram()).record(seconds)

    def record_batch(self, size: int) -> None:
        self.batches += 1
        self.batched_requests += size
        self.max_batch = max(self.max_batch, size)

    def to_dict(self) -> Dict[str, object]:
        mean_batch = (
            self.batched_requests / self.batches if self.batches else 0.0
        )
        return {
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "connections": self.connections,
            "ops": dict(sorted(self.op_counts.items())),
            "errors": dict(sorted(self.op_errors.items())),
            "admit": {
                "accepted": self.admitted_ok,
                "rejected": self.admitted_rejected,
            },
            "batching": {
                "batches": self.batches,
                "requests": self.batched_requests,
                "mean_size": round(mean_batch, 3),
                "max_size": self.max_batch,
            },
            "latency": {
                op: h.to_dict()
                for op, h in sorted(self.op_latency.items())
            },
        }
