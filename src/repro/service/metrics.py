"""Per-op service metrics: counters and log-scale latency histograms.

The broker tracks, per protocol op, a request counter and a latency
histogram with power-of-two bucket boundaries (microseconds up to ~8 s),
plus admit/reject outcome counters and the batch sizes the worker drained
from the request queue. Everything is exposed through the ``stats`` op —
no external metrics dependency is assumed — and, since PR 4, through the
shared :class:`~repro.obs.metrics.MetricsRegistry` as Prometheus text
(``stats`` with ``format: "prometheus"``, or the ``--metrics-port`` HTTP
scrape endpoint of ``repro serve``).

Hot-path cost: the worker loop records one latency sample per request.
Bucketing is O(1) (one ``bit_length`` on the power-of-two ladder — the
original implementation scanned all 24 bounds per sample), and the two
``time.perf_counter()`` reads per request can be disabled entirely with
``REPRO_SERVICE_TIMING=0`` (op/outcome counters are always kept; only
the latency histograms go dark). ``benchmarks/perf/run_admission.py``
pins the per-sample cost with a microbenchmark guard.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional

from ..obs.metrics import (
    DEFAULT_TIME_BUCKETS_US,
    Histogram as _Histogram,
    MetricsRegistry,
)

__all__ = ["LatencyHistogram", "ServiceMetrics", "TIMING_ENV"]

#: Disable per-request wall-clock latency sampling when set to 0/false.
TIMING_ENV = "REPRO_SERVICE_TIMING"

# Bucket upper bounds in microseconds: 1us, 2us, ... ~8.4s, +inf.
_BUCKET_BOUNDS_US = list(DEFAULT_TIME_BUCKETS_US)


def timing_enabled_from_env() -> bool:
    return os.environ.get(TIMING_ENV, "1").lower() not in (
        "", "0", "false", "no", "off",
    )


class LatencyHistogram:
    """Latency histogram with power-of-two microsecond buckets.

    A seconds-based facade over :class:`repro.obs.metrics.Histogram`
    (which observes microseconds and does the O(1) bucketing); the broker
    registers the underlying histogram in the shared registry so the
    same counts serve both the JSON ``stats`` op and Prometheus export.
    """

    __slots__ = ("_h",)

    def __init__(self, hist: Optional[_Histogram] = None) -> None:
        self._h = hist if hist is not None else _Histogram()

    def record(self, seconds: float) -> None:
        self._h.observe(seconds * 1e6)

    @property
    def count(self) -> int:
        return self._h.count

    @property
    def counts(self) -> List[int]:
        return self._h.counts

    @property
    def total_seconds(self) -> float:
        return self._h.sum / 1e6

    @property
    def max_seconds(self) -> float:
        return self._h.max / 1e6

    def quantile(self, q: float) -> Optional[float]:
        """Approximate quantile in seconds (bucket upper bound), or
        ``None`` when empty."""
        if self._h.count == 0:
            return None
        return self._h.quantile(q) / 1e6

    def to_dict(self) -> Dict[str, object]:
        h = self._h
        buckets = {
            f"le_{bound}us": c
            for bound, c in zip(_BUCKET_BOUNDS_US, h.counts)
            if c
        }
        if h.counts[-1]:
            buckets["le_inf"] = h.counts[-1]
        mean = self.total_seconds / h.count if h.count else 0.0
        return {
            "count": h.count,
            "mean_ms": round(mean * 1e3, 4),
            "max_ms": round(self.max_seconds * 1e3, 4),
            "p50_ms": _ms(self.quantile(0.5)),
            "p99_ms": _ms(self.quantile(0.99)),
            "buckets": buckets,
        }


def _ms(seconds: Optional[float]) -> Optional[float]:
    return None if seconds is None else round(seconds * 1e3, 4)


class ServiceMetrics:
    """Aggregated broker metrics, serialised by the ``stats`` op.

    Scalar counters stay plain Python ints (the worker loop touches them
    once per request); latency histograms live directly in the shared
    :class:`MetricsRegistry`. :meth:`sync_registry` copies the scalars
    into registry counters/gauges, so Prometheus rendering reflects the
    same numbers without taxing the hot path.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        *,
        timing: Optional[bool] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        #: Whether per-request latency sampling is on (``REPRO_SERVICE_TIMING``).
        self.timing_enabled = (
            timing_enabled_from_env() if timing is None else bool(timing)
        )
        self.started_at = time.time()
        self.op_counts: Dict[str, int] = {}
        self.op_errors: Dict[str, int] = {}
        self.op_latency: Dict[str, LatencyHistogram] = {}
        self.admitted_ok = 0
        self.admitted_rejected = 0
        #: Journal append failures survived (rollback + degraded entry).
        self.journal_errors = 0
        #: Times the broker entered read-only degraded mode.
        self.degraded_entered = 0
        #: Mutations answered from the idempotency table (rid replays).
        self.duplicates = 0
        self.batches = 0
        self.batched_requests = 0
        self.max_batch = 0
        self.connections = 0

    def record_op(
        self,
        op: str,
        seconds: Optional[float] = None,
        *,
        error: bool = False,
    ) -> None:
        """Count one request; ``seconds`` feeds the latency histogram
        (pass ``None`` when timing is disabled)."""
        self.op_counts[op] = self.op_counts.get(op, 0) + 1
        if error:
            self.op_errors[op] = self.op_errors.get(op, 0) + 1
        if seconds is not None:
            hist = self.op_latency.get(op)
            if hist is None:
                hist = self.op_latency[op] = LatencyHistogram(
                    self.registry.histogram(
                        "repro_broker_op_latency_us",
                        "Request handling latency in microseconds, by op.",
                        op=op,
                    )
                )
            hist.record(seconds)

    def record_batch(self, size: int) -> None:
        self.batches += 1
        self.batched_requests += size
        self.max_batch = max(self.max_batch, size)

    def to_dict(self) -> Dict[str, object]:
        mean_batch = (
            self.batched_requests / self.batches if self.batches else 0.0
        )
        return {
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "connections": self.connections,
            "ops": dict(sorted(self.op_counts.items())),
            "errors": dict(sorted(self.op_errors.items())),
            "admit": {
                "accepted": self.admitted_ok,
                "rejected": self.admitted_rejected,
            },
            "faults": {
                "journal_errors": self.journal_errors,
                "degraded_entered": self.degraded_entered,
                "duplicates": self.duplicates,
            },
            "batching": {
                "batches": self.batches,
                "requests": self.batched_requests,
                "mean_size": round(mean_batch, 3),
                "max_size": self.max_batch,
            },
            "latency": {
                op: h.to_dict()
                for op, h in sorted(self.op_latency.items())
            },
        }

    # ------------------------------------------------------------------ #
    # Prometheus export
    # ------------------------------------------------------------------ #

    def sync_registry(self) -> MetricsRegistry:
        """Copy the scalar counters into the shared registry and return it.

        Called per export (``stats --format prometheus`` / HTTP scrape),
        never per request. Latency histograms are already registry-backed.
        """
        reg = self.registry
        reg.gauge(
            "repro_broker_uptime_seconds", "Seconds since broker start."
        ).set(time.time() - self.started_at)
        reg.counter(
            "repro_broker_connections_total", "Client connections accepted."
        ).value = float(self.connections)
        for op, n in self.op_counts.items():
            reg.counter(
                "repro_broker_ops_total", "Requests handled, by op.", op=op
            ).value = float(n)
        for op, n in self.op_errors.items():
            reg.counter(
                "repro_broker_op_errors_total", "Failed requests, by op.",
                op=op,
            ).value = float(n)
        for outcome, n in (
            ("accepted", self.admitted_ok),
            ("rejected", self.admitted_rejected),
        ):
            reg.counter(
                "repro_broker_admit_total",
                "Admission requests, by outcome.",
                outcome=outcome,
            ).value = float(n)
        reg.counter(
            "repro_broker_journal_errors_total",
            "Journal append failures survived via rollback.",
        ).value = float(self.journal_errors)
        reg.counter(
            "repro_broker_degraded_entered_total",
            "Times the broker entered read-only degraded mode.",
        ).value = float(self.degraded_entered)
        reg.counter(
            "repro_broker_duplicate_requests_total",
            "Mutations answered from the idempotency (rid) table.",
        ).value = float(self.duplicates)
        reg.counter(
            "repro_broker_batches_total", "Worker queue drains."
        ).value = float(self.batches)
        reg.counter(
            "repro_broker_batched_requests_total",
            "Requests drained in batches.",
        ).value = float(self.batched_requests)
        reg.gauge(
            "repro_broker_batch_max_size", "Largest batch drained so far."
        ).set(self.max_batch)
        return reg

    def render_prometheus(self) -> str:
        """The service metrics in Prometheus text exposition format."""
        return self.sync_registry().render()
