"""Asyncio JSON-lines broker server (``repro serve``).

Architecture: connection handlers only read lines and enqueue
``(request, connection)`` pairs on a single FIFO; one worker task drains
the queue in batches (amortising event-loop wakeups under load — the
recorded batch sizes are visible in the ``stats`` op) and runs the
CPU-bound admission engine serially, which also makes every decision
linearisable without locks. Responses preserve per-connection request
order because the FIFO does.

The engine, persistence, idempotency and protocol dispatch live in
:class:`repro.service.host.EngineHost`; the server owns exactly one host
and adds the socket front end. The fleet (:mod:`repro.fleet`) hosts many
of the same objects behind an HTTP gateway instead.
"""

from __future__ import annotations

import asyncio
import logging
import socket as socket_module
import stat
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..errors import ReproError
from ..faults.plane import FaultPlane
from .host import DegradedError, EngineHost
from .protocol import ProtocolError, decode, encode, error_response

__all__ = ["BrokerServer", "DegradedError", "clear_stale_socket"]

logger = logging.getLogger(__name__)

#: Queue sentinel (in the ``prebuilt`` slot): the connection reached EOF;
#: the worker closes its writer once every earlier response is flushed.
_EOF = object()


def clear_stale_socket(sock_path: Path) -> None:
    """Remove ``sock_path`` iff it is a unix socket nobody serves.

    The hygiene rules every listener in this codebase (broker and fleet
    worker alike) applies before binding: refuse to touch anything that
    is not a socket, probe-connect to distinguish a live server (refuse)
    from a crash leftover (reclaim), and never race a concurrent bind.
    """
    if not stat.S_ISSOCK(sock_path.stat().st_mode):
        raise ReproError(
            f"{sock_path} exists and is not a socket; refusing to "
            "remove it"
        )
    probe = socket_module.socket(
        socket_module.AF_UNIX, socket_module.SOCK_STREAM
    )
    try:
        probe.settimeout(1.0)
        try:
            probe.connect(str(sock_path))
        except (ConnectionRefusedError, socket_module.timeout):
            sock_path.unlink(missing_ok=True)
            logger.info("removed stale socket %s", sock_path)
            return
        except FileNotFoundError:  # pragma: no cover - lost a race
            return
    finally:
        probe.close()
    raise ReproError(
        f"socket {sock_path} is already served by a live broker; "
        "stop it first or choose another --socket path"
    )


class BrokerServer:
    """The channel broker: an :class:`EngineHost` behind a socket.

    Parameters
    ----------
    topology_spec:
        Problem-file topology spec (``{"type": "mesh", "width": 8, ...}``).
    state_dir:
        Directory for snapshot + journal; ``None`` disables persistence.
    incremental:
        Engine mode override; ``None`` reads ``REPRO_INCREMENTAL``.
    batch_max:
        Maximum requests the worker drains per wakeup.
    fault_plane:
        Chaos-testing hook (see :mod:`repro.faults.plane`); installed
        into the persistence layer. ``None`` in production use.
    """

    def __init__(
        self,
        topology_spec: Dict[str, Any],
        *,
        state_dir: Optional[Union[str, Path]] = None,
        use_modify: bool = True,
        residency_margin: int = 0,
        analysis: Optional[str] = None,
        incremental: Optional[bool] = None,
        batch_max: int = 64,
        fault_plane: Optional[FaultPlane] = None,
    ):
        self.host = EngineHost(
            topology_spec,
            state_dir=state_dir,
            use_modify=use_modify,
            residency_margin=residency_margin,
            analysis=analysis,
            incremental=incremental,
            fault_plane=fault_plane,
            on_shutdown=self.request_shutdown,
        )
        self.batch_max = max(1, int(batch_max))
        self._queue: Optional[asyncio.Queue] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._metrics_server: Optional[asyncio.base_events.Server] = None
        self._unix_path: Optional[Path] = None
        self._worker_task: Optional[asyncio.Task] = None
        self._stopping: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------ #
    # Host delegation (the pre-fleet public surface, kept stable)
    # ------------------------------------------------------------------ #

    @property
    def topology_spec(self):
        return self.host.topology_spec

    @property
    def topology(self):
        return self.host.topology

    @property
    def routing(self):
        return self.host.routing

    @property
    def engine(self):
        return self.host.engine

    @property
    def metrics(self):
        return self.host.metrics

    @property
    def state(self):
        return self.host.state

    @property
    def degraded(self) -> bool:
        return self.host.degraded

    @property
    def degraded_reason(self) -> Optional[str]:
        return self.host.degraded_reason

    @property
    def _applied(self) -> Dict[str, Dict[str, Any]]:
        return self.host._applied

    def handle_request(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Execute one protocol request and return the response object."""
        return self.host.handle_request(request)

    def _record_applied(
        self, rid: Optional[str], outcome: Dict[str, Any]
    ) -> None:
        self.host._record_applied(rid, outcome)

    def prometheus_text(self) -> str:
        """Service + engine metrics in Prometheus text exposition format."""
        return self.host.prometheus_text()

    # ------------------------------------------------------------------ #
    # Asyncio front end
    # ------------------------------------------------------------------ #

    async def start_unix(self, path: Union[str, Path]) -> None:
        """Listen on a unix socket.

        A pre-existing socket file is probed before binding: if a live
        broker still answers on it, refuse with a clear error (two
        servers must never share a path); a stale leftover from a crash
        or SIGKILL is removed and the path reused. The file is unlinked
        again on clean shutdown, so only unclean exits leave one behind.
        """
        sock_path = Path(path)
        if sock_path.exists():
            self._clear_stale_socket(sock_path)
        self._init_async()
        self._server = await asyncio.start_unix_server(
            self._client_connected, path=str(sock_path)
        )
        self._unix_path = sock_path

    # Kept as a method name for callers/tests that patch it; the logic
    # is module-level so the fleet's worker processes apply the same
    # hygiene rules to their per-worker sockets.
    _clear_stale_socket = staticmethod(
        lambda sock_path: clear_stale_socket(sock_path)
    )

    async def start_tcp(self, host: str, port: int) -> None:
        """Listen on a TCP address."""
        self._init_async()
        self._server = await asyncio.start_server(
            self._client_connected, host=host, port=port
        )

    def _init_async(self) -> None:
        self._queue = asyncio.Queue()
        self._stopping = asyncio.Event()
        self._worker_task = asyncio.create_task(self._worker())

    async def start_metrics_http(self, host: str, port: int) -> None:
        """Start a minimal HTTP listener serving ``GET /metrics``.

        One-shot, dependency-free Prometheus scrape endpoint: each
        connection gets one response (``Connection: close``). Runs on the
        broker's event loop; rendering reads engine state between worker
        batches, so scrapes observe consistent counters.
        """
        self._metrics_server = await asyncio.start_server(
            self._metrics_client, host=host, port=port
        )

    async def _metrics_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            if not request_line:
                return
            parts = request_line.decode("latin-1").split()
            path = parts[1] if len(parts) >= 2 else "/"
            while True:
                header = await reader.readline()
                if not header or header in (b"\r\n", b"\n"):
                    break
            if path in ("/metrics", "/"):
                body = self.prometheus_text().encode()
                status = "200 OK"
                ctype = "text/plain; version=0.0.4; charset=utf-8"
            else:
                body = b"not found\n"
                status = "404 Not Found"
                ctype = "text/plain; charset=utf-8"
            writer.write(
                (
                    f"HTTP/1.1 {status}\r\n"
                    f"Content-Type: {ctype}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("latin-1")
                + body
            )
            await writer.drain()
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            await self._close_writer(writer)

    async def serve_forever(self) -> None:
        """Serve until a ``shutdown`` op (or :meth:`request_shutdown`)."""
        if self._server is None:
            raise ReproError("server not started")
        assert self._stopping is not None
        await self._stopping.wait()
        # aclose drains the queue, so the shutdown acknowledgement and any
        # queued responses are flushed before the worker stops.
        await self.aclose()

    def request_shutdown(self) -> None:
        """Ask the serve loop to stop (thread-unsafe; call on the loop)."""
        if self._stopping is not None:
            self._stopping.set()

    async def aclose(self) -> None:
        """Close the listener, drain the queue, stop the worker, flush
        persistence. Queued requests are answered before the worker is
        cancelled, so a committed op is never left unacknowledged."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._unix_path is not None:
            # Clean shutdown leaves no stale socket file behind.
            self._unix_path.unlink(missing_ok=True)
            self._unix_path = None
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
            self._metrics_server = None
        if self._worker_task is not None:
            if self._queue is not None:
                try:
                    await asyncio.wait_for(self._queue.join(), timeout=10.0)
                except asyncio.TimeoutError:  # pragma: no cover - defensive
                    logger.warning(
                        "broker queue did not drain within 10s; "
                        "cancelling worker with requests pending"
                    )
            self._worker_task.cancel()
            try:
                await self._worker_task
            except asyncio.CancelledError:
                pass
            self._worker_task = None
        if self._queue is not None:
            # Close writers parked behind EOF sentinels the (now stopped)
            # worker never reached.
            while not self._queue.empty():
                _, prebuilt, writer = self._queue.get_nowait()
                self._queue.task_done()
                if prebuilt is _EOF:
                    await self._close_writer(writer)
        self.host.close()

    async def _client_connected(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.connections += 1
        assert self._queue is not None
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request = decode(line)
                except ProtocolError as exc:
                    # Pre-built error keeps per-connection ordering.
                    await self._queue.put(
                        (None, error_response({}, str(exc),
                                              code="protocol"), writer)
                    )
                    continue
                await self._queue.put((request, None, writer))
        except (OSError, asyncio.IncompleteReadError):
            # OSError, not just ConnectionResetError: a peer that slams
            # the connection shut mid-response surfaces as BrokenPipeError
            # on the reader once connection_lost propagates the transport
            # error (found by the chaos campaign's drop_after_send fault).
            pass
        except asyncio.CancelledError:
            # Loop teardown (asyncio.run) cancels handlers still parked in
            # readline; returning quietly avoids a logged traceback from
            # StreamReaderProtocol's done-callback.
            pass
        finally:
            # Don't close the writer here: a client that half-closes its
            # write side after pipelining requests still expects the queued
            # responses. The worker closes the writer when it reaches this
            # sentinel, i.e. after everything queued before EOF is flushed.
            self._queue.put_nowait((None, _EOF, writer))

    @staticmethod
    async def _close_writer(writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
            await writer.wait_closed()
        except Exception:
            pass

    async def _worker(self) -> None:
        assert self._queue is not None
        while True:
            batch = [await self._queue.get()]
            while (len(batch) < self.batch_max
                   and not self._queue.empty()):
                batch.append(self._queue.get_nowait())
            try:
                requests = sum(
                    1 for _, prebuilt, _ in batch if prebuilt is not _EOF
                )
                if requests:
                    self.metrics.record_batch(requests)
                writers = []
                eof_writers = []
                for request, prebuilt, writer in batch:
                    if prebuilt is _EOF:
                        eof_writers.append(writer)
                        continue
                    try:
                        response = (prebuilt if request is None
                                    else self.handle_request(request))
                        if not writer.is_closing():
                            writer.write(encode(response))
                            if writer not in writers:
                                writers.append(writer)
                    except Exception:  # pragma: no cover - defensive
                        # handle_request catches everything itself; this
                        # guards encode/write so one bad request can never
                        # kill the worker (and with it the whole broker).
                        logger.exception("broker worker request failed")
                for writer in writers:
                    try:
                        await writer.drain()
                    except (ConnectionResetError, RuntimeError):
                        pass
                for writer in eof_writers:
                    await self._close_writer(writer)
            finally:
                for _ in batch:
                    self._queue.task_done()
