"""Online channel-broker service (the paper's host processor, as a daemon).

The paper's deployment model (Fig. 1) is a host processor that owns all
traffic information and admits real-time jobs online by re-running the
feasibility test. This package turns that role into a long-lived service:

:mod:`repro.service.engine`
    :class:`IncrementalAdmissionEngine` — admission control with per-stream
    caches of routes, HP sets and delay bounds; on admit/release it
    recomputes only the streams whose transitive HP closure intersects the
    change, with bit-identical reports to a from-scratch
    :class:`~repro.core.feasibility.FeasibilityAnalyzer` run.

:mod:`repro.service.server`
    :class:`BrokerServer` — an asyncio JSON-lines server (``repro serve``)
    exposing ``admit`` / ``release`` / ``query`` / ``report`` /
    ``snapshot`` / ``stats`` ops with request batching, per-op metrics and
    snapshot+journal persistence.

:mod:`repro.service.loadgen`
    :class:`BrokerClient` and a seeded churn load generator
    (``repro load``), also used by ``benchmarks/perf/run_admission.py``.
"""

from .engine import EngineStats, IncrementalAdmissionEngine
from .host import DegradedError, EngineHost
from .loadgen import BrokerClient, LoadSummary, run_load
from .metrics import LatencyHistogram, ServiceMetrics
from .persistence import BrokerState
from .server import BrokerServer

__all__ = [
    "IncrementalAdmissionEngine",
    "EngineStats",
    "EngineHost",
    "DegradedError",
    "BrokerServer",
    "BrokerClient",
    "BrokerState",
    "LatencyHistogram",
    "ServiceMetrics",
    "LoadSummary",
    "run_load",
]
