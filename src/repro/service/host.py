"""EngineHost: one admission engine behind the broker protocol.

Historically the broker (:class:`repro.service.server.BrokerServer`)
owned everything: the engine, persistence, idempotency, degraded mode,
protocol dispatch *and* the asyncio front end. The fleet subsystem
(:mod:`repro.fleet`) needs to host many engines — one per (shard,
tenant) — without dragging a socket listener along with each, so the
synchronous core lives here as :class:`EngineHost` and the server wraps
exactly one of them.

An :class:`EngineHost` is the unit of state the rest of the system
composes:

* ``handle_request`` executes one protocol op (the same JSON objects the
  wire carries) against the engine, with metrics, idempotent ``rid``
  deduplication and read-only degradation on journal failures;
* snapshot + journal persistence and restart recovery
  (:mod:`repro.service.persistence`), factored into
  :meth:`load_snapshot` / :meth:`apply_journal_op` so a warm standby can
  replay the same records the recovery path does
  (:mod:`repro.fleet.replication`);
* :meth:`fingerprint` — the SHA-256 identity over everything recovery
  promises to preserve, shared by the chaos campaign and the fleet's
  failover assertions.
"""

from __future__ import annotations

import hashlib
import json
import logging
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from .. import __version__
from ..core import backends as _backends
from ..core.streams import MessageStream
from ..errors import AnalysisError, ReproError, StreamError
from ..faults.plane import FaultPlane
from ..io import (
    report_to_spec,
    stream_from_spec,
    stream_to_spec,
    topology_from_spec,
)
from ..obs.trace import span as _span
from ..topology import FaultAwareRouting, normalize_link
from .engine import IncrementalAdmissionEngine, RoutingDelta
from .metrics import ServiceMetrics
from .persistence import RID_CAP, BrokerState
from .protocol import (
    ProtocolError,
    coerce_int,
    coerce_rid,
    error_response,
)

__all__ = ["DegradedError", "EngineHost"]

logger = logging.getLogger(__name__)


class DegradedError(ReproError):
    """Raised for mutations while the host is read-only (``degraded``).

    Entered when the journal becomes unwritable: the failed mutation is
    rolled back (memory must keep matching disk), and further mutations
    are refused until a successful ``snapshot`` op re-establishes durable
    storage. Reads and idempotent replays of already-committed mutations
    keep working throughout.
    """


def _error_code(exc: ReproError) -> str:
    if isinstance(exc, DegradedError):
        return "degraded"
    if isinstance(exc, ProtocolError):
        return "protocol"
    if isinstance(exc, StreamError):
        return "stream"
    if isinstance(exc, AnalysisError):
        return "analysis"
    return "error"


class EngineHost:
    """One admission engine + persistence + protocol dispatch.

    Parameters
    ----------
    topology_spec:
        Problem-file topology spec (``{"type": "mesh", "width": 8, ...}``).
    state_dir:
        Directory for snapshot + journal; ``None`` disables persistence.
    incremental:
        Engine mode override; ``None`` reads ``REPRO_INCREMENTAL``.
    fault_plane:
        Chaos-testing hook (see :mod:`repro.faults.plane`); installed
        into the persistence layer. ``None`` in production use.
    on_shutdown:
        Callback invoked by the ``shutdown`` op (the server passes its
        stop-event setter; standalone hosts leave it ``None``).
    """

    def __init__(
        self,
        topology_spec: Dict[str, Any],
        *,
        state_dir: Optional[Union[str, Path]] = None,
        use_modify: bool = True,
        residency_margin: int = 0,
        analysis: Optional[str] = None,
        incremental: Optional[bool] = None,
        fault_plane: Optional[FaultPlane] = None,
        on_shutdown: Optional[Callable[[], None]] = None,
    ):
        self.topology_spec = dict(topology_spec)
        self.topology, self.routing = topology_from_spec(self.topology_spec)
        #: The intact network's routing; ``self.routing`` tracks the
        #: engine's *effective* routing (fault-aware once links failed).
        self.base_routing = self.routing
        #: Failed physical links, as normalised ``(u, v)`` tuples.
        self.failed_links: set = set()
        self.engine = IncrementalAdmissionEngine(
            self.routing,
            use_modify=use_modify,
            residency_margin=residency_margin,
            analysis=analysis,
            incremental=incremental,
        )
        self.metrics = ServiceMetrics()
        self.on_shutdown = on_shutdown
        #: Read-only degraded mode (journal unwritable); see DegradedError.
        self.degraded = False
        self.degraded_reason: Optional[str] = None
        #: rid -> recorded outcome of the committed mutation (FIFO-capped).
        self._applied: Dict[str, Dict[str, Any]] = {}
        self.state: Optional[BrokerState] = None
        if state_dir is not None:
            self.state = BrokerState(
                state_dir, self.topology_spec, fault_plane=fault_plane
            )
            self._recover()

    # ------------------------------------------------------------------ #
    # Recovery / replication building blocks
    # ------------------------------------------------------------------ #

    def _recover(self) -> None:
        assert self.state is not None
        rec = self.state.recover()
        if rec.next_id is not None:
            # Restore the fresh-id high-water mark so ids released before
            # the snapshot are never reissued across restarts.
            self.engine.advance_next_id(rec.next_id)
        # The idempotency table survives restarts: snapshot-persisted rids
        # first, then the rids of replayed journal entries, so a client
        # retrying an op whose ack died with the old process still gets
        # the committed outcome instead of a double-apply.
        self._applied.update(rec.applied_rids)
        if rec.failed_links:
            # Degrade the routing *before* the streams replay: the
            # snapshot's admitted set was vetted on the degraded network,
            # so it must re-admit on the same one — and with the engine
            # still empty, the swap reroutes nothing.
            self._swap_routing(
                {normalize_link(u, v) for u, v in rec.failed_links}
            )
        if rec.snapshot:
            self.load_snapshot(rec.snapshot)
        for op in rec.ops:
            self.apply_journal_op(op)
        if rec.snapshot or rec.ops or rec.torn_tail:
            self.compact()

    def load_snapshot(self, entries: List[dict]) -> None:
        """Replay snapshot stream entries into an empty engine.

        Streams snapshotted under different bound backends replay as one
        batch per backend. Order is irrelevant to the final state (the
        analysis has no admission-order dependence) and every
        intermediate set is a subset of a feasible set, hence feasible
        itself. Also the standby's bootstrap path
        (:mod:`repro.fleet.replication`).
        """
        groups: Dict[Optional[str], List[dict]] = {}
        for entry in entries:
            groups.setdefault(entry.get("analysis"), []).append(entry)
        for name in sorted(groups, key=lambda n: (n is None, n or "")):
            self._admit_entries(groups[name], replay=True, analysis=name)

    def apply_journal_op(self, op: Dict[str, Any]) -> None:
        """Apply one committed journal record to the engine.

        Shared by restart recovery and the journal-shipping standby: the
        record was only ever written after the primary's engine accepted
        it, so replay must succeed — a failure means the disk state and
        the engine disagree, which recovery treats as fatal.
        """
        rid = op.get("rid")
        if op.get("op") == "admit":
            ids, _ = self._admit_entries(
                op["streams"], replay=True, analysis=op.get("analysis")
            )
            self._record_applied(rid, {"admitted": True, "ids": ids})
        elif op.get("op") == "release":
            ids = [int(i) for i in op["ids"]]
            self.engine.release(ids)
            self._record_applied(rid, {"released": ids})
        elif op.get("op") in ("fail_link", "restore_link"):
            # Reroute-and-readmit is deterministic, so replay re-derives
            # the same evictions the primary computed and acknowledged.
            link = normalize_link(*op["link"])
            if op["op"] == "fail_link":
                delta = self._swap_routing(self.failed_links | {link})
            else:
                delta = self._swap_routing(self.failed_links - {link})
            self._record_applied(rid, self._link_outcome(op["op"], link,
                                                         delta))
        else:  # pragma: no cover - defensive
            raise ReproError(f"unknown journal op {op.get('op')!r}")

    def compact(self) -> Path:
        """Write a fresh snapshot and truncate the journal."""
        assert self.state is not None
        return self.state.compact(
            self.engine.admitted,
            next_id=self.engine.next_id,
            applied_rids=self._applied,
            analyses=self._admitted_analyses(),
            failed_links=self.links_spec(),
        )

    def fingerprint(self) -> Tuple[str, Dict[str, Any]]:
        """``(sha256, spec)`` of everything recovery promises to preserve.

        Covers the admitted stream specs, each stream's delay bound /
        feasibility / slack / HP closure, the full feasibility report and
        the fresh-id high-water mark. Built through the public protocol
        ops so it fingerprints what clients can observe.
        """
        report = self.handle_request({"op": "report"})
        if not report.get("ok"):  # pragma: no cover - report cannot fail
            raise ReproError(f"report failed while fingerprinting: {report}")
        streams: Dict[str, Any] = {}
        for sid in sorted(self.engine.admitted.ids()):
            query = self.handle_request({"op": "query", "stream": sid})
            if not query.get("ok"):  # pragma: no cover - defensive
                raise ReproError(f"query {sid} failed: {query}")
            streams[str(sid)] = {
                "stream": query["stream"],
                "upper_bound": query["upper_bound"],
                "feasible": query["feasible"],
                "slack": query["slack"],
                "closure": query["closure"],
            }
        links = self.handle_request({"op": "links"})
        if not links.get("ok"):  # pragma: no cover - links cannot fail
            raise ReproError(f"links failed while fingerprinting: {links}")
        spec = {
            "streams": streams,
            "next_id": self.engine.next_id,
            "report": report["report"],
            "admitted": report["admitted"],
            "failed_links": links["failed_links"],
        }
        blob = json.dumps(spec, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest(), spec

    def close(self) -> None:
        """Release persistence file handles (idempotent)."""
        if self.state is not None:
            self.state.close()

    # ------------------------------------------------------------------ #
    # Shard-client interface
    # ------------------------------------------------------------------ #
    # The fleet's shard manager talks to its shards exclusively through
    # these accessors (plus ``handle_request``), never through ``engine``
    # directly, so a shard can equally be this in-process host or a
    # :class:`repro.fleet.workers.WorkerShard` proxy fronting the same
    # host in a supervised child process.

    @property
    def incremental(self) -> bool:
        return self.engine.incremental

    @property
    def default_analysis(self) -> str:
        return self.engine.default_analysis

    @property
    def next_id(self) -> int:
        return self.engine.next_id

    def admitted_ids(self) -> List[int]:
        return sorted(self.engine.admitted.ids())

    def admitted_count(self) -> int:
        return len(self.engine.admitted)

    def upper_bounds(self) -> Dict[str, int]:
        """Cached delay bounds of every admitted stream, keyed by str id."""
        return {
            str(sid): self.engine.verdict(sid).upper_bound
            for sid in self.engine.admitted.ids()
        }

    def engine_stats(self) -> Dict[str, Any]:
        return self.engine.stats.to_dict()

    def drop_rid(self, rid: str) -> None:
        """Forget a recorded mutation outcome (release compensation)."""
        self._applied.pop(str(rid), None)

    def shard_dump(self, ids: Optional[List[int]] = None) -> Dict[str, Any]:
        """Admitted specs + analyses + id mark, for placement bookkeeping.

        ``ids`` restricts the dump to those streams; ids not (or no
        longer) admitted are silently skipped, so callers probing after
        a partial failure see exactly what the shard still holds.
        """
        if ids is None:
            ids = sorted(self.engine.admitted.ids())
        streams = []
        for sid in ids:
            sid = int(sid)
            if sid not in self.engine.admitted:
                continue
            streams.append({
                "stream": stream_to_spec(self.engine.admitted[sid]),
                "analysis": self.engine.analysis_of(sid),
            })
        return {
            "streams": streams,
            "next_id": self.engine.next_id,
            "applied": {rid: dict(out) for rid, out in self._applied.items()},
        }

    def detach(self) -> None:
        """Stop serving and release the journal (single-writer handoff).

        For an in-process host this is just :meth:`close`; the worker
        proxy overrides it to evict the shard from its child process so
        a standby promotion never races a worker holding the journal.
        """
        self.close()

    def _admitted_analyses(self) -> Dict[int, str]:
        """Per-stream backend names of the admitted set (for snapshots)."""
        return {
            sid: self.engine.analysis_of(sid)
            for sid in self.engine.admitted.ids()
        }

    def _admit_entries(
        self,
        entries: List[dict],
        *,
        replay: bool = False,
        analysis: Optional[str] = None,
    ) -> Tuple[List[int], Any]:
        streams: List[MessageStream] = []
        for entry in entries:
            if not isinstance(entry, dict):
                raise ProtocolError("'streams' entries must be objects")
            sid = (coerce_int(entry["id"], "stream entry 'id'")
                   if entry.get("id") is not None
                   else self.engine.fresh_id())
            try:
                streams.append(
                    stream_from_spec(self.topology, entry, stream_id=sid)
                )
            except (ValueError, TypeError) as exc:
                raise ProtocolError(
                    f"invalid stream entry (id {sid}): {exc}"
                ) from None
        decision = self.engine.try_admit(streams, analysis=analysis)
        if replay and not decision.admitted:  # pragma: no cover - defensive
            raise ReproError(
                "journal replay failed: previously admitted batch "
                f"{[s.stream_id for s in streams]} now rejected"
            )
        return [s.stream_id for s in streams], decision

    # ------------------------------------------------------------------ #
    # Op dispatch (synchronous; also the unit-test surface)
    # ------------------------------------------------------------------ #

    def handle_request(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Execute one protocol request and return the response object."""
        op = request.get("op")
        # Lazy latency sampling: with REPRO_SERVICE_TIMING=0 the worker
        # loop never reads the wall clock (counters are still kept).
        t0 = time.perf_counter() if self.metrics.timing_enabled else None
        try:
            with _span("broker.op", "service", op=str(op)):
                response = self._dispatch(op, request)
            response["ok"] = True
            if "id" in request:
                response["id"] = request["id"]
            self.metrics.record_op(
                op, None if t0 is None else time.perf_counter() - t0
            )
            return response
        except ReproError as exc:
            self.metrics.record_op(
                op or "invalid",
                None if t0 is None else time.perf_counter() - t0,
                error=True,
            )
            return error_response(request, str(exc), code=_error_code(exc))
        except Exception as exc:
            # Last-resort guard: an escaped exception would kill the single
            # worker task and wedge every connection. Persistence failures
            # (journal append OSError) land here too.
            logger.exception("internal error handling %r", op)
            self.metrics.record_op(
                op or "invalid",
                None if t0 is None else time.perf_counter() - t0,
                error=True,
            )
            return error_response(
                request,
                f"internal error handling {op!r}: {exc!r}",
                code="internal",
            )

    def _dispatch(self, op: str, request: Dict[str, Any]) -> Dict[str, Any]:
        if op in ("hello", "ping"):
            return {
                "server": "repro-broker",
                "version": __version__,
                "topology": self.topology_spec,
                "nodes": self.topology.num_nodes,
                "incremental": self.engine.incremental,
                "analyses": list(_backends.names()),
                "default_analysis": self.engine.default_analysis,
            }
        if op == "admit":
            return self._op_admit(request)
        if op == "release":
            return self._op_release(request)
        if op == "query":
            return self._op_query(request)
        if op == "fail_link":
            return self._op_link(request, fail=True)
        if op == "restore_link":
            return self._op_link(request, fail=False)
        if op == "links":
            return {
                "failed_links": self.links_spec(),
                "routing": type(self.engine.routing).__name__,
            }
        if op == "report":
            return {
                "report": report_to_spec(self.engine.current_report()),
                "admitted": len(self.engine.admitted),
            }
        if op == "snapshot":
            if self.state is None:
                raise ProtocolError(
                    "server runs without persistence (no --state-dir)"
                )
            # Allowed (and essential) in degraded mode: a successful
            # compaction rewrites the snapshot and truncates the journal,
            # re-establishing durable storage.
            try:
                path = self.compact()
            except OSError as exc:
                self.metrics.journal_errors += 1
                self._enter_degraded(f"snapshot compaction failed: {exc}")
                raise DegradedError(
                    f"snapshot failed ({exc}); broker stays read-only"
                ) from None
            cleared = self.degraded
            self._clear_degraded()
            response = {
                "path": str(path), "streams": len(self.engine.admitted),
            }
            if cleared:
                response["degraded_cleared"] = True
            return response
        if op == "stats":
            if request.get("format") == "prometheus":
                return {"prometheus": self.prometheus_text()}
            return {
                "service": self.metrics.to_dict(),
                "engine": self.engine.stats.to_dict(),
                "admitted": len(self.engine.admitted),
                "degraded": self.degraded,
            }
        if op == "shutdown":
            if self.on_shutdown is not None:
                self.on_shutdown()
            return {"stopping": True}
        raise ProtocolError(f"unknown op {op!r}")  # pragma: no cover

    # ------------------------------------------------------------------ #
    # Idempotency + degraded-mode plumbing
    # ------------------------------------------------------------------ #

    def _record_applied(
        self, rid: Optional[str], outcome: Dict[str, Any]
    ) -> None:
        """Remember a committed mutation's outcome under its rid."""
        if rid is None:
            return
        self._applied[str(rid)] = outcome
        while len(self._applied) > RID_CAP:
            del self._applied[next(iter(self._applied))]

    def _duplicate_response(
        self, rid: Optional[str]
    ) -> Optional[Dict[str, Any]]:
        """The recorded outcome for an already-applied rid, or ``None``.

        Checked *before* the degraded gate: replaying a committed
        mutation writes nothing, so it stays safe while read-only — and
        that is exactly when crash-induced retries arrive.
        """
        if rid is None or rid not in self._applied:
            return None
        self.metrics.duplicates += 1
        response = dict(self._applied[rid])
        response["duplicate"] = True
        return response

    def _mutation_gate(self) -> None:
        if self.degraded:
            raise DegradedError(
                f"broker is read-only ({self.degraded_reason}); "
                "retry after a successful 'snapshot' op"
            )

    def _journal_commit(self, entry: Dict[str, Any], rollback) -> None:
        """Append a committed mutation; on failure undo it and degrade.

        ``BrokerState.append`` has already repaired the journal (the
        record is guaranteed absent from disk), so after ``rollback()``
        memory and disk agree that the op never happened — the client
        gets a ``degraded`` error, never a silent divergence.
        """
        assert self.state is not None
        try:
            self.state.append(entry)
        except OSError as exc:
            self.metrics.journal_errors += 1
            rollback()
            self._enter_degraded(f"journal append failed: {exc}")
            raise DegradedError(
                f"journal unwritable ({exc}); mutation rolled back, "
                "broker is read-only until a successful snapshot"
            ) from None

    def _enter_degraded(self, reason: str) -> None:
        if not self.degraded:
            self.metrics.degraded_entered += 1
            logger.error("entering read-only degraded mode: %s", reason)
        self.degraded = True
        self.degraded_reason = reason

    def _clear_degraded(self) -> None:
        if self.degraded:
            logger.warning(
                "leaving degraded mode after successful snapshot"
            )
        self.degraded = False
        self.degraded_reason = None

    def _op_admit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        rid = coerce_rid(request)
        duplicate = self._duplicate_response(rid)
        if duplicate is not None:
            return duplicate
        self._mutation_gate()
        entries = request.get("streams")
        if not isinstance(entries, list) or not entries:
            raise ProtocolError("'admit' needs a non-empty 'streams' list")
        analysis = request.get("analysis")
        if analysis is not None:
            if not isinstance(analysis, str):
                raise ProtocolError(
                    f"'analysis' must be a string, got {analysis!r}"
                )
            if analysis not in _backends.names():
                raise ProtocolError(
                    f"unknown analysis backend {analysis!r} (known: "
                    f"{', '.join(_backends.names())})"
                )
        next_id_before = self.engine.next_id
        ids, decision = self._admit_entries(entries, analysis=analysis)
        response: Dict[str, Any] = {
            "admitted": decision.admitted,
            "ids": ids,
            "violations": list(decision.violations),
            "bounds": {
                str(sid): v.upper_bound
                for sid, v in decision.report.verdicts.items()
            },
        }
        if decision.admitted:
            response["closures"] = {
                str(sid): list(self.engine.closure(sid)) for sid in ids
            }
            # Resolved name (engine default applied), so replay after a
            # restart does not depend on the environment at restart time.
            response["analysis"] = self.engine.analysis_of(ids[0])
            self.metrics.admitted_ok += 1
            if self.state is not None:
                entry: Dict[str, Any] = {
                    "op": "admit",
                    "streams": [
                        stream_to_spec(self.engine.admitted[sid])
                        for sid in ids
                    ],
                    "analysis": self.engine.analysis_of(ids[0]),
                }
                if rid is not None:
                    entry["rid"] = rid
                self._journal_commit(
                    entry,
                    lambda: self._rollback_admit(ids, next_id_before),
                )
            self._record_applied(rid, {"admitted": True, "ids": ids})
        else:
            self.metrics.admitted_rejected += 1
            # The trial ids of a rejected batch were never admitted, so
            # releasing them back keeps a retry of the same (lost-ack)
            # request id-stable with its first evaluation.
            self.engine.reset_next_id(next_id_before)
        return response

    def _rollback_admit(self, ids: List[int], next_id_before: int) -> None:
        self.engine.release(ids)
        # The ids were assigned but never committed or acknowledged;
        # reclaiming them keeps the id sequence identical to a run in
        # which the failed admit never happened.
        self.engine.reset_next_id(next_id_before)

    def _op_release(self, request: Dict[str, Any]) -> Dict[str, Any]:
        rid = coerce_rid(request)
        duplicate = self._duplicate_response(rid)
        if duplicate is not None:
            return duplicate
        self._mutation_gate()
        ids = request.get("ids")
        if not isinstance(ids, list) or not ids:
            raise ProtocolError("'release' needs a non-empty 'ids' list")
        ids = [coerce_int(i, "'release' id") for i in ids]
        # Captured before the release (stream + the backend it was vetted
        # under) so a journal failure can restore them; unknown ids make
        # engine.release raise before mutating.
        removed = [
            (self.engine.admitted[sid], self.engine.analysis_of(sid))
            for sid in ids if sid in self.engine.admitted
        ]
        self.engine.release(ids)
        if self.state is not None:
            entry = {"op": "release", "ids": ids}
            if rid is not None:
                entry["rid"] = rid
            self._journal_commit(
                entry, lambda: self._rollback_release(removed)
            )
        self._record_applied(rid, {"released": ids})
        return {"released": ids}

    def _rollback_release(
        self, removed: List[Tuple[MessageStream, str]]
    ) -> None:
        groups: Dict[str, List[MessageStream]] = {}
        for stream, name in removed:
            groups.setdefault(name, []).append(stream)
        for name in sorted(groups):
            decision = self.engine.try_admit(groups[name], analysis=name)
            if not decision.admitted:  # pragma: no cover - defensive
                # Re-admitting streams that were feasible a moment ago
                # cannot fail; if it somehow does, crash loudly rather
                # than serve a state that disagrees with the journal.
                raise ReproError(
                    "rollback re-admission rejected; broker state is "
                    "inconsistent with the journal"
                )

    # ------------------------------------------------------------------ #
    # Link faults (reroute-and-readmit)
    # ------------------------------------------------------------------ #

    def links_spec(self) -> List[List[int]]:
        """The failed-link set as sorted ``[u, v]`` pairs (wire form)."""
        return sorted([u, v] for u, v in self.failed_links)

    def _swap_routing(self, new_failed: set) -> RoutingDelta:
        """Point the engine at the routing for ``new_failed`` links."""
        if new_failed:
            routing = FaultAwareRouting(
                self.base_routing, sorted(new_failed)
            )
        else:
            routing = self.base_routing
        delta = self.engine.apply_routing(routing)
        self.failed_links = set(new_failed)
        self.routing = self.engine.routing
        return delta

    @staticmethod
    def _link_outcome(
        op: str, link, delta: RoutingDelta
    ) -> Dict[str, Any]:
        return {
            "op": op,
            "link": [link[0], link[1]],
            **delta.to_spec(),
        }

    def _op_link(
        self, request: Dict[str, Any], *, fail: bool
    ) -> Dict[str, Any]:
        op = "fail_link" if fail else "restore_link"
        rid = coerce_rid(request)
        duplicate = self._duplicate_response(rid)
        if duplicate is not None:
            return duplicate
        self._mutation_gate()
        raw = request.get("link")
        if not isinstance(raw, (list, tuple)) or len(raw) != 2:
            raise ProtocolError(f"'{op}' needs a 'link' [u, v] pair")
        link = normalize_link(
            coerce_int(raw[0], "'link' endpoint"),
            coerce_int(raw[1], "'link' endpoint"),
        )
        if fail:
            if not self.topology.has_channel(link[0], link[1]):
                raise ProtocolError(
                    f"no physical link {list(link)} in the topology"
                )
            if link in self.failed_links:
                raise ProtocolError(
                    f"link {list(link)} is already failed"
                )
            new_failed = self.failed_links | {link}
        else:
            if link not in self.failed_links:
                raise ProtocolError(f"link {list(link)} is not failed")
            new_failed = self.failed_links - {link}
        old_failed = set(self.failed_links)
        delta = self._swap_routing(new_failed)
        if self.state is not None:
            entry: Dict[str, Any] = {"op": op, "link": [link[0], link[1]]}
            if rid is not None:
                entry["rid"] = rid
            self._journal_commit(
                entry, lambda: self._rollback_link(old_failed, delta)
            )
        outcome = self._link_outcome(op, link, delta)
        self._record_applied(rid, outcome)
        response = dict(outcome)
        response["failed_links"] = self.links_spec()
        response["admitted"] = len(self.engine.admitted)
        return response

    def _rollback_link(self, old_failed: set, delta: RoutingDelta) -> None:
        """Undo a link op whose journal append failed: re-apply the old
        routing and re-admit the evicted streams (grouped per backend).
        Both steps must succeed — the pre-op set was feasible under the
        old routing, and subsets of a feasible set are feasible."""
        self._swap_routing(old_failed)
        groups: Dict[str, List[MessageStream]] = {}
        for stream, name in delta.evicted_streams:
            groups.setdefault(name, []).append(stream)
        for name in sorted(groups):
            decision = self.engine.try_admit(groups[name], analysis=name)
            if not decision.admitted:  # pragma: no cover - defensive
                raise ReproError(
                    "link-op rollback re-admission rejected; broker "
                    "state is inconsistent with the journal"
                )

    def _op_query(self, request: Dict[str, Any]) -> Dict[str, Any]:
        sid = request.get("stream")
        if sid is None:
            raise ProtocolError("'query' needs a 'stream' id")
        sid = coerce_int(sid, "'query' stream")
        verdict = self.engine.verdict(sid)
        return {
            "stream": stream_to_spec(self.engine.admitted[sid]),
            "upper_bound": verdict.upper_bound,
            "feasible": verdict.feasible,
            "slack": verdict.slack,
            "closure": list(self.engine.closure(sid)),
            "analysis": self.engine.analysis_of(sid),
        }

    # ------------------------------------------------------------------ #
    # Prometheus export
    # ------------------------------------------------------------------ #

    def prometheus_text(self) -> str:
        """Service + engine metrics in Prometheus text exposition format.

        Serves the ``stats`` op's ``format: "prometheus"`` variant and the
        ``--metrics-port`` HTTP scrape endpoint. Synchronisation happens
        per export, never per request.
        """
        reg = self.metrics.sync_registry()
        es = self.engine.stats
        reg.gauge(
            "repro_broker_degraded",
            "1 while the broker is in read-only degraded mode.",
        ).set(1.0 if self.degraded else 0.0)
        reg.gauge(
            "repro_engine_admitted_streams",
            "Streams currently admitted by the engine.",
        ).set(len(self.engine.admitted))
        for field, help_text in (
            ("ops", "Engine operations (admit + release calls)."),
            ("admits", "Accepted admission batches."),
            ("rejects", "Rejected admission batches."),
            ("releases", "Release operations."),
            ("verdicts_recomputed", "Per-stream verdicts recomputed."),
            ("verdicts_reused", "Per-stream verdicts served from cache."),
            ("verdict_memo_hits", "Verdicts served from the input-keyed "
                                  "memo without recomputation."),
            ("hp_rebuilt", "HP sets rebuilt by graph traversal."),
            ("hp_delta_updates", "HP sets produced from maintained reach "
                                 "closures (delta path)."),
            ("full_fallbacks", "Incremental ops that fell back to a full "
                               "rebuild."),
            ("forced_invalidations", "Forced cache invalidations "
                                     "(chaos cache_storm hook)."),
            ("route_cache_hits", "Route cache hits."),
            ("route_cache_misses", "Route cache misses."),
            ("dirty_frontier_total", "Sum of dirty-frontier sizes over "
                                     "incremental ops."),
        ):
            attr = "dirty_total" if field == "dirty_frontier_total" else field
            reg.counter(
                f"repro_engine_{field}_total"
                if not field.endswith("_total") else f"repro_engine_{field}",
                help_text,
            ).value = float(getattr(es, attr))
        reg.gauge(
            "repro_engine_cache_hit_rate",
            "Fraction of per-stream verdicts served from cache.",
        ).set(es.cache_hit_rate())
        reg.gauge(
            "repro_engine_dirty_frontier_last",
            "Dirty-frontier size of the most recent incremental op.",
        ).set(es.dirty_last)
        reg.gauge(
            "repro_engine_dirty_frontier_max",
            "Largest dirty frontier seen.",
        ).set(es.dirty_max)
        for phase in ("route", "hp", "diagram", "verdict"):
            reg.counter(
                f"repro_engine_{phase}_seconds_total",
                f"Wall-clock seconds spent in the {phase} phase of the "
                "admission hot path.",
            ).value = float(getattr(es, f"{phase}_seconds"))
        return reg.render()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EngineHost(admitted={len(self.engine.admitted)}, "
            f"degraded={self.degraded})"
        )
