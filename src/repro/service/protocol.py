"""JSON-lines wire protocol of the channel broker.

One request per line, one response per line, UTF-8 JSON objects. Every
request carries an ``op`` and may carry a client-chosen ``id`` echoed back
verbatim in the response (useful for pipelining). Responses always carry
``ok`` (bool); failures add ``error`` (message) and ``code``.

Ops
---
``hello``
    Server identity: name, version, topology spec, node count, engine
    mode. Clients use the topology to build stream specs.
``admit``
    ``streams``: list of problem-file stream entries (``src``/``dst`` may
    be coordinate lists or node ids; ``id`` optional — the broker assigns
    monotonic ids when absent). All-or-nothing: the whole batch is
    admitted or the admitted set is untouched. Response: ``admitted``,
    assigned ``ids``, per-stream ``bounds``, ``violations`` (ids whose
    bound broke in the trial), and ``closures`` — the transitive HP
    closure each new guarantee is scoped to (finding F-7: a bound is only
    a guarantee while its closure stays admitted).
``release``
    ``ids``: list of admitted ids to remove. Unknown ids fail the whole
    request (nothing is removed).
``query``
    ``stream``: one admitted id -> stream spec, bound, slack, closure.
``report``
    Full feasibility report of the admitted set (trivial success when
    empty).
``snapshot``
    Persist the admitted set to the snapshot file and truncate the
    journal. Requires the server to run with a state dir.
``stats``
    Per-op metrics, engine cache counters, admitted count.
``shutdown``
    Acknowledge, then stop the server gracefully.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from ..errors import ReproError

__all__ = [
    "ProtocolError",
    "coerce_int",
    "encode",
    "decode",
    "error_response",
]

#: Ops the server accepts (``hello``/``ping`` are aliases).
KNOWN_OPS = (
    "hello",
    "ping",
    "admit",
    "release",
    "query",
    "report",
    "snapshot",
    "stats",
    "shutdown",
)


class ProtocolError(ReproError):
    """Raised for malformed broker requests (bad JSON, unknown op, ...)."""


def encode(message: Dict[str, Any]) -> bytes:
    """Serialise one protocol message to a JSON line."""
    return (json.dumps(message, separators=(",", ":"),
                       sort_keys=True) + "\n").encode("utf-8")


def decode(line: bytes) -> Dict[str, Any]:
    """Parse one request line; validates shape and op name."""
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("request must be a JSON object")
    op = obj.get("op")
    if not isinstance(op, str):
        raise ProtocolError("request needs a string 'op' field")
    if op not in KNOWN_OPS:
        raise ProtocolError(
            f"unknown op {op!r} (expected one of {', '.join(KNOWN_OPS)})"
        )
    return obj


def coerce_int(value: Any, what: str) -> int:
    """Coerce an untrusted request field to ``int``.

    Raises :class:`ProtocolError` (never ``ValueError``/``TypeError``) on
    bad input, so malformed client fields stay inside the protocol error
    path instead of escaping into the server's worker task. Accepts ints,
    integral floats and integer-looking strings; rejects booleans.
    """
    if isinstance(value, bool):
        raise ProtocolError(f"{what} must be an integer, got {value!r}")
    try:
        out = int(value)
    except (ValueError, TypeError):
        raise ProtocolError(
            f"{what} must be an integer, got {value!r}"
        ) from None
    if isinstance(value, float) and value != out:
        raise ProtocolError(f"{what} must be an integer, got {value!r}")
    return out


def error_response(
    request: Dict[str, Any], message: str, *, code: str = "error"
) -> Dict[str, Any]:
    """Build a failure response, echoing the request id when present."""
    resp: Dict[str, Any] = {"ok": False, "error": message, "code": code}
    if isinstance(request, dict) and "id" in request:
        resp["id"] = request["id"]
    return resp
