"""JSON-lines wire protocol of the channel broker.

One request per line, one response per line, UTF-8 JSON objects. Every
request carries an ``op`` and may carry a client-chosen ``id`` echoed back
verbatim in the response (useful for pipelining). Responses always carry
``ok`` (bool); failures add ``error`` (message) and ``code``.

Idempotent retries (``rid``)
----------------------------
Mutating ops (``admit``/``release``) may carry a ``rid``: a non-empty
client-chosen string identifying the *request* (not the connection).
When a mutation succeeds, its ``rid`` is recorded — in memory, in the
journal entry, and through snapshot compaction — and a later request
with the same ``rid`` is **not re-executed**: the server answers with
the recorded outcome plus ``"duplicate": true`` (for ``admit`` that is
``admitted``/``ids`` without the per-stream ``bounds``/``closures``
detail; for ``release`` the ``released`` ids). This makes at-least-once
retry loops safe: a client whose connection died after sending a request
simply reconnects and resends the same ``rid``; whether or not the
original was applied, the end state is applied-exactly-once. Failed
mutations record nothing — retrying them re-evaluates deterministically.
The server keeps the most recent ``RID_CAP`` rids (FIFO), so retries
must happen promptly, not hours later.

Degraded (read-only) mode
-------------------------
When the journal becomes unwritable (disk full, I/O error) the broker
repairs the journal, rolls the in-memory engine back so memory matches
disk, and stops accepting mutations: ``admit``/``release`` fail with
``code: "degraded"`` while reads (``query``/``report``/``stats``/
``hello``) keep working. A successful ``snapshot`` op (which rewrites
the snapshot and truncates the journal) clears the condition.

Ops
---
``hello``
    Server identity: name, version, topology spec, node count, engine
    mode. Clients use the topology to build stream specs.
``admit``
    ``streams``: list of problem-file stream entries (``src``/``dst`` may
    be coordinate lists or node ids; ``id`` optional — the broker assigns
    monotonic ids when absent). All-or-nothing: the whole batch is
    admitted or the admitted set is untouched. Response: ``admitted``,
    assigned ``ids``, per-stream ``bounds``, ``violations`` (ids whose
    bound broke in the trial), and ``closures`` — the transitive HP
    closure each new guarantee is scoped to (finding F-7: a bound is only
    a guarantee while its closure stays admitted).
``release``
    ``ids``: list of admitted ids to remove. Unknown ids fail the whole
    request (nothing is removed).
``query``
    ``stream``: one admitted id -> stream spec, bound, slack, closure.
``report``
    Full feasibility report of the admitted set (trivial success when
    empty).
``snapshot``
    Persist the admitted set to the snapshot file and truncate the
    journal. Requires the server to run with a state dir.
``stats``
    Per-op metrics, engine cache counters, admitted count.
``shutdown``
    Acknowledge, then stop the server gracefully.
"""

from __future__ import annotations

import json
import random
from typing import Any, Dict, Optional

from ..errors import ReproError

__all__ = [
    "ProtocolError",
    "coerce_int",
    "coerce_rid",
    "encode",
    "decode",
    "error_response",
    "retry_backoff",
]

#: Ops the server accepts (``hello``/``ping`` are aliases).
KNOWN_OPS = (
    "hello",
    "ping",
    "admit",
    "release",
    "query",
    "report",
    "snapshot",
    "stats",
    "fail_link",
    "restore_link",
    "links",
    "shutdown",
)


class ProtocolError(ReproError):
    """Raised for malformed broker requests (bad JSON, unknown op, ...)."""


def encode(message: Dict[str, Any]) -> bytes:
    """Serialise one protocol message to a JSON line."""
    return (json.dumps(message, separators=(",", ":"),
                       sort_keys=True) + "\n").encode("utf-8")


def decode(line: bytes) -> Dict[str, Any]:
    """Parse one request line; validates shape and op name."""
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("request must be a JSON object")
    op = obj.get("op")
    if not isinstance(op, str):
        raise ProtocolError("request needs a string 'op' field")
    if op not in KNOWN_OPS:
        raise ProtocolError(
            f"unknown op {op!r} (expected one of {', '.join(KNOWN_OPS)})"
        )
    return obj


def coerce_int(value: Any, what: str) -> int:
    """Coerce an untrusted request field to ``int``.

    Raises :class:`ProtocolError` (never ``ValueError``/``TypeError``) on
    bad input, so malformed client fields stay inside the protocol error
    path instead of escaping into the server's worker task. Accepts ints,
    integral floats and integer-looking strings; rejects booleans.
    """
    if isinstance(value, bool):
        raise ProtocolError(f"{what} must be an integer, got {value!r}")
    try:
        out = int(value)
    except (ValueError, TypeError):
        raise ProtocolError(
            f"{what} must be an integer, got {value!r}"
        ) from None
    if isinstance(value, float) and value != out:
        raise ProtocolError(f"{what} must be an integer, got {value!r}")
    return out


def coerce_rid(request: Dict[str, Any]) -> Optional[str]:
    """Validate and return the request's idempotency key, if any.

    ``rid`` is optional; when present it must be a non-empty string
    (:class:`ProtocolError` otherwise, so a malformed key can never be
    silently treated as "no key" and break retry deduplication).
    """
    rid = request.get("rid")
    if rid is None:
        return None
    if not isinstance(rid, str) or not rid:
        raise ProtocolError(
            f"'rid' must be a non-empty string, got {rid!r}"
        )
    return rid


def retry_backoff(
    attempt: int,
    *,
    base: float = 0.05,
    cap: float = 2.0,
    rng: Optional[random.Random] = None,
) -> float:
    """Full-jitter exponential backoff delay for a 0-based ``attempt``.

    Returns a uniform draw from ``[0, min(cap, base * 2**attempt))`` —
    the "full jitter" scheme, which decorrelates a thundering herd of
    retrying clients while keeping the expected delay exponential in the
    attempt number. Pass a seeded ``rng`` for reproducible schedules
    (the chaos campaign does).
    """
    span = min(cap, base * (2 ** max(0, attempt)))
    u = rng.random() if rng is not None else random.random()
    return span * u


def error_response(
    request: Dict[str, Any], message: str, *, code: str = "error"
) -> Dict[str, Any]:
    """Build a failure response, echoing the request id when present."""
    resp: Dict[str, Any] = {"ok": False, "error": message, "code": code}
    if isinstance(request, dict) and "id" in request:
        resp["id"] = request["id"]
    return resp
