"""Incremental admission engine: feasibility with per-stream caches.

The full :class:`~repro.core.feasibility.FeasibilityAnalyzer` rebuilds
routes, the direct-blocking relation, every HP set and every delay bound
from scratch — O(n) ``Cal_U`` runs per request, each over a timing diagram
of the whole HP closure. An online broker doing that for every admit and
release wastes nearly all of it: a request only perturbs the analysis of
streams whose transitive HP closure reaches a changed stream.

This engine maintains, between requests:

* a route cache keyed by ``(src, dst)`` (routes never change for a pair);
* per-stream channel sets and a channel -> users index, so the streams
  that overlap a new route are found by link lookup, not an O(n) scan;
* the direct-blocking relation and its reverse adjacency;
* per-stream HP sets and :class:`~repro.core.feasibility.StreamVerdict`\\ s.

**Invalidation rule (link-overlap / closure reachability).** A verdict for
stream ``j`` depends only on ``j`` itself, ``HP_j``, the parameters of the
HP members, and the direct-blocking relation restricted to that closure
(the BDG of :mod:`repro.core.bdg` filters edges to the closure's nodes).
Every one of those inputs is a function of the blocked-by graph reachable
from ``j``; a change at stream ``k`` can therefore affect ``j`` iff ``k``
is reachable from ``j``. So the *dirty set* of an op is the reverse
reachability of the changed ids:

* admit ``k``: every ``j`` that reaches ``k`` in the **new** graph
  (new edges are all incident to ``k``, so any changed closure contains it);
* release ``k``: every ``j`` that reached ``k`` in the **old** graph.

Everything else keeps its cached verdict, which is bit-identical to what a
fresh analyzer would compute because ``Cal_U`` is a pure function of the
inputs listed above. When the dirty frontier covers the whole set the
engine falls back to a plain full :class:`FeasibilityAnalyzer` run (and
adopts its structures as the new caches).

Set ``REPRO_INCREMENTAL=0`` to force the full path on every op — the
escape hatch used by CI's equivalence leg and the perf baseline.

**Closure-scoped guarantees (finding F-7).** A stream's bound is only a
guarantee while its transitive HP closure is itself admitted (the bound
conditions on those streams' behaviour). Inside the broker the closure is
admitted by construction — HP members come from the admitted set — and
:meth:`IncrementalAdmissionEngine.closure` reports the exact id set each
guarantee is scoped to, so clients can propagate the condition.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..core.admission import AdmissionDecision
from ..core.feasibility import (
    FeasibilityAnalyzer,
    FeasibilityReport,
    StreamVerdict,
)
from ..core.hpset import HPSet, build_hp_set
from ..core.latency import LatencyModel, NoLoadLatency
from ..core.streams import MessageStream, StreamSet
from ..errors import AnalysisError, StreamError
from ..topology.base import Channel
from ..topology.routing import RoutingAlgorithm

__all__ = ["EngineStats", "IncrementalAdmissionEngine"]


def incremental_enabled_default() -> bool:
    """Whether incremental recomputation is on (``REPRO_INCREMENTAL`` != 0)."""
    return os.environ.get("REPRO_INCREMENTAL", "1") != "0"


@dataclass
class EngineStats:
    """Cache-effectiveness counters, exposed through the ``stats`` op."""

    ops: int = 0
    admits: int = 0
    rejects: int = 0
    releases: int = 0
    verdicts_recomputed: int = 0
    verdicts_reused: int = 0
    hp_rebuilt: int = 0
    full_fallbacks: int = 0
    forced_invalidations: int = 0
    route_cache_hits: int = 0
    route_cache_misses: int = 0
    #: Dirty-frontier sizes of incremental ops (last / running max / sum).
    dirty_last: int = 0
    dirty_max: int = 0
    dirty_total: int = 0

    def note_dirty(self, size: int) -> None:
        """Record one incremental op's dirty-frontier size."""
        self.dirty_last = size
        if size > self.dirty_max:
            self.dirty_max = size
        self.dirty_total += size

    def cache_hit_rate(self) -> float:
        """Fraction of per-op verdicts served from cache."""
        total = self.verdicts_recomputed + self.verdicts_reused
        return self.verdicts_reused / total if total else 0.0

    def to_dict(self) -> Dict[str, float]:
        out = {k: getattr(self, k) for k in (
            "ops", "admits", "rejects", "releases",
            "verdicts_recomputed", "verdicts_reused", "hp_rebuilt",
            "full_fallbacks", "forced_invalidations",
            "route_cache_hits", "route_cache_misses",
            "dirty_last", "dirty_max", "dirty_total",
        )}
        out["cache_hit_rate"] = round(self.cache_hit_rate(), 4)
        return out


class IncrementalAdmissionEngine:
    """Admission control with incremental feasibility recomputation.

    Drop-in analogue of :class:`~repro.core.admission.AdmissionController`
    (same ``try_admit`` / ``release`` / ``current_report`` / ``fresh_id``
    surface, same all-or-nothing batch semantics) that keeps its analysis
    warm between requests. Reports are bit-identical to a from-scratch
    :class:`FeasibilityAnalyzer` over the same admitted set.

    Parameters
    ----------
    routing:
        Deterministic routing function of the managed network.
    latency_model:
        No-load latency model (paper default).
    use_modify:
        Whether the analysis applies ``Modify_Diagram``.
    residency_margin:
        Passed through to the analyzer (see finding F-4).
    incremental:
        ``True``/``False`` force the mode; ``None`` (default) reads the
        ``REPRO_INCREMENTAL`` environment variable (unset/``1`` = on).
    """

    def __init__(
        self,
        routing: RoutingAlgorithm,
        *,
        latency_model: Optional[LatencyModel] = None,
        use_modify: bool = True,
        residency_margin: int = 0,
        incremental: Optional[bool] = None,
    ):
        self.routing = routing
        self.latency_model = latency_model or NoLoadLatency()
        self.use_modify = use_modify
        self.residency_margin = residency_margin
        if incremental is None:
            incremental = incremental_enabled_default()
        self.incremental = bool(incremental)
        self.stats = EngineStats()

        self._admitted = StreamSet()   # streams as requested (raw latency)
        self._resolved = StreamSet()   # latencies resolved over the route
        self._next_id = 0
        # Caches (all id-keyed, values immutable except _rev's sets).
        self._route_cache: Dict[Tuple[int, int], FrozenSet[Channel]] = {}
        self._channels: Dict[int, FrozenSet[Channel]] = {}
        self._channel_users: Dict[Channel, FrozenSet[int]] = {}
        self._blockers: Dict[int, Tuple[int, ...]] = {}
        self._rev: Dict[int, Set[int]] = {}
        self._hp_sets: Dict[int, HPSet] = {}
        self._verdicts: Dict[int, StreamVerdict] = {}

    # ------------------------------------------------------------------ #
    # Public surface
    # ------------------------------------------------------------------ #

    @property
    def admitted(self) -> StreamSet:
        """The currently admitted stream set (a live view; do not mutate)."""
        return self._admitted

    def fresh_id(self) -> int:
        """Return a never-before-seen stream id (monotonic, no reuse)."""
        while self._next_id in self._admitted:
            self._next_id += 1
        nid = self._next_id
        self._next_id += 1
        return nid

    @property
    def next_id(self) -> int:
        """The fresh-id high-water mark (the next id to be assigned).

        Persist this alongside the admitted set: the no-reuse guarantee of
        :meth:`fresh_id` only survives a restart if the mark is restored
        via :meth:`advance_next_id` before new admissions.
        """
        return self._next_id

    def advance_next_id(self, value: int) -> None:
        """Raise the fresh-id high-water mark (never lowers it)."""
        self._next_id = max(self._next_id, int(value))

    def reset_next_id(self, value: int) -> None:
        """Roll the fresh-id mark back to ``value``.

        Only safe when every id at or above ``value`` was allocated for
        an operation that is being undone and was **never committed or
        acknowledged** (rolled-back journal failures, lost-ack retries of
        rejected batches): reusing an id a client could have observed as
        admitted would break the no-reuse guarantee. The mark never drops
        below ``max(admitted) + 1``.
        """
        floor = max(
            (sid + 1 for sid in self._admitted.ids()), default=0
        )
        self._next_id = max(int(value), floor)

    def invalidate_caches(self) -> None:
        """Drop every derived cache and rebuild from the admitted set.

        The chaos campaign's engine-layer fault (``cache_storm``): after
        an invalidation storm all verdicts, HP sets, routes and indexes
        are recomputed from scratch, and must come back bit-identical —
        the caches are an optimisation, never a source of truth.
        """
        self.stats.forced_invalidations += 1
        self._route_cache.clear()
        self._full_rebuild()

    def closure(self, stream_id: int) -> Tuple[int, ...]:
        """Return the transitive HP closure the stream's guarantee is
        scoped to (finding F-7): every admitted id whose behaviour the
        stream's bound conditions on, ascending."""
        if stream_id not in self._admitted:
            raise StreamError(f"no admitted stream with id {stream_id}")
        return self._hp_sets[stream_id].ids()

    def verdict(self, stream_id: int) -> StreamVerdict:
        """Return the cached verdict of one admitted stream."""
        if stream_id not in self._admitted:
            raise StreamError(f"no admitted stream with id {stream_id}")
        return self._verdicts[stream_id]

    def current_report(self) -> FeasibilityReport:
        """Report over the admitted set, from cache (no recomputation).

        An empty admitted set is vacuously feasible.
        """
        if len(self._resolved) == 0:
            return FeasibilityReport.trivial()
        return self._report_from_cache()

    def try_admit(
        self, requests: MessageStream | Iterable[MessageStream]
    ) -> AdmissionDecision:
        """Test a request (stream or job batch) and admit it if feasible.

        All-or-nothing: rejection leaves the admitted set (and every
        cache) untouched, and an admitted stream can never break an
        existing guarantee — the trial covers the union.
        """
        if isinstance(requests, MessageStream):
            requests = (requests,)
        requests = tuple(requests)
        if not requests:
            raise AnalysisError("empty admission request")
        dup = [r.stream_id for r in requests if r.stream_id in self._admitted]
        ids = [r.stream_id for r in requests]
        if dup or len(set(ids)) != len(ids):
            raise StreamError(
                f"duplicate stream id(s) in admission request: "
                f"{sorted(set(dup or ids))}"
            )
        top = max(ids)
        if top >= self._next_id:
            self._next_id = top + 1

        self.stats.ops += 1
        if not self.incremental:
            decision = self._full_admit(requests)
        else:
            decision = self._incremental_admit(requests)
        if decision.admitted:
            self.stats.admits += 1
        else:
            self.stats.rejects += 1
        return decision

    def release(self, stream_ids: int | Iterable[int]) -> None:
        """Remove streams from the admitted set, updating only the
        verdicts whose HP closure reached a removed stream.

        Validated up front: unknown ids raise :class:`StreamError` naming
        them and nothing is removed.
        """
        if isinstance(stream_ids, int):
            stream_ids = (stream_ids,)
        ids = tuple(dict.fromkeys(stream_ids))
        if not ids:
            return
        unknown = sorted(sid for sid in ids if sid not in self._admitted)
        if unknown:
            raise StreamError(
                f"cannot release stream id(s) {unknown}: not admitted"
            )
        self.stats.ops += 1
        self.stats.releases += 1
        if not self.incremental:
            for sid in ids:
                self._admitted.remove(sid)
            self._full_rebuild()
            return
        # Dirty set on the OLD graph: whoever could reach a removed id.
        dirty = self._reverse_reachable(ids) - set(ids)
        self.stats.note_dirty(len(dirty))
        for sid in ids:
            self._detach(sid)
        if dirty and len(dirty) >= len(self._admitted):
            self._full_rebuild()
            self.stats.full_fallbacks += 1
            return
        self._refresh(dirty)

    # ------------------------------------------------------------------ #
    # Admission paths
    # ------------------------------------------------------------------ #

    def _incremental_admit(
        self, requests: Tuple[MessageStream, ...]
    ) -> AdmissionDecision:
        saved = self._snapshot_caches()
        for r in requests:
            self._attach(r)
        added = [r.stream_id for r in requests]
        dirty = self._reverse_reachable(added)
        dirty.update(added)
        self.stats.note_dirty(len(dirty))
        if len(dirty) >= len(self._admitted):
            report = self._full_rebuild()
            self.stats.full_fallbacks += 1
        else:
            self._refresh(dirty)
            report = self._report_from_cache()
        if report.success:
            return AdmissionDecision(True, report, ())
        self._restore_caches(saved)
        return AdmissionDecision(False, report, report.infeasible_ids())

    def _full_admit(
        self, requests: Tuple[MessageStream, ...]
    ) -> AdmissionDecision:
        saved = self._snapshot_caches()
        for r in requests:
            self._attach(r, structures_only=True)
        report = self._full_rebuild()
        if report.success:
            return AdmissionDecision(True, report, ())
        self._restore_caches(saved)
        return AdmissionDecision(False, report, report.infeasible_ids())

    def _full_rebuild(self) -> FeasibilityReport:
        """Recompute everything with a plain analyzer; adopt its caches."""
        if len(self._admitted) == 0:
            self._resolved = StreamSet()
            self._channels.clear()
            self._channel_users.clear()
            self._blockers.clear()
            self._rev.clear()
            self._hp_sets.clear()
            self._verdicts.clear()
            return FeasibilityReport.trivial()
        analyzer = FeasibilityAnalyzer(
            StreamSet(self._admitted),
            self.routing,
            latency_model=self.latency_model,
            use_modify=self.use_modify,
            residency_margin=self.residency_margin,
        )
        report = analyzer.determine_feasibility()
        self._resolved = analyzer.streams
        self._channels = dict(analyzer.channels)
        self._blockers = dict(analyzer.blockers)
        self._hp_sets = dict(analyzer.hp_sets)
        self._verdicts = dict(report.verdicts)
        self._rebuild_indexes()
        self.stats.verdicts_recomputed += len(report.verdicts)
        return report

    def _refresh(self, dirty: Set[int]) -> None:
        """Rebuild HP sets and verdicts for the dirty ids only."""
        if not dirty:
            self.stats.verdicts_reused += len(self._verdicts)
            return
        for j in sorted(dirty):
            self._hp_sets[j] = build_hp_set(
                self._resolved[j], self._resolved, self._blockers
            )
            self.stats.hp_rebuilt += 1
        analyzer = FeasibilityAnalyzer.from_prepared(
            self._resolved,
            self._channels,
            self._blockers,
            self._hp_sets,
            routing=self.routing,
            latency_model=self.latency_model,
            use_modify=self.use_modify,
            residency_margin=self.residency_margin,
        )
        for j in sorted(dirty):
            self._verdicts[j] = analyzer.cal_u(j)
        self.stats.verdicts_recomputed += len(dirty)
        self.stats.verdicts_reused += len(self._verdicts) - len(dirty)

    def _report_from_cache(self) -> FeasibilityReport:
        # Same construction order as determine_feasibility for bit-identity.
        verdicts: Dict[int, StreamVerdict] = {}
        for stream in self._resolved.sorted_by_priority():
            verdicts[stream.stream_id] = self._verdicts[stream.stream_id]
        success = all(v.feasible for v in verdicts.values())
        return FeasibilityReport(verdicts=verdicts, success=success)

    # ------------------------------------------------------------------ #
    # Structure maintenance
    # ------------------------------------------------------------------ #

    def _route(self, src: int, dst: int) -> FrozenSet[Channel]:
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            self.stats.route_cache_hits += 1
            return cached
        self.stats.route_cache_misses += 1
        chans = frozenset(self.routing.route_channels(src, dst))
        self._route_cache[key] = chans
        return chans

    def _attach(
        self, stream: MessageStream, *, structures_only: bool = False
    ) -> None:
        """Add one stream to the admitted set and the dependency indexes.

        With ``structures_only`` (full mode) only the admitted set is
        maintained — the analyzer rebuild supplies the rest.
        """
        self._admitted.add(stream)
        if structures_only:
            return
        k = stream.stream_id
        chans = self._route(stream.src, stream.dst)
        self._channels[k] = chans
        if stream.latency is None:
            resolved = stream.with_latency(
                self.latency_model.latency(stream, len(chans))
            )
        else:
            resolved = stream
        self._resolved.add(resolved)

        overlap: Set[int] = set()
        for c in chans:
            overlap |= self._channel_users.get(c, frozenset())
            self._channel_users[c] = (
                self._channel_users.get(c, frozenset()) | {k}
            )
        bk: List[int] = []
        self._rev.setdefault(k, set())
        for j in overlap:
            other = self._resolved[j]
            if other.priority >= stream.priority:
                bk.append(j)
                self._rev[j].add(k)
            if stream.priority >= other.priority:
                self._blockers[j] = tuple(sorted(self._blockers[j] + (k,)))
                self._rev[k].add(j)
        self._blockers[k] = tuple(sorted(bk))

    def _detach(self, sid: int) -> None:
        """Remove one stream from the admitted set and every index."""
        self._admitted.remove(sid)
        self._resolved.remove(sid)
        for c in self._channels.pop(sid):
            users = self._channel_users[c] - {sid}
            if users:
                self._channel_users[c] = users
            else:
                del self._channel_users[c]
        for j in self._rev.pop(sid, set()):
            if j in self._blockers:
                self._blockers[j] = tuple(
                    x for x in self._blockers[j] if x != sid
                )
        for v in self._blockers.pop(sid, ()):
            if v in self._rev:
                self._rev[v].discard(sid)
        self._hp_sets.pop(sid, None)
        self._verdicts.pop(sid, None)

    def _reverse_reachable(self, seeds: Iterable[int]) -> Set[int]:
        """Ids that can reach any seed via blocked-by edges (seeds incl.)."""
        seen: Set[int] = set()
        frontier = [s for s in seeds if s in self._blockers]
        while frontier:
            v = frontier.pop()
            if v in seen:
                continue
            seen.add(v)
            frontier.extend(self._rev.get(v, ()))
        return seen

    def _rebuild_indexes(self) -> None:
        """Derive channel-users and reverse adjacency from the caches."""
        self._channel_users = {}
        users: Dict[Channel, Set[int]] = {}
        for sid, chans in self._channels.items():
            for c in chans:
                users.setdefault(c, set()).add(sid)
        self._channel_users = {c: frozenset(v) for c, v in users.items()}
        self._rev = {sid: set() for sid in self._blockers}
        for sid, bl in self._blockers.items():
            for v in bl:
                self._rev[v].add(sid)

    # ------------------------------------------------------------------ #
    # Rollback (rejected admissions)
    # ------------------------------------------------------------------ #

    def _snapshot_caches(self):
        return (
            StreamSet(self._admitted),
            StreamSet(self._resolved),
            dict(self._channels),
            dict(self._channel_users),
            dict(self._blockers),
            {k: set(v) for k, v in self._rev.items()},
            dict(self._hp_sets),
            dict(self._verdicts),
        )

    def _restore_caches(self, saved) -> None:
        (
            self._admitted,
            self._resolved,
            self._channels,
            self._channel_users,
            self._blockers,
            self._rev,
            self._hp_sets,
            self._verdicts,
        ) = saved

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "incremental" if self.incremental else "full"
        return (
            f"IncrementalAdmissionEngine(admitted={len(self._admitted)}, "
            f"mode={mode})"
        )
