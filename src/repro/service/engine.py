"""Incremental admission engine: feasibility with per-stream caches.

The full :class:`~repro.core.feasibility.FeasibilityAnalyzer` rebuilds
routes, the direct-blocking relation, every HP set and every delay bound
from scratch — O(n) ``Cal_U`` runs per request, each over a timing diagram
of the whole HP closure. An online broker doing that for every admit and
release wastes nearly all of it: a request only perturbs the analysis of
streams whose transitive HP closure reaches a changed stream.

This engine maintains, between requests:

* a process-wide **route table** shared across engines on the same
  topology/routing (:func:`~repro.topology.route_table.shared_route_table`)
  — routes are a pure function of ``(src, dst)``, so one memoized lookup
  serves every engine, analyzer rebuild and replay;
* per-stream channel sets and a channel -> users index, so the streams
  that overlap a new route are found by link lookup, not an O(n) scan;
* the direct-blocking relation and its reverse adjacency;
* per-stream **reachability closures** over the blocked-by relation,
  updated by delta on attach/detach, from which HP sets are produced
  without any graph traversal (:func:`~repro.core.hpset.hp_set_from_reach`);
* per-stream HP sets and :class:`~repro.core.feasibility.StreamVerdict`\\ s,
  plus a **verdict memo** keyed by the full analytic input of ``Cal_U``
  (owner stream + HP member streams/modes/intermediates), so churn that
  re-creates a previously seen configuration skips the diagram entirely.

**Invalidation rule (link-overlap / closure reachability).** A verdict for
stream ``j`` depends only on ``j`` itself, ``HP_j``, the parameters of the
HP members, and the direct-blocking relation restricted to that closure
(the BDG of :mod:`repro.core.bdg` filters edges to the closure's nodes).
Every one of those inputs is a function of the blocked-by graph reachable
from ``j``; a change at stream ``k`` can therefore affect ``j`` iff ``k``
is reachable from ``j``. So the *dirty set* of an op is the reverse
reachability of the changed ids:

* admit ``k``: every ``j`` that reaches ``k`` in the **new** graph
  (new edges are all incident to ``k``, so any changed closure contains it);
* release ``k``: every ``j`` that reached ``k`` in the **old** graph.

Everything else keeps its cached verdict, which is bit-identical to what a
fresh analyzer would compute because ``Cal_U`` is a pure function of the
inputs listed above. When the dirty frontier covers the whole set the
engine falls back to a plain full :class:`FeasibilityAnalyzer` run (and
adopts its structures as the new caches).

**Reach-set maintenance.** ``_reach[j]`` is the transitive closure of the
blocked-by relation from ``j`` (``j`` excluded) — exactly the member ids
of ``HP_j``. On attach of ``k`` every new edge is incident to ``k``, so
``reach(k) = union over direct blockers x of ({x} | reach(x))`` is already
closed, and every affected ``j`` (reverse-reachable of ``k``) gains exactly
``{k} | reach(k)``. On release the dirty streams' closures are recomputed
by a traversal that expands dirty nodes edge-by-edge but absorbs every
clean neighbour's (unchanged, already closed) reach set wholesale — a
clean stream can never reach a dirty one, or it would reach a removed id.

Dirty-set ``Cal_U`` runs that miss the memo are independent, so when the
dirty frontier is large enough they fan out over a persistent
:class:`~concurrent.futures.ProcessPoolExecutor`
(:func:`~repro.analysis.parallel.map_verdicts`) and merge in sorted-id
order — bit-identical to the serial path.

Escape hatches (all default-on paths have default-off twins for CI's
equivalence legs and the perf baselines):

* ``REPRO_INCREMENTAL=0`` — force the full analyzer on every op;
* ``REPRO_INCREMENTAL_HP=0`` — keep closure invalidation but rebuild each
  dirty HP set by graph traversal instead of from the reach deltas;
* ``REPRO_ANALYSIS_PROCS=0`` — never use the verdict process pool
  (unset = ``os.cpu_count()`` workers; parallelism only engages when the
  dirty frontier reaches ``REPRO_ANALYSIS_THRESHOLD``, default 8).

**Closure-scoped guarantees (finding F-7).** A stream's bound is only a
guarantee while its transitive HP closure is itself admitted (the bound
conditions on those streams' behaviour). Inside the broker the closure is
admitted by construction — HP members come from the admitted set — and
:meth:`IncrementalAdmissionEngine.closure` reports the exact id set each
guarantee is scoped to, so clients can propagate the condition.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..analysis.parallel import map_verdicts, verdict_processes_default
from ..core import backends as _backends
from ..core.admission import AdmissionDecision
from ..core.feasibility import (
    FeasibilityAnalyzer,
    FeasibilityReport,
    StreamVerdict,
)
from ..core.hpset import HPSet, build_hp_set, hp_set_from_reach
from ..core.latency import LatencyModel, NoLoadLatency
from ..core.streams import MessageStream, StreamSet
from ..errors import AnalysisError, RoutingError, StreamError
from ..topology.base import Channel
from ..topology.route_table import shared_route_table
from ..topology.routing import RoutingAlgorithm

__all__ = ["EngineStats", "IncrementalAdmissionEngine", "RoutingDelta"]

#: Verdict-memo capacity (entries). FIFO eviction: the memo exists for
#: churn (release/re-admit of recurring configurations), where recency is
#: a good-enough proxy and bookkeeping must stay off the hot path.
_MEMO_CAP = 8192


def incremental_enabled_default() -> bool:
    """Whether incremental recomputation is on (``REPRO_INCREMENTAL`` != 0)."""
    return os.environ.get("REPRO_INCREMENTAL", "1") != "0"


def hp_incremental_enabled_default() -> bool:
    """Whether HP sets come from reach deltas (``REPRO_INCREMENTAL_HP`` != 0)."""
    return os.environ.get("REPRO_INCREMENTAL_HP", "1") != "0"


def parallel_threshold_default() -> int:
    """Minimum dirty-frontier size before the verdict pool engages.

    ``REPRO_ANALYSIS_THRESHOLD`` (default 8): below it, per-task IPC
    (pickling the prepared analyzer to the workers) costs more than the
    ``Cal_U`` runs it saves.
    """
    raw = os.environ.get("REPRO_ANALYSIS_THRESHOLD", "").strip()
    if not raw:
        return 8
    try:
        return max(1, int(raw))
    except ValueError:
        raise AnalysisError(
            f"REPRO_ANALYSIS_THRESHOLD must be an integer, got {raw!r}"
        ) from None


@dataclass
class EngineStats:
    """Cache-effectiveness counters, exposed through the ``stats`` op."""

    ops: int = 0
    admits: int = 0
    rejects: int = 0
    releases: int = 0
    verdicts_recomputed: int = 0
    verdicts_reused: int = 0
    verdict_memo_hits: int = 0
    hp_rebuilt: int = 0
    hp_delta_updates: int = 0
    full_fallbacks: int = 0
    forced_invalidations: int = 0
    #: Routing swaps applied (link failures/restores) and the streams
    #: they evicted (disconnected + deadline-missers after reroute).
    reroutes: int = 0
    reroute_evictions: int = 0
    route_cache_hits: int = 0
    route_cache_misses: int = 0
    #: Dirty-frontier sizes of incremental ops (last / running max / sum).
    dirty_last: int = 0
    dirty_max: int = 0
    dirty_total: int = 0
    #: Per-phase wall-clock breakdown of the admission hot path. Note
    #: ``verdict_seconds`` covers the whole verdict phase and therefore
    #: *includes* ``diagram_seconds`` (the diagram build inside ``Cal_U``);
    #: diagram time spent inside pool workers is not visible here.
    route_seconds: float = 0.0
    hp_seconds: float = 0.0
    diagram_seconds: float = 0.0
    verdict_seconds: float = 0.0

    def note_dirty(self, size: int) -> None:
        """Record one incremental op's dirty-frontier size."""
        self.dirty_last = size
        if size > self.dirty_max:
            self.dirty_max = size
        self.dirty_total += size

    def cache_hit_rate(self) -> float:
        """Fraction of per-op verdicts served from cache."""
        total = self.verdicts_recomputed + self.verdicts_reused
        return self.verdicts_reused / total if total else 0.0

    def to_dict(self) -> Dict[str, float]:
        out = {k: getattr(self, k) for k in (
            "ops", "admits", "rejects", "releases",
            "verdicts_recomputed", "verdicts_reused", "verdict_memo_hits",
            "hp_rebuilt", "hp_delta_updates",
            "full_fallbacks", "forced_invalidations",
            "reroutes", "reroute_evictions",
            "route_cache_hits", "route_cache_misses",
            "dirty_last", "dirty_max", "dirty_total",
        )}
        for k in (
            "route_seconds", "hp_seconds", "diagram_seconds",
            "verdict_seconds",
        ):
            out[k] = round(getattr(self, k), 6)
        out["cache_hit_rate"] = round(self.cache_hit_rate(), 4)
        return out


@dataclass(frozen=True)
class RoutingDelta:
    """What a routing swap (:meth:`~IncrementalAdmissionEngine.
    apply_routing`) did to the admitted set.

    ``evicted_streams`` carries the raw stream objects and their bound
    backends in eviction order, so a caller that must undo the swap (the
    broker's journal-failure rollback) can re-admit them exactly.
    """

    #: Surviving ids whose channel set changed under the new routing.
    rerouted: Tuple[int, ...]
    #: Ids dropped, in eviction order (disconnected first).
    evicted: Tuple[int, ...]
    #: Subset of ``evicted`` the new routing could not route at all.
    disconnected: Tuple[int, ...]
    #: Admitted ids after the swap, ascending.
    survivors: Tuple[int, ...]
    #: ``(raw stream, backend name)`` per evicted id, eviction order.
    evicted_streams: Tuple[Tuple[MessageStream, str], ...]

    def to_spec(self) -> Dict:
        return {
            "rerouted": list(self.rerouted),
            "evicted": list(self.evicted),
            "disconnected": list(self.disconnected),
            "survivors": list(self.survivors),
        }


class IncrementalAdmissionEngine:
    """Admission control with incremental feasibility recomputation.

    Drop-in analogue of :class:`~repro.core.admission.AdmissionController`
    (same ``try_admit`` / ``release`` / ``current_report`` / ``fresh_id``
    surface, same all-or-nothing batch semantics) that keeps its analysis
    warm between requests. Reports are bit-identical to a from-scratch
    :class:`FeasibilityAnalyzer` over the same admitted set.

    Parameters
    ----------
    routing:
        Deterministic routing function of the managed network.
    latency_model:
        No-load latency model (paper default).
    use_modify:
        Whether the analysis applies ``Modify_Diagram``.
    residency_margin:
        Passed through to the analyzer (see finding F-4).
    analysis:
        Name of the default bound backend
        (:mod:`repro.core.backends`) applied to admits that do not name
        one. ``None`` reads the process default, which honours the
        ``REPRO_ANALYSIS_BACKEND`` environment variable. Per-request
        backends ride on :meth:`try_admit`'s ``analysis`` keyword and
        are remembered per stream until release.
    incremental:
        ``True``/``False`` force the mode; ``None`` (default) reads the
        ``REPRO_INCREMENTAL`` environment variable (unset/``1`` = on).
    incremental_hp:
        Whether dirty HP sets come from the maintained reach closures
        (delta path) or a fresh graph traversal. ``None`` reads
        ``REPRO_INCREMENTAL_HP`` (unset/``1`` = delta path).
    processes:
        Worker count for parallel verdict recomputation; ``None`` reads
        ``REPRO_ANALYSIS_PROCS`` (unset = ``os.cpu_count()``, ``0`` or
        ``1`` = serial).
    """

    def __init__(
        self,
        routing: RoutingAlgorithm,
        *,
        latency_model: Optional[LatencyModel] = None,
        use_modify: bool = True,
        residency_margin: int = 0,
        analysis: Optional[str] = None,
        incremental: Optional[bool] = None,
        incremental_hp: Optional[bool] = None,
        processes: Optional[int] = None,
    ):
        self.routing = routing
        self.latency_model = latency_model or NoLoadLatency()
        self.use_modify = use_modify
        self.residency_margin = residency_margin
        # Resolved eagerly so a typo'd REPRO_ANALYSIS_BACKEND fails at
        # construction, not on the first admit.
        self.default_analysis = _backends.resolve_name(analysis)
        if incremental is None:
            incremental = incremental_enabled_default()
        self.incremental = bool(incremental)
        if incremental_hp is None:
            self.incremental_hp = hp_incremental_enabled_default()
        else:
            self.incremental_hp = bool(incremental_hp)
        if processes is None:
            self._pool_processes = verdict_processes_default()
        else:
            self._pool_processes = processes if processes >= 2 else None
        self._parallel_threshold = parallel_threshold_default()
        self.stats = EngineStats()

        self._admitted = StreamSet()   # streams as requested (raw latency)
        self._resolved = StreamSet()   # latencies resolved over the route
        self._next_id = 0
        # Caches (all id-keyed, values immutable except _rev's sets; reach
        # sets are replaced, never mutated in place, so rollback can keep
        # references to the old objects).
        self._route_table = shared_route_table(routing)
        self._channels: Dict[int, FrozenSet[Channel]] = {}
        self._channel_users: Dict[Channel, FrozenSet[int]] = {}
        self._blockers: Dict[int, Tuple[int, ...]] = {}
        self._rev: Dict[int, Set[int]] = {}
        self._reach: Dict[int, Set[int]] = {}
        self._hp_sets: Dict[int, HPSet] = {}
        self._verdicts: Dict[int, StreamVerdict] = {}
        self._verdict_memo: Dict[tuple, StreamVerdict] = {}
        #: Per-stream bound-backend name (every admitted id has an entry).
        self._analysis: Dict[int, str] = {}

    # ------------------------------------------------------------------ #
    # Public surface
    # ------------------------------------------------------------------ #

    @property
    def admitted(self) -> StreamSet:
        """The currently admitted stream set (a live view; do not mutate)."""
        return self._admitted

    def fresh_id(self) -> int:
        """Return a never-before-seen stream id (monotonic, no reuse)."""
        while self._next_id in self._admitted:
            self._next_id += 1
        nid = self._next_id
        self._next_id += 1
        return nid

    @property
    def next_id(self) -> int:
        """The fresh-id high-water mark (the next id to be assigned).

        Persist this alongside the admitted set: the no-reuse guarantee of
        :meth:`fresh_id` only survives a restart if the mark is restored
        via :meth:`advance_next_id` before new admissions.
        """
        return self._next_id

    def advance_next_id(self, value: int) -> None:
        """Raise the fresh-id high-water mark (never lowers it)."""
        self._next_id = max(self._next_id, int(value))

    def reset_next_id(self, value: int) -> None:
        """Roll the fresh-id mark back to ``value``.

        Only safe when every id at or above ``value`` was allocated for
        an operation that is being undone and was **never committed or
        acknowledged** (rolled-back journal failures, lost-ack retries of
        rejected batches): reusing an id a client could have observed as
        admitted would break the no-reuse guarantee. The mark never drops
        below ``max(admitted) + 1``.
        """
        floor = max(
            (sid + 1 for sid in self._admitted.ids()), default=0
        )
        self._next_id = max(int(value), floor)

    def invalidate_caches(self) -> None:
        """Drop every derived cache and rebuild from the admitted set.

        The chaos campaign's engine-layer fault (``cache_storm``): after
        an invalidation storm all verdicts, HP sets, reach closures, the
        verdict memo, the shared route table and the indexes are
        recomputed from scratch, and must come back bit-identical — the
        caches are an optimisation, never a source of truth.
        """
        self.stats.forced_invalidations += 1
        self._route_table.clear()
        self._reach.clear()
        self._verdict_memo.clear()
        self._full_rebuild()

    def closure(self, stream_id: int) -> Tuple[int, ...]:
        """Return the transitive HP closure the stream's guarantee is
        scoped to (finding F-7): every admitted id whose behaviour the
        stream's bound conditions on, ascending."""
        if stream_id not in self._admitted:
            raise StreamError(f"no admitted stream with id {stream_id}")
        return self._hp_sets[stream_id].ids()

    def verdict(self, stream_id: int) -> StreamVerdict:
        """Return the cached verdict of one admitted stream."""
        if stream_id not in self._admitted:
            raise StreamError(f"no admitted stream with id {stream_id}")
        return self._verdicts[stream_id]

    def analysis_of(self, stream_id: int) -> str:
        """Return the bound-backend name an admitted stream was vetted
        under (and will be re-vetted under on every later op)."""
        if stream_id not in self._admitted:
            raise StreamError(f"no admitted stream with id {stream_id}")
        return self._analysis[stream_id]

    def current_report(self) -> FeasibilityReport:
        """Report over the admitted set, from cache (no recomputation).

        An empty admitted set is vacuously feasible.
        """
        if len(self._resolved) == 0:
            return FeasibilityReport.trivial()
        return self._report_from_cache()

    def try_admit(
        self,
        requests: MessageStream | Iterable[MessageStream],
        *,
        analysis: Optional[str] = None,
    ) -> AdmissionDecision:
        """Test a request (stream or job batch) and admit it if feasible.

        All-or-nothing: rejection leaves the admitted set (and every
        cache) untouched, and an admitted stream can never break an
        existing guarantee — the trial covers the union.

        ``analysis`` names the bound backend the new streams are vetted
        under (``None`` = the engine default); it is validated before
        anything is touched and remembered per stream, so later ops
        re-vet each stream under its own backend.
        """
        if analysis is None:
            backend_name = self.default_analysis
        else:
            backend_name = _backends.get(analysis).name
        if isinstance(requests, MessageStream):
            requests = (requests,)
        requests = tuple(requests)
        if not requests:
            raise AnalysisError("empty admission request")
        dup = [r.stream_id for r in requests if r.stream_id in self._admitted]
        ids = [r.stream_id for r in requests]
        if dup or len(set(ids)) != len(ids):
            raise StreamError(
                f"duplicate stream id(s) in admission request: "
                f"{sorted(set(dup or ids))}"
            )
        top = max(ids)
        if top >= self._next_id:
            self._next_id = top + 1

        self.stats.ops += 1
        if not self.incremental:
            decision = self._full_admit(requests, backend_name)
        else:
            decision = self._incremental_admit(requests, backend_name)
        if decision.admitted:
            self.stats.admits += 1
        else:
            self.stats.rejects += 1
        return decision

    def release(self, stream_ids: int | Iterable[int]) -> None:
        """Remove streams from the admitted set, updating only the
        verdicts whose HP closure reached a removed stream.

        Validated up front: unknown ids raise :class:`StreamError` naming
        them and nothing is removed.
        """
        if isinstance(stream_ids, int):
            stream_ids = (stream_ids,)
        ids = tuple(dict.fromkeys(stream_ids))
        if not ids:
            return
        unknown = sorted(sid for sid in ids if sid not in self._admitted)
        if unknown:
            raise StreamError(
                f"cannot release stream id(s) {unknown}: not admitted"
            )
        self.stats.ops += 1
        self.stats.releases += 1
        if not self.incremental:
            for sid in ids:
                self._admitted.remove(sid)
                self._analysis.pop(sid, None)
            self._full_rebuild()
            return
        # Dirty set on the OLD graph: whoever could reach a removed id.
        dirty = self._reverse_reachable(ids) - set(ids)
        self.stats.note_dirty(len(dirty))
        for sid in ids:
            self._detach(sid)
        if dirty and len(dirty) >= len(self._admitted):
            self._full_rebuild()
            self.stats.full_fallbacks += 1
            return
        if self.incremental_hp:
            t0 = time.perf_counter()
            self._recompute_reach(dirty)
            self.stats.hp_seconds += time.perf_counter() - t0
        self._refresh(dirty)

    def apply_routing(self, new_routing: RoutingAlgorithm) -> RoutingDelta:
        """Swap the routing function and re-admit the affected closure.

        The reroute-and-readmit protocol: routes are recomputed under
        ``new_routing``, streams whose channel sets are unchanged keep
        every cached structure and verdict untouched, and exactly the
        reverse-reachable closure of the changed streams is re-analysed.
        Streams the new routing cannot route at all (pairs disconnected
        by link failures) are evicted first; then, while the report is
        infeasible, deadline-missing streams are evicted — rerouted
        streams before previously-stable ones, ascending id within each
        round — until the surviving set is feasible again. The final
        state is bit-identical to a from-scratch analysis of the
        surviving set under ``new_routing``, because every verdict is a
        pure function of the resolved streams and their HP closures.

        Unlike :meth:`try_admit` this is not all-or-nothing — a routing
        swap models a physical event the engine cannot refuse. Callers
        needing rollback re-apply the old routing and re-admit
        ``evicted_streams`` (order-insensitive: subsets of a feasible
        set are feasible).
        """
        self.stats.ops += 1
        self.stats.reroutes += 1
        new_table = shared_route_table(new_routing)
        changed: List[int] = []
        disconnected: List[int] = []
        for sid in sorted(self._admitted.ids()):
            stream = self._admitted[sid]
            try:
                chans = new_table.channels(stream.src, stream.dst)
            except RoutingError:
                disconnected.append(sid)
                continue
            if chans != self._channels.get(sid):
                changed.append(sid)
        rerouted = tuple(changed)
        evicted_streams: List[Tuple[MessageStream, str]] = [
            (self._admitted[sid], self._analysis[sid])
            for sid in disconnected
        ]
        evicted: List[int] = list(disconnected)

        if not self.incremental:
            for sid in disconnected:
                self._admitted.remove(sid)
                self._analysis.pop(sid, None)
            self.routing = new_routing
            self._route_table = new_table
            self._full_rebuild()
        else:
            # Capture before detach (detach pops the analysis name too).
            moved = [
                (self._admitted[sid], self._analysis[sid])
                for sid in changed
            ]
            dirty = self._reverse_reachable(changed + disconnected)
            for sid in changed + disconnected:
                self._detach(sid)
            self.routing = new_routing
            self._route_table = new_table
            for stream, name in moved:
                self._analysis[stream.stream_id] = name
                dirty |= self._attach(stream)
                dirty.add(stream.stream_id)
            dirty &= set(self._admitted.ids())
            self.stats.note_dirty(len(dirty))
            if dirty and len(dirty) >= len(self._admitted):
                self._full_rebuild()
                self.stats.full_fallbacks += 1
            else:
                if self.incremental_hp:
                    t0 = time.perf_counter()
                    self._recompute_reach(dirty)
                    self.stats.hp_seconds += time.perf_counter() - t0
                self._refresh(dirty)

        # Eviction fixpoint: drop deadline-missers until feasible again.
        rerouted_left = set(rerouted)
        while len(self._admitted):
            report = self.current_report()
            if report.success:
                break
            infeasible = set(report.infeasible_ids())
            if not infeasible:  # pragma: no cover - defensive
                raise AnalysisError(
                    "infeasible report with no infeasible streams"
                )
            victims = sorted(infeasible & rerouted_left) \
                or sorted(infeasible)
            evicted_streams.extend(
                (self._admitted[sid], self._analysis[sid])
                for sid in victims
            )
            evicted.extend(victims)
            rerouted_left -= set(victims)
            self.release(victims)
        self.stats.reroute_evictions += len(evicted)
        return RoutingDelta(
            rerouted=tuple(
                sid for sid in rerouted if sid in self._admitted
            ),
            evicted=tuple(evicted),
            disconnected=tuple(disconnected),
            survivors=tuple(sorted(self._admitted.ids())),
            evicted_streams=tuple(evicted_streams),
        )

    # ------------------------------------------------------------------ #
    # Admission paths
    # ------------------------------------------------------------------ #

    def _incremental_admit(
        self, requests: Tuple[MessageStream, ...], backend_name: str
    ) -> AdmissionDecision:
        # No O(n) cache snapshot up front: the attach path keeps an undo
        # log of the reach entries it replaces, and the refresh path saves
        # the HP sets / verdicts of the dirty ids before overwriting them.
        # Rejection then detaches the added streams (the exact structural
        # inverse of attach) and restores only those saved entries.
        undo_reach: Dict[int, Optional[Set[int]]] = {}
        added = [r.stream_id for r in requests]
        for sid in added:
            self._analysis[sid] = backend_name
        dirty: Set[int] = set()
        for r in requests:
            dirty |= self._attach(r, undo_reach=undo_reach)
        dirty.update(added)
        self.stats.note_dirty(len(dirty))
        if len(dirty) >= len(self._admitted):
            report = self._full_rebuild()
            self.stats.full_fallbacks += 1
            if report.success:
                return AdmissionDecision(True, report, ())
            # Rare reject-after-fallback: the wholesale rebuild replaced
            # every cache, so the undo log no longer applies — detach the
            # added streams and rebuild the original set from scratch.
            for sid in added:
                self._detach(sid)
            self._full_rebuild()
            return AdmissionDecision(False, report, report.infeasible_ids())
        saved_hp = {j: self._hp_sets.get(j) for j in dirty}
        saved_vd = {j: self._verdicts.get(j) for j in dirty}
        self._refresh(dirty)
        report = self._report_from_cache()
        if report.success:
            return AdmissionDecision(True, report, ())
        for sid in added:
            self._detach(sid)
        for j, old_reach in undo_reach.items():
            if j not in self._admitted:
                continue
            if old_reach is None:
                self._reach.pop(j, None)
            else:
                self._reach[j] = old_reach
        for j, hp in saved_hp.items():
            if hp is not None and j in self._admitted:
                self._hp_sets[j] = hp
        for j, vd in saved_vd.items():
            if vd is not None and j in self._admitted:
                self._verdicts[j] = vd
        return AdmissionDecision(False, report, report.infeasible_ids())

    def _full_admit(
        self, requests: Tuple[MessageStream, ...], backend_name: str
    ) -> AdmissionDecision:
        saved = self._snapshot_caches()
        for r in requests:
            self._analysis[r.stream_id] = backend_name
            self._attach(r, structures_only=True)
        report = self._full_rebuild()
        if report.success:
            return AdmissionDecision(True, report, ())
        self._restore_caches(saved)
        return AdmissionDecision(False, report, report.infeasible_ids())

    def _full_rebuild(self) -> FeasibilityReport:
        """Recompute everything with a plain analyzer; adopt its caches.

        Structures (routes, blockers, HP sets) are backend-independent,
        so one analyzer derives them; verdicts are then grouped by each
        stream's bound backend — a single-backend set takes the direct
        ``determine_feasibility`` path (bit-identical to the pre-backend
        engine when that backend is kim98).
        """
        if len(self._admitted) == 0:
            self._resolved = StreamSet()
            self._channels.clear()
            self._channel_users.clear()
            self._blockers.clear()
            self._rev.clear()
            self._reach.clear()
            self._hp_sets.clear()
            self._verdicts.clear()
            return FeasibilityReport.trivial()
        in_use = {self._analysis[sid] for sid in self._admitted.ids()}
        single = _backends.get(next(iter(in_use))) if len(in_use) == 1 \
            else None
        base_kwargs = single.analyzer_kwargs if single else {}
        analyzer = FeasibilityAnalyzer(
            StreamSet(self._admitted),
            self.routing,
            latency_model=self.latency_model,
            channels={
                s.stream_id: self._route(s.src, s.dst)
                for s in self._admitted
            },
            use_modify=self.use_modify,
            residency_margin=self.residency_margin,
            backend=single.name if single else "kim98",
            **base_kwargs,
        )
        if single is not None:
            report = analyzer.determine_feasibility()
        else:
            by_backend: Dict[str, List[int]] = {}
            for sid in self._admitted.ids():
                by_backend.setdefault(self._analysis[sid], []).append(sid)
            verdicts: Dict[int, StreamVerdict] = {}
            for name in sorted(by_backend):
                sub = _backends.get(name).analyzer_from_prepared(
                    analyzer.streams,
                    analyzer.channels,
                    analyzer.blockers,
                    analyzer.hp_sets,
                    routing=self.routing,
                    latency_model=self.latency_model,
                    use_modify=self.use_modify,
                    residency_margin=self.residency_margin,
                )
                for sid in by_backend[name]:
                    verdicts[sid] = sub.cal_u(sid)
            ordered = {
                s.stream_id: verdicts[s.stream_id]
                for s in analyzer.streams.sorted_by_priority()
            }
            report = FeasibilityReport(
                verdicts=ordered,
                success=all(v.feasible for v in ordered.values()),
            )
        self._resolved = analyzer.streams
        self._channels = dict(analyzer.channels)
        self._blockers = dict(analyzer.blockers)
        self._hp_sets = dict(analyzer.hp_sets)
        self._verdicts = dict(report.verdicts)
        self._rebuild_indexes()
        if self.incremental_hp:
            self._reach = {
                sid: set(hp.ids()) for sid, hp in self._hp_sets.items()
            }
        self.stats.verdicts_recomputed += len(report.verdicts)
        self.stats.hp_rebuilt += len(report.verdicts)
        return report

    def _refresh(self, dirty: Set[int]) -> None:
        """Rebuild HP sets and verdicts for the dirty ids only."""
        stats = self.stats
        if not dirty:
            stats.verdicts_reused += len(self._verdicts)
            return
        order = sorted(dirty)
        t0 = time.perf_counter()
        if self.incremental_hp:
            reach_map = self._reach
            for j in order:
                self._hp_sets[j] = hp_set_from_reach(
                    j, self._blockers[j], reach_map[j], reach_map
                )
            stats.hp_delta_updates += len(order)
        else:
            for j in order:
                self._hp_sets[j] = build_hp_set(
                    self._resolved[j], self._resolved, self._blockers
                )
            stats.hp_rebuilt += len(order)
        stats.hp_seconds += time.perf_counter() - t0

        t0 = time.perf_counter()
        memo = self._verdict_memo
        pending: List[int] = []
        keys: Dict[int, tuple] = {}
        for j in order:
            key = self._memo_key(j)
            keys[j] = key
            hit = memo.get(key)
            if hit is not None:
                self._verdicts[j] = hit
                stats.verdict_memo_hits += 1
            else:
                pending.append(j)
        if pending:
            by_backend: Dict[str, List[int]] = {}
            for j in pending:
                by_backend.setdefault(self._analysis[j], []).append(j)
            computed: Dict[int, StreamVerdict] = {}
            procs = self._pool_processes
            for name in sorted(by_backend):
                group = by_backend[name]
                analyzer = _backends.get(name).analyzer_from_prepared(
                    self._resolved,
                    self._channels,
                    self._blockers,
                    self._hp_sets,
                    routing=self.routing,
                    latency_model=self.latency_model,
                    use_modify=self.use_modify,
                    residency_margin=self.residency_margin,
                )
                analyzer.timing_sink = stats
                if (procs is not None
                        and len(group) >= self._parallel_threshold):
                    computed.update(
                        map_verdicts(analyzer, group, processes=procs)
                    )
                else:
                    computed.update({j: analyzer.cal_u(j) for j in group})
            for j in pending:
                v = computed[j]
                self._verdicts[j] = v
                memo[keys[j]] = v
            while len(memo) > _MEMO_CAP:
                memo.pop(next(iter(memo)))
        stats.verdict_seconds += time.perf_counter() - t0
        stats.verdicts_recomputed += len(pending)
        stats.verdicts_reused += len(self._verdicts) - len(dirty)

    def _memo_key(self, j: int) -> tuple:
        """The full analytic input of ``Cal_U(j)``, as a hashable key.

        A verdict is a pure function of the owner stream and the HP
        members (their parameters, modes and intermediate sets): routes
        are fixed per ``(src, dst)``, so the blocking edges *among* the
        closure members — all the BDG uses — are determined by the member
        streams themselves. Resolved streams are frozen dataclasses, so
        the key is hashable and survives release/re-admit cycles.
        """
        hp = self._hp_sets[j]
        resolved = self._resolved
        return (
            self._analysis[j],
            resolved[j],
            tuple(
                (resolved[e.stream_id], e.mode, e.intermediates)
                for e in hp
            ),
        )

    def _report_from_cache(self) -> FeasibilityReport:
        # Same construction order as determine_feasibility for bit-identity.
        verdicts: Dict[int, StreamVerdict] = {}
        for stream in self._resolved.sorted_by_priority():
            verdicts[stream.stream_id] = self._verdicts[stream.stream_id]
        success = all(v.feasible for v in verdicts.values())
        return FeasibilityReport(verdicts=verdicts, success=success)

    # ------------------------------------------------------------------ #
    # Structure maintenance
    # ------------------------------------------------------------------ #

    def _route(self, src: int, dst: int) -> FrozenSet[Channel]:
        t0 = time.perf_counter()
        chans, was_cached = self._route_table.lookup(src, dst)
        stats = self.stats
        if was_cached:
            stats.route_cache_hits += 1
        else:
            stats.route_cache_misses += 1
        stats.route_seconds += time.perf_counter() - t0
        return chans

    def _attach(
        self,
        stream: MessageStream,
        *,
        structures_only: bool = False,
        undo_reach: Optional[Dict[int, Optional[Set[int]]]] = None,
    ) -> Set[int]:
        """Add one stream to the admitted set and the dependency indexes.

        Returns the reverse-reachable set of the new stream on the updated
        graph (the ids whose closures changed, new id included); the union
        of these sets over a batch equals the batch's dirty set, because
        every new edge is incident to some added stream. With
        ``structures_only`` (full mode) only the admitted set is
        maintained — the analyzer rebuild supplies the rest — and the
        returned set is empty.

        When ``undo_reach`` is given, every reach entry this attach
        replaces is recorded there once (``None`` = was absent), so a
        rejected trial can restore the old closures without an O(n)
        snapshot.
        """
        self._admitted.add(stream)
        if structures_only:
            return set()
        k = stream.stream_id
        chans = self._route(stream.src, stream.dst)
        self._channels[k] = chans
        if stream.latency is None:
            resolved = stream.with_latency(
                self.latency_model.latency(stream, len(chans))
            )
        else:
            resolved = stream
        self._resolved.add(resolved)

        overlap: Set[int] = set()
        for c in chans:
            overlap |= self._channel_users.get(c, frozenset())
            self._channel_users[c] = (
                self._channel_users.get(c, frozenset()) | {k}
            )
        bk: List[int] = []
        self._rev.setdefault(k, set())
        for j in overlap:
            other = self._resolved[j]
            if other.priority >= stream.priority:
                bk.append(j)
                self._rev[j].add(k)
            if stream.priority >= other.priority:
                self._blockers[j] = tuple(sorted(self._blockers[j] + (k,)))
                self._rev[k].add(j)
        self._blockers[k] = tuple(sorted(bk))

        affected = self._reverse_reachable((k,))
        if self.incremental_hp:
            t0 = time.perf_counter()
            reach = self._reach
            # All new edges touch k, so the closure over k's direct
            # blockers' (old, still-valid) closures is itself closed.
            rk: Set[int] = set()
            for x in bk:
                rk.add(x)
                rk.update(reach.get(x, ()))
            rk.discard(k)
            if undo_reach is not None and k not in undo_reach:
                undo_reach[k] = None
            reach[k] = rk
            gain = rk | {k}
            for j in affected:
                if j == k:
                    continue
                if undo_reach is not None and j not in undo_reach:
                    undo_reach[j] = reach.get(j)
                new = reach.get(j, set()) | gain
                new.discard(j)
                reach[j] = new
            self.stats.hp_seconds += time.perf_counter() - t0
        return affected

    def _detach(self, sid: int) -> None:
        """Remove one stream from the admitted set and every index."""
        self._admitted.remove(sid)
        self._resolved.remove(sid)
        for c in self._channels.pop(sid):
            users = self._channel_users[c] - {sid}
            if users:
                self._channel_users[c] = users
            else:
                del self._channel_users[c]
        for j in self._rev.pop(sid, set()):
            if j in self._blockers:
                self._blockers[j] = tuple(
                    x for x in self._blockers[j] if x != sid
                )
        for v in self._blockers.pop(sid, ()):
            if v in self._rev:
                self._rev[v].discard(sid)
        self._reach.pop(sid, None)
        self._hp_sets.pop(sid, None)
        self._verdicts.pop(sid, None)
        self._analysis.pop(sid, None)

    def _reverse_reachable(self, seeds: Iterable[int]) -> Set[int]:
        """Ids that can reach any seed via blocked-by edges (seeds incl.)."""
        seen: Set[int] = set()
        frontier = [s for s in seeds if s in self._blockers]
        while frontier:
            v = frontier.pop()
            if v in seen:
                continue
            seen.add(v)
            frontier.extend(self._rev.get(v, ()))
        return seen

    def _recompute_reach(self, dirty: Set[int]) -> None:
        """Recompute the closures of the dirty ids after a release.

        A clean (non-dirty) stream cannot reach a dirty one — it would
        reach a removed id through it — so its closure is unchanged and
        already transitively closed. The walk therefore only expands
        dirty nodes edge-by-edge and absorbs each clean neighbour's
        closure wholesale.
        """
        reach = self._reach
        blockers = self._blockers
        for j in dirty:
            out: Set[int] = set()
            seen: Set[int] = {j}
            stack = list(blockers.get(j, ()))
            while stack:
                x = stack.pop()
                if x in seen:
                    continue
                seen.add(x)
                out.add(x)
                if x in dirty:
                    stack.extend(blockers.get(x, ()))
                else:
                    out.update(reach.get(x, ()))
            out.discard(j)
            reach[j] = out

    def _rebuild_indexes(self) -> None:
        """Derive channel-users and reverse adjacency from the caches."""
        self._channel_users = {}
        users: Dict[Channel, Set[int]] = {}
        for sid, chans in self._channels.items():
            for c in chans:
                users.setdefault(c, set()).add(sid)
        self._channel_users = {c: frozenset(v) for c, v in users.items()}
        self._rev = {sid: set() for sid in self._blockers}
        for sid, bl in self._blockers.items():
            for v in bl:
                self._rev[v].add(sid)

    # ------------------------------------------------------------------ #
    # Rollback (rejected admissions, full mode)
    # ------------------------------------------------------------------ #

    def _snapshot_caches(self):
        return (
            StreamSet(self._admitted),
            StreamSet(self._resolved),
            dict(self._channels),
            dict(self._channel_users),
            dict(self._blockers),
            {k: set(v) for k, v in self._rev.items()},
            {k: set(v) for k, v in self._reach.items()},
            dict(self._hp_sets),
            dict(self._verdicts),
            dict(self._analysis),
        )

    def _restore_caches(self, saved) -> None:
        (
            self._admitted,
            self._resolved,
            self._channels,
            self._channel_users,
            self._blockers,
            self._rev,
            self._reach,
            self._hp_sets,
            self._verdicts,
            self._analysis,
        ) = saved

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "incremental" if self.incremental else "full"
        return (
            f"IncrementalAdmissionEngine(admitted={len(self._admitted)}, "
            f"mode={mode})"
        )
