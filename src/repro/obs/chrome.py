"""Chrome trace-event exporter.

Converts a repro JSONL trace (see :mod:`repro.obs.trace`) into the JSON
object format understood by ``chrome://tracing`` / Perfetto: a top-level
``{"traceEvents": [...]}`` with microsecond ``ts`` values and the
``B``/``E``/``i``/``C`` phases we already emit.

The conversion is pure and deterministic: events keep their order, the
``seq`` number rides along in ``args`` so traces stay inspectable after
timestamp rounding, and counter events are reshaped into the
``{"args": {"value": ...}}`` layout the viewer plots.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Union

from ..errors import ReproError
from .trace import TraceEvent, read_trace

__all__ = ["chrome_trace", "export_chrome_trace"]

#: Synthetic ids — single-process, single-thread trace.
_PID = 1
_TID = 1


def _chrome_event(event: TraceEvent, ts_divisor: int) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "name": event.name,
        "cat": event.cat,
        "ph": event.ph,
        "ts": event.ts // ts_divisor,
        "pid": _PID,
        "tid": _TID,
    }
    if event.ph == "i":
        out["s"] = "t"  # thread-scoped instant
    if event.ph == "C":
        out["args"] = {"value": event.args.get("value", 0)}
    else:
        args = dict(event.args)
        args["seq"] = event.seq
        out["args"] = args
    return out


def chrome_trace(
    events: Iterable[TraceEvent], *, clock: str = "wall"
) -> Dict[str, Any]:
    """Build the ``chrome://tracing`` JSON object for ``events``.

    ``clock`` must match the tracer that produced the events: ``"wall"``
    timestamps are nanoseconds and are scaled to the microseconds Chrome
    expects; ``"logical"`` timestamps are sequence numbers and are kept
    verbatim (one "microsecond" per event keeps the viewer's ordering
    exact and the output fully deterministic).
    """
    if clock == "wall":
        divisor = 1000
    elif clock == "logical":
        divisor = 1
    else:
        raise ReproError(f"clock must be 'wall' or 'logical', got {clock!r}")
    return {
        "traceEvents": [_chrome_event(e, divisor) for e in events],
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs"},
    }


def export_chrome_trace(
    jsonl_path: Union[str, os.PathLike],
    out_path: Union[str, os.PathLike],
    *,
    clock: str = "wall",
) -> int:
    """Convert a JSONL trace file to a Chrome trace file.

    Returns the number of events exported.
    """
    events: List[TraceEvent] = read_trace(jsonl_path)
    payload = chrome_trace(events, clock=clock)
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(events)
