"""Delay-bound provenance: a full, serialisable explanation of ``U_i``.

:mod:`repro.core.report` answers "who blocks me and by how much"; this
module answers the follow-up question "*where* exactly" — the complete
per-stream accounting an operator needs when the broker rejects an
admission request:

* every HP element (DIRECT/INDIRECT, with intermediates) together with
  the slots it occupies before the bound, compressed to intervals;
* the instances ``Modify_Diagram`` released, each with its period window;
* the result row's busy/free timeline up to the bound.

The accounting is exact by construction: row allocations are disjoint
(a slot one row allocates is BUSY for every other), and ``U`` is the
``L``-th free slot of the result row, so the per-element busy slots over
``[1, U]`` sum to exactly ``U - L`` — the *interference* the bound
charges on top of the no-load latency. (The slots themselves total
``U``: ``L`` free + ``U - L`` busy.) :func:`explain_stream` asserts this
identity; the test suite pins it on the paper's worked example and on
fuzzed problems.

Everything here is derived from a fresh :meth:`FeasibilityAnalyzer.diagram_for`
call — provenance is an offline/debug path and stays out of the hot
analysis loop (see ``FeasibilityAnalyzer.determine_feasibility(explain=True)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.feasibility import FeasibilityAnalyzer
from ..core.render import render_diagram
from ..errors import AnalysisError

__all__ = [
    "HPContribution",
    "ReleasedInstance",
    "StreamExplanation",
    "explain_stream",
    "explain_report",
    "render_explanation",
]


def _intervals(slots: Sequence[int]) -> Tuple[Tuple[int, int], ...]:
    """Compress ascending slot indices into inclusive ``(start, end)`` runs."""
    runs: List[Tuple[int, int]] = []
    start = prev = None
    for t in slots:
        t = int(t)
        if start is None:
            start = prev = t
        elif t == prev + 1:
            prev = t
        else:
            runs.append((start, prev))
            start = prev = t
    if start is not None:
        runs.append((start, prev))
    return tuple(runs)


@dataclass(frozen=True)
class HPContribution:
    """One HP element's exact share of the analysed stream's bound."""

    stream_id: int
    priority: int
    #: ``"direct"`` or ``"indirect"``.
    mode: str
    #: Intermediate stream ids (empty for DIRECT elements), ascending.
    intermediates: Tuple[int, ...]
    #: Slots the element's messages occupy in ``[1, window_end]``.
    busy_slots: int
    #: Those slots compressed to inclusive ``(start, end)`` intervals.
    intervals: Tuple[Tuple[int, int], ...]
    #: Instances ``Modify_Diagram`` released (whole-diagram count).
    removed_instances: int

    def to_spec(self) -> Dict[str, Any]:
        return {
            "stream": self.stream_id,
            "priority": self.priority,
            "mode": self.mode,
            "intermediates": list(self.intermediates),
            "busy_slots": self.busy_slots,
            "intervals": [list(iv) for iv in self.intervals],
            "removed_instances": self.removed_instances,
        }


@dataclass(frozen=True)
class ReleasedInstance:
    """One message instance removed by ``Modify_Diagram``."""

    stream_id: int
    #: Instance index (instance ``i`` is released at ``i * period``).
    index: int
    #: The instance's period window, inclusive slots.
    window: Tuple[int, int]

    def to_spec(self) -> Dict[str, Any]:
        return {
            "stream": self.stream_id,
            "index": self.index,
            "window": list(self.window),
        }


@dataclass(frozen=True)
class StreamExplanation:
    """Complete provenance of one stream's delay upper bound."""

    stream_id: int
    latency: int
    deadline: int
    #: ``-1`` when the bound exceeded the horizon.
    upper_bound: int
    horizon: int
    feasible: bool
    #: End of the attribution window: ``U`` when the bound exists,
    #: otherwise the horizon.
    window_end: int
    #: Total busy slots in ``[1, window_end]`` — equals
    #: ``upper_bound - latency`` whenever the bound exists.
    interference: int
    contributions: Tuple[HPContribution, ...]
    released: Tuple[ReleasedInstance, ...] = ()
    #: Result-row busy intervals in ``[1, window_end]``.
    busy_timeline: Tuple[Tuple[int, int], ...] = ()

    def dominant(self) -> Optional[HPContribution]:
        """The largest contributor, or ``None`` when nothing interferes."""
        if not self.contributions:
            return None
        return max(self.contributions, key=lambda c: c.busy_slots)

    def to_spec(self) -> Dict[str, Any]:
        """JSON-serialisable form (the ``repro explain --json`` payload)."""
        return {
            "stream": self.stream_id,
            "latency": self.latency,
            "deadline": self.deadline,
            "upper_bound": self.upper_bound,
            "horizon": self.horizon,
            "feasible": self.feasible,
            "window_end": self.window_end,
            "interference": self.interference,
            "contributions": [c.to_spec() for c in self.contributions],
            "released": [r.to_spec() for r in self.released],
            "busy_timeline": [list(iv) for iv in self.busy_timeline],
        }


def explain_stream(
    analyzer: FeasibilityAnalyzer,
    stream_id: int,
    *,
    horizon: Optional[int] = None,
) -> StreamExplanation:
    """Build the full provenance of one stream's bound.

    Uses the analyzer's configuration (Modify toggle, granularity,
    residency margin), exactly like :meth:`FeasibilityAnalyzer.cal_u` —
    the explanation describes the same diagram the verdict came from.
    """
    stream = analyzer.streams[stream_id]
    assert stream.latency is not None
    diagram, removed = analyzer.diagram_for(stream_id, horizon)
    u = diagram.upper_bound(stream.latency)
    window_end = u if u > 0 else diagram.dtime

    contributions: List[HPContribution] = []
    hp = analyzer.hp_sets[stream_id]
    for entry in hp:
        if entry.stream_id == stream_id:
            continue
        row = diagram.row_of(entry.stream_id)
        window = diagram.allocated[row][1 : window_end + 1]
        slots = (np.flatnonzero(window) + 1).tolist()
        contributions.append(
            HPContribution(
                stream_id=entry.stream_id,
                priority=analyzer.streams[entry.stream_id].priority,
                mode=entry.mode.value,
                intermediates=tuple(sorted(entry.intermediates)),
                busy_slots=len(slots),
                intervals=_intervals(slots),
                removed_instances=len(removed.get(entry.stream_id, ())),
            )
        )
    contributions.sort(key=lambda c: (-c.busy_slots, c.stream_id))

    released: List[ReleasedInstance] = []
    for sid in sorted(removed):
        member = analyzer.streams[sid]
        for index in sorted(removed[sid]):
            lo = index * member.period + 1
            hi = min((index + 1) * member.period, diagram.dtime)
            released.append(
                ReleasedInstance(stream_id=sid, index=index, window=(lo, hi))
            )

    busy = diagram.result_busy()[1 : window_end + 1]
    busy_slots = (np.flatnonzero(busy) + 1).tolist()
    interference = len(busy_slots)

    # Accounting identities. Allocations are disjoint across rows, so the
    # per-element slots partition the result row's busy slots; and U is the
    # L-th free slot, so busy + L == U when the bound exists.
    if sum(c.busy_slots for c in contributions) != interference:
        raise AnalysisError(
            f"provenance accounting broke for stream {stream_id}: "
            f"contributions sum to "
            f"{sum(c.busy_slots for c in contributions)}, result row has "
            f"{interference} busy slots"
        )
    if u > 0 and interference != u - stream.latency:
        raise AnalysisError(
            f"provenance accounting broke for stream {stream_id}: "
            f"interference {interference} != U - L = {u - stream.latency}"
        )

    return StreamExplanation(
        stream_id=stream_id,
        latency=stream.latency,
        deadline=stream.deadline,
        upper_bound=u,
        horizon=diagram.dtime,
        feasible=0 < u <= stream.deadline,
        window_end=window_end,
        interference=interference,
        contributions=tuple(contributions),
        released=tuple(released),
        busy_timeline=_intervals(busy_slots),
    )


def explain_report(
    analyzer: FeasibilityAnalyzer,
) -> Dict[int, StreamExplanation]:
    """Explanations for every stream, keyed by id."""
    return {
        s.stream_id: explain_stream(analyzer, s.stream_id)
        for s in analyzer.streams.sorted_by_priority()
    }


def _format_intervals(intervals: Tuple[Tuple[int, int], ...]) -> str:
    if not intervals:
        return "-"
    return ", ".join(
        f"{a}" if a == b else f"{a}-{b}" for a, b in intervals
    )


def render_explanation(
    explanation: StreamExplanation,
    *,
    analyzer: Optional[FeasibilityAnalyzer] = None,
    major: int = 10,
) -> str:
    """Render an explanation as annotated text (the ``repro explain`` view).

    With an ``analyzer``, the stream's timing diagram is re-derived and
    rendered above the breakdown (paper Figs. 7/9 style, with the bound
    caret); without one, only the textual breakdown is produced.
    """
    e = explanation
    lines: List[str] = []
    if analyzer is not None:
        diagram, _ = analyzer.diagram_for(e.stream_id, e.horizon)
        lines.append(
            render_diagram(
                diagram,
                upper_bound=e.upper_bound if e.upper_bound > 0 else None,
                major=major,
            )
        )
        lines.append("")
    if e.upper_bound > 0:
        verdict = "feasible" if e.feasible else "infeasible"
        lines.append(
            f"M{e.stream_id}: U = {e.upper_bound} = L ({e.latency}) "
            f"+ interference ({e.interference})  [deadline {e.deadline}: "
            f"{verdict}]"
        )
    else:
        lines.append(
            f"M{e.stream_id}: bound exceeds horizon {e.horizon}; "
            f"attribution over the whole horizon "
            f"({e.interference} busy slots)"
        )
    if not e.contributions:
        lines.append("  (no interfering streams)")
    else:
        lines.append(
            f"  {'blocker':>8} {'prio':>5} {'mode':>9} {'slots':>6} "
            f"{'released':>9}  slots occupied"
        )
        for c in e.contributions:
            via = (
                " via M" + ",M".join(str(i) for i in c.intermediates)
                if c.intermediates
                else ""
            )
            lines.append(
                f"  {'M%d' % c.stream_id:>8} {c.priority:>5} {c.mode:>9} "
                f"{c.busy_slots:>6} {c.removed_instances:>9}  "
                f"{_format_intervals(c.intervals)}{via}"
            )
    if e.released:
        lines.append("  released by Modify_Diagram:")
        for r in e.released:
            lines.append(
                f"    M{r.stream_id} instance {r.index} "
                f"(window [{r.window[0]}, {r.window[1]}])"
            )
    lines.append(
        f"  result row busy: {_format_intervals(e.busy_timeline)}"
    )
    return "\n".join(lines)
