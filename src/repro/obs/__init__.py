"""Observability: structured tracing, bound provenance, metrics export.

Three independent sub-systems, all zero-overhead when disabled:

* :mod:`repro.obs.trace` — a lightweight span/event tracer gated by the
  ``REPRO_TRACE`` environment variable. Instruments the analysis pipeline
  (HP-set construction, diagram generation, ``Modify_Diagram`` release
  passes, per-stream ``Cal_U``) and the simulator fast path (clock jumps,
  preemptions, VC waits). Emits JSONL trace files; see
  :mod:`repro.obs.chrome` for the ``chrome://tracing`` exporter.
* :mod:`repro.obs.provenance` — per-stream *explanations* of delay upper
  bounds: which HP elements contributed which slots, what
  ``Modify_Diagram`` released, and the busy-window timeline. Rendered by
  the ``repro explain`` CLI as an annotated timing diagram.
* :mod:`repro.obs.metrics` — a dependency-free metrics registry
  (counters, gauges, histograms) with Prometheus text-format rendering,
  shared by the broker service and its admission engine.

This package init deliberately imports only the dependency-free modules;
:mod:`repro.obs.provenance` pulls in :mod:`repro.core` and is loaded
lazily so that core modules can import :mod:`repro.obs.trace` without a
cycle.
"""

from __future__ import annotations

from .chrome import chrome_trace, export_chrome_trace
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .trace import (
    TraceEvent,
    Tracer,
    active,
    configure_from_env,
    install,
    instant,
    read_trace,
    span,
    trace_enabled_from_env,
    uninstall,
)

__all__ = [
    # trace
    "TraceEvent",
    "Tracer",
    "active",
    "configure_from_env",
    "install",
    "instant",
    "read_trace",
    "span",
    "trace_enabled_from_env",
    "uninstall",
    # chrome
    "chrome_trace",
    "export_chrome_trace",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    # provenance (lazy)
    "StreamExplanation",
    "HPContribution",
    "ReleasedInstance",
    "explain_stream",
    "explain_report",
    "render_explanation",
]

_PROVENANCE_NAMES = (
    "StreamExplanation",
    "HPContribution",
    "ReleasedInstance",
    "explain_stream",
    "explain_report",
    "render_explanation",
)


def __getattr__(name: str):
    if name in _PROVENANCE_NAMES:
        from . import provenance

        return getattr(provenance, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
