"""Dependency-free metrics registry with Prometheus text-format output.

A small subset of the Prometheus client-library data model, enough for
the broker service and its admission engine:

* :class:`Counter` — monotone float, ``inc()``.
* :class:`Gauge` — settable float, ``set()``/``inc()``/``dec()``.
* :class:`Histogram` — fixed buckets, non-cumulative internal counts
  (O(1) ``observe`` via ``bit_length`` for the default power-of-two
  bucket ladder, ``bisect`` otherwise), cumulative on render as the
  exposition format requires.

Metrics are grouped into *families* (one name/help/type, many label
sets) owned by a :class:`MetricsRegistry`; :meth:`MetricsRegistry.render`
produces the ``text/plain; version=0.0.4`` exposition format::

    # HELP repro_broker_ops_total Requests handled, by op.
    # TYPE repro_broker_ops_total counter
    repro_broker_ops_total{op="admit"} 12

Everything is synchronous and unlocked: the broker mutates metrics only
on its single asyncio thread, and the analysis pipeline is synchronous.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import ReproError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS_US",
]

#: Power-of-two microsecond buckets: 1µs .. ~8.4s, 24 finite buckets.
DEFAULT_TIME_BUCKETS_US: Tuple[int, ...] = tuple(1 << i for i in range(24))

_LABEL_BAD = set(' "\\{}\n')


def _check_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ReproError(f"invalid metric name {name!r}")
    if name[0].isdigit():
        raise ReproError(f"invalid metric name {name!r}")
    return name


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    parts = []
    for k in sorted(labels):
        v = str(labels[k])
        if set(k) & _LABEL_BAD:
            raise ReproError(f"invalid label name {k!r}")
        v = v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        parts.append(f'{k}="{v}"')
    return "{" + ",".join(parts) + "}"


def _format_value(value: float) -> str:
    # Integral values render without a trailing ".0" — matches what the
    # Prometheus text parser produces and keeps goldens readable.
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ReproError("counters can only increase")
        self.value += amount

    def samples(self, name: str, labels: Mapping[str, str]) -> List[str]:
        return [f"{name}{_format_labels(labels)} {_format_value(self.value)}"]


class Gauge:
    """Value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def samples(self, name: str, labels: Mapping[str, str]) -> List[str]:
        return [f"{name}{_format_labels(labels)} {_format_value(self.value)}"]


class Histogram:
    """Fixed-bucket histogram.

    Internal counts are per-bucket (non-cumulative); rendering emits the
    cumulative ``_bucket{le=...}`` series, ``_sum`` and ``_count`` the
    exposition format requires. With the default power-of-two microsecond
    ladder, ``observe`` indexes the bucket with one ``bit_length`` call
    instead of a scan — this is the hot path the broker worker loop hits
    once per request.
    """

    __slots__ = ("bounds", "counts", "sum", "count", "max", "_pow2")

    def __init__(self, bounds: Sequence[float] = DEFAULT_TIME_BUCKETS_US):
        bounds = tuple(bounds)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ReproError("histogram bounds must be strictly increasing")
        self.bounds = bounds
        # counts[i] = observations in (bounds[i-1], bounds[i]];
        # counts[-1] = +Inf overflow bucket.
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.max = 0.0
        self._pow2 = bounds == tuple(1 << i for i in range(len(bounds)))

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        if value > self.max:
            self.max = value
        if self._pow2:
            if value <= 1:
                idx = 0
            else:
                # ceil(value) rounded up to the next power of two:
                # (m-1).bit_length() is the exponent i with 2**(i-1) < m <= 2**i.
                idx = (int(-(-value // 1)) - 1).bit_length()
                if idx >= len(self.bounds):
                    idx = len(self.bounds)
        else:
            idx = bisect_left(self.bounds, value)
        self.counts[idx] += 1

    def quantile(self, q: float) -> float:
        """Approximate quantile: upper bound of the covering bucket."""
        if not 0 <= q <= 1:
            raise ReproError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target and c:
                return float(self.bounds[i]) if i < len(self.bounds) else self.max
        return self.max

    def samples(self, name: str, labels: Mapping[str, str]) -> List[str]:
        out = []
        cum = 0
        for bound, c in zip(self.bounds, self.counts):
            cum += c
            le = dict(labels)
            le["le"] = _format_value(bound)
            out.append(f"{name}_bucket{_format_labels(le)} {cum}")
        le = dict(labels)
        le["le"] = "+Inf"
        out.append(f"{name}_bucket{_format_labels(le)} {self.count}")
        base = _format_labels(labels)
        out.append(f"{name}_sum{base} {_format_value(self.sum)}")
        out.append(f"{name}_count{base} {self.count}")
        return out


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """One metric name: help text, type, and labeled children."""

    __slots__ = ("name", "kind", "help", "_kwargs", "children")

    def __init__(self, name: str, kind: str, help: str, **kwargs: Any):
        self.name = _check_name(name)
        if kind not in _KINDS:
            raise ReproError(f"unknown metric kind {kind!r}")
        self.kind = kind
        self.help = help
        self._kwargs = kwargs
        self.children: Dict[Tuple[Tuple[str, str], ...], Any] = {}

    def child(self, labels: Mapping[str, str]):
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        child = self.children.get(key)
        if child is None:
            child = _KINDS[self.kind](**self._kwargs)
            self.children[key] = child
        return child

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for key in sorted(self.children):
            lines.extend(self.children[key].samples(self.name, dict(key)))
        return lines


class MetricsRegistry:
    """Get-or-create metric families; renders the Prometheus text format."""

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    def _family(self, name: str, kind: str, help: str, **kwargs: Any) -> _Family:
        fam = self._families.get(name)
        if fam is None:
            fam = _Family(name, kind, help, **kwargs)
            self._families[name] = fam
        elif fam.kind != kind:
            raise ReproError(
                f"metric {name!r} already registered as {fam.kind}, "
                f"requested {kind}"
            )
        return fam

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._family(name, "counter", help).child(labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._family(name, "gauge", help).child(labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        *,
        bounds: Sequence[float] = DEFAULT_TIME_BUCKETS_US,
        **labels: str,
    ) -> Histogram:
        return self._family(name, "histogram", help, bounds=bounds).child(labels)

    def families(self) -> Iterable[str]:
        return sorted(self._families)

    def render(self) -> str:
        """The full registry in Prometheus text exposition format."""
        lines: List[str] = []
        for name in sorted(self._families):
            lines.extend(self._families[name].render())
        return "\n".join(lines) + "\n" if lines else ""
