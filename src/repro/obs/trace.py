"""Structured tracing for the analysis pipeline and the simulator.

Design constraints, in order:

1. **Zero overhead when disabled.** Instrumentation sites call the
   module-level :func:`span` / :func:`instant` helpers, whose disabled
   path is one global load and a ``None`` check (plus a shared, reusable
   ``nullcontext`` for spans). Nothing is formatted, allocated or
   timestamped unless a tracer is installed. The simulator additionally
   caches the active tracer per ``run()`` so its per-cycle body never
   touches this module when tracing is off.
2. **Determinism.** Every event carries a process-monotonic sequence
   number; all payload fields are pure functions of the workload. Wall
   timestamps (``ts``/``dur``) are the only nondeterministic fields, and
   :func:`canonical_lines` strips them so two runs of the same seeded
   problem compare byte-identical. With ``REPRO_TRACE_CLOCK=logical``
   the timestamp *is* the sequence number and the files themselves are
   byte-identical.
3. **No dependencies, bounded memory.** Events land in a ring buffer
   (``REPRO_TRACE_BUFFER`` events, default 65536) and, when
   ``REPRO_TRACE_FILE`` names a path, are simultaneously streamed to it
   as JSON lines. A literal ``{pid}`` in the path is replaced by the
   process id so parallel campaigns do not interleave writes.

Enable with ``REPRO_TRACE=1`` (any value other than ``0``/``false``/
``no``/empty): the tracer is installed at import time, which is how the
CI trace-determinism leg runs the whole tier-1 suite traced. Programmatic
use goes through :func:`install` / :func:`uninstall`::

    tracer = Tracer(sink="run.jsonl")
    install(tracer)
    try:
        analyzer.determine_feasibility()
    finally:
        uninstall().close()

Event schema (one JSON object per line)::

    {"seq": 12, "ts": 83021, "ph": "B", "name": "cal_u",
     "cat": "analysis", "args": {"stream": 4, "horizon": 50}}

``ph`` follows the Chrome trace-event phases: ``B``/``E`` span begin/end,
``i`` instant, ``C`` counter.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Iterator, List, Mapping, Optional, Tuple, Union

from ..errors import ReproError

__all__ = [
    "TRACE_ENV",
    "TRACE_FILE_ENV",
    "TRACE_CLOCK_ENV",
    "TRACE_BUFFER_ENV",
    "TraceEvent",
    "Tracer",
    "active",
    "canonical_lines",
    "configure_from_env",
    "install",
    "instant",
    "pair_spans",
    "read_trace",
    "span",
    "trace_enabled_from_env",
    "uninstall",
]

TRACE_ENV = "REPRO_TRACE"
TRACE_FILE_ENV = "REPRO_TRACE_FILE"
TRACE_CLOCK_ENV = "REPRO_TRACE_CLOCK"
TRACE_BUFFER_ENV = "REPRO_TRACE_BUFFER"

_FALSEY = ("", "0", "false", "no", "off")

#: Valid event phases (Chrome trace-event subset).
PHASES = ("B", "E", "i", "C")


@dataclass(frozen=True)
class TraceEvent:
    """One trace event; the JSONL schema is its field set, verbatim."""

    seq: int
    ts: int
    ph: str
    name: str
    cat: str
    args: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "ts": self.ts,
            "ph": self.ph,
            "name": self.name,
            "cat": self.cat,
            "args": dict(self.args),
        }

    def to_json(self) -> str:
        """Canonical single-line JSON (sorted keys, compact separators)."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "TraceEvent":
        ph = str(d["ph"])
        if ph not in PHASES:
            raise ReproError(f"unknown trace phase {ph!r}")
        return cls(
            seq=int(d["seq"]),
            ts=int(d["ts"]),
            ph=ph,
            name=str(d["name"]),
            cat=str(d["cat"]),
            args=dict(d.get("args", {})),
        )


class Tracer:
    """Collects :class:`TraceEvent` records; optionally streams JSONL.

    Parameters
    ----------
    sink:
        Path (or open text file) to stream events to as JSON lines;
        ``None`` keeps events only in the ring buffer. A literal
        ``{pid}`` in a path is replaced by ``os.getpid()``.
    clock:
        ``"wall"`` (default) stamps events with ``time.perf_counter_ns``
        relative to tracer creation; ``"logical"`` stamps them with the
        sequence number, making the output fully deterministic.
    buffer_limit:
        Ring-buffer capacity in events (oldest dropped first).
    """

    def __init__(
        self,
        *,
        sink: Optional[Union[str, os.PathLike, IO[str]]] = None,
        clock: str = "wall",
        buffer_limit: int = 65536,
    ):
        if clock not in ("wall", "logical"):
            raise ReproError(f"clock must be 'wall' or 'logical', got {clock!r}")
        if buffer_limit < 1:
            raise ReproError(f"buffer_limit must be >= 1, got {buffer_limit}")
        self.clock = clock
        self.events: deque = deque(maxlen=buffer_limit)
        self._seq = 0
        self._stack: List[str] = []
        self._t0 = time.perf_counter_ns()
        self._fh: Optional[IO[str]] = None
        self._owns_fh = False
        if sink is not None:
            if hasattr(sink, "write"):
                self._fh = sink  # type: ignore[assignment]
            else:
                path = str(sink).replace("{pid}", str(os.getpid()))
                self._fh = open(path, "w")
                self._owns_fh = True

    # ------------------------------------------------------------------ #
    # Emission
    # ------------------------------------------------------------------ #

    def _stamp(self) -> int:
        if self.clock == "logical":
            return self._seq
        return time.perf_counter_ns() - self._t0

    def emit(self, ph: str, name: str, cat: str, args: Mapping[str, Any]) -> TraceEvent:
        event = TraceEvent(
            seq=self._seq, ts=self._stamp(), ph=ph, name=name, cat=cat,
            args=args,
        )
        self._seq += 1
        self.events.append(event)
        if self._fh is not None:
            self._fh.write(event.to_json() + "\n")
        return event

    def begin(self, name: str, cat: str = "repro", **args: Any) -> None:
        """Open a span (paired with :meth:`end`; prefer :meth:`span`)."""
        self._stack.append(name)
        self.emit("B", name, cat, args)

    def end(self, name: str, cat: str = "repro", **args: Any) -> None:
        """Close the innermost span, which must be ``name``."""
        if not self._stack or self._stack[-1] != name:
            raise ReproError(
                f"span end {name!r} does not match open span "
                f"{self._stack[-1] if self._stack else None!r}"
            )
        self._stack.pop()
        self.emit("E", name, cat, args)

    def instant(self, name: str, cat: str = "repro", **args: Any) -> None:
        """Record a point event."""
        self.emit("i", name, cat, args)

    def counter(self, name: str, value: Union[int, float],
                cat: str = "repro") -> None:
        """Record a counter sample."""
        self.emit("C", name, cat, {"value": value})

    @contextlib.contextmanager
    def span(self, name: str, cat: str = "repro", **args: Any) -> Iterator[None]:
        """Context manager emitting a balanced ``B``/``E`` pair."""
        self.begin(name, cat, **args)
        try:
            yield
        finally:
            self.end(name, cat)

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #

    @property
    def depth(self) -> int:
        """Current span-nesting depth."""
        return len(self._stack)

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        """Flush and, when the tracer opened its sink, close it."""
        if self._fh is not None:
            self._fh.flush()
            if self._owns_fh:
                self._fh.close()
            self._fh = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Tracer(clock={self.clock!r}, events={len(self.events)}, "
            f"depth={self.depth})"
        )


# ---------------------------------------------------------------------- #
# Global tracer (the instrumentation sites' fast path)
# ---------------------------------------------------------------------- #

_ACTIVE: Optional[Tracer] = None

#: Shared no-op context manager returned by :func:`span` when disabled.
#: ``contextlib.nullcontext`` instances are stateless and reusable.
_NULL = contextlib.nullcontext()


def active() -> Optional[Tracer]:
    """The installed tracer, or ``None`` when tracing is disabled."""
    return _ACTIVE


def install(tracer: Tracer) -> None:
    """Make ``tracer`` the process-wide tracer."""
    global _ACTIVE
    _ACTIVE = tracer


def uninstall() -> Optional[Tracer]:
    """Disable tracing; returns the previously installed tracer."""
    global _ACTIVE
    prev, _ACTIVE = _ACTIVE, None
    return prev


def span(name: str, cat: str = "repro", **args: Any):
    """Span context manager through the global tracer (no-op when off)."""
    tr = _ACTIVE
    if tr is None:
        return _NULL
    return tr.span(name, cat, **args)


def instant(name: str, cat: str = "repro", **args: Any) -> None:
    """Point event through the global tracer (no-op when off)."""
    tr = _ACTIVE
    if tr is not None:
        tr.emit("i", name, cat, args)


def trace_enabled_from_env() -> bool:
    """Whether ``REPRO_TRACE`` asks for tracing."""
    return os.environ.get(TRACE_ENV, "0").lower() not in _FALSEY


def configure_from_env() -> Optional[Tracer]:
    """(Re)install a tracer according to the environment.

    ``REPRO_TRACE`` gates tracing; ``REPRO_TRACE_FILE`` selects a JSONL
    sink path (``{pid}`` substituted); ``REPRO_TRACE_CLOCK=logical``
    selects the deterministic clock; ``REPRO_TRACE_BUFFER`` sizes the
    ring buffer. With the gate unset this *uninstalls* any active tracer
    and returns ``None``.
    """
    if not trace_enabled_from_env():
        uninstall()
        return None
    clock = os.environ.get(TRACE_CLOCK_ENV, "wall")
    sink = os.environ.get(TRACE_FILE_ENV) or None
    buffer_limit = int(os.environ.get(TRACE_BUFFER_ENV, "65536"))
    tracer = Tracer(sink=sink, clock=clock, buffer_limit=buffer_limit)
    install(tracer)
    return tracer


# ---------------------------------------------------------------------- #
# Reading traces back
# ---------------------------------------------------------------------- #


def read_trace(path: Union[str, os.PathLike]) -> List[TraceEvent]:
    """Parse a JSONL trace file back into :class:`TraceEvent` records."""
    events: List[TraceEvent] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(TraceEvent.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                raise ReproError(
                    f"bad trace line {lineno} in {path}: {exc}"
                ) from None
    return events


def canonical_lines(path: Union[str, os.PathLike]) -> List[str]:
    """Trace lines with the nondeterministic fields (``ts``) zeroed.

    Two runs of the same seeded workload must agree on this projection
    byte for byte — the determinism contract the test suite pins.
    """
    out = []
    for event in read_trace(path):
        d = event.to_dict()
        d["ts"] = 0
        out.append(json.dumps(d, sort_keys=True, separators=(",", ":")))
    return out


def pair_spans(
    events: List[TraceEvent],
) -> List[Tuple[TraceEvent, TraceEvent, int]]:
    """Match ``B``/``E`` events into ``(begin, end, depth)`` triples.

    Raises :class:`ReproError` on unbalanced or interleaved spans —
    the nesting validity check used by the trace tests.
    """
    stack: List[TraceEvent] = []
    spans: List[Tuple[TraceEvent, TraceEvent, int]] = []
    for event in events:
        if event.ph == "B":
            stack.append(event)
        elif event.ph == "E":
            if not stack or stack[-1].name != event.name:
                raise ReproError(
                    f"unbalanced span end {event.name!r} at seq {event.seq}"
                )
            begin = stack.pop()
            spans.append((begin, event, len(stack)))
    if stack:
        raise ReproError(
            f"unclosed span(s): {[e.name for e in stack]}"
        )
    return spans


# Import-time activation: lets `REPRO_TRACE=1 pytest` (the CI
# trace-determinism leg) and `REPRO_TRACE=1 repro ...` trace without any
# code change.
configure_from_env()
