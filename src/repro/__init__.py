"""repro — reproduction of Kim, Kim, Hong & Lee, *A Real-Time Communication
Method for Wormhole Switching Networks* (ICPP 1998).

The package provides:

* :mod:`repro.topology` — meshes, tori, hypercubes and deterministic
  deadlock-free routing (X-Y, dimension-order, e-cube);
* :mod:`repro.core` — the paper's contribution: HP sets, blocking dependency
  graphs, worst-case timing diagrams, the ``Cal_U`` / ``Determine-Feasibility``
  delay-upper-bound analysis, and host-processor admission control;
* :mod:`repro.sim` — a cycle-accurate flit-level wormhole simulator with
  per-priority virtual channels and preemptive priority arbitration (the
  paper's priority-handling substrate), plus the paper's periodic workload
  generator;
* :mod:`repro.baselines` — classical non-preemptive wormhole arbitration
  (priority-inversion demonstration) and a rate-monotonic utilization test;
* :mod:`repro.analysis` — the evaluation harness regenerating the paper's
  Tables 1-5 and figures.

Quickstart::

    from repro import Mesh2D, XYRouting, MessageStream, StreamSet
    from repro import FeasibilityAnalyzer

    mesh = Mesh2D(10, 10)
    routing = XYRouting(mesh)
    streams = StreamSet([
        MessageStream(0, mesh.node_xy(7, 3), mesh.node_xy(7, 7),
                      priority=5, period=150, length=4, deadline=150),
        MessageStream(1, mesh.node_xy(1, 1), mesh.node_xy(5, 4),
                      priority=4, period=100, length=2, deadline=100),
    ])
    report = FeasibilityAnalyzer(streams, routing).determine_feasibility()
    print(report.success, report.upper_bounds())
"""

from ._version import __version__
from .core import (
    AdmissionController,
    AdmissionDecision,
    BlockingMode,
    BoundBackend,
    CellState,
    FeasibilityAnalyzer,
    FeasibilityReport,
    HPEntry,
    HPSet,
    MessageStream,
    NoLoadLatency,
    PipelinedLatency,
    StreamSet,
    StreamVerdict,
    TimingDiagram,
    backend_names,
    build_all_hp_sets,
    default_backend_name,
    get_backend,
    generate_init_diagram,
    modify_diagram,
    render_bdg,
    render_diagram,
    render_hp_set,
)
from .errors import (
    AnalysisError,
    DeadlockError,
    ReproError,
    RoutingError,
    SimulationError,
    StreamError,
    TopologyError,
)
from .topology import (
    DimensionOrderRouting,
    ECubeRouting,
    Hypercube,
    Mesh,
    Mesh2D,
    RoutingAlgorithm,
    Topology,
    Torus,
    TorusDimensionOrderRouting,
    XYRouting,
    is_deadlock_free,
)

__all__ = [
    "__version__",
    # topology
    "Topology",
    "Mesh",
    "Mesh2D",
    "Torus",
    "Hypercube",
    "RoutingAlgorithm",
    "DimensionOrderRouting",
    "XYRouting",
    "ECubeRouting",
    "TorusDimensionOrderRouting",
    "is_deadlock_free",
    # core
    "MessageStream",
    "StreamSet",
    "NoLoadLatency",
    "PipelinedLatency",
    "BlockingMode",
    "HPEntry",
    "HPSet",
    "CellState",
    "TimingDiagram",
    "generate_init_diagram",
    "modify_diagram",
    "build_all_hp_sets",
    "FeasibilityAnalyzer",
    "FeasibilityReport",
    "StreamVerdict",
    "BoundBackend",
    "get_backend",
    "backend_names",
    "default_backend_name",
    "AdmissionController",
    "AdmissionDecision",
    "render_diagram",
    "render_hp_set",
    "render_bdg",
    # errors
    "ReproError",
    "TopologyError",
    "RoutingError",
    "StreamError",
    "AnalysisError",
    "SimulationError",
    "DeadlockError",
]
