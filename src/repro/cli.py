"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``example``
    Run the paper's section 4.4 worked example and print the ASCII
    renderings of Figs. 7-9 plus the bounds U = (7, 8, 26, 20, 33).
``table {table1..table5}``
    Regenerate one of the paper's evaluation tables end to end.
``soundness``
    Run a soundness campaign: random workloads, bounds, simulation, and a
    violation report (see :mod:`repro.analysis.validation`).
``inversion``
    The Fig. 2 priority-inversion comparison (classical vs preemptive).
``check FILE``
    Feasibility-test a stream set described in a JSON problem file::

        {
          "topology": {"type": "mesh", "width": 10, "height": 10},
          "streams": [
            {"id": 0, "src": [7, 3], "dst": [7, 7],
             "priority": 5, "period": 150, "length": 4, "deadline": 150}
          ]
        }

    Three topology types are accepted (see :func:`repro.io.topology_from_spec`):
    ``{"type": "mesh", "width": W, "height": H}`` (X-Y routing),
    ``{"type": "torus", "dims": [d0, d1, ...]}`` (dimension-order routing
    with dateline VC classes), and ``{"type": "hypercube", "dimension": n}``
    (e-cube routing). ``src``/``dst`` may be coordinate lists (mesh/torus)
    or integer node ids; the legacy top-level ``mesh`` key is still
    accepted. Exit codes: 0 feasible, 1 infeasible, 2 invalid problem,
    3 malformed JSON, 4 missing file.
``explain FILE STREAM``
    Show *where a stream's delay bound comes from*: the HP elements
    (DIRECT/INDIRECT) with their busy-slot contributions, the released
    indirect instances, and an annotated timing diagram (see
    :mod:`repro.obs.provenance`). ``--json`` emits the machine-readable
    breakdown. Exit codes follow ``check``, plus 0/1 for the stream's own
    feasibility.
``trace JSONL OUT``
    Convert a JSONL trace (recorded with ``REPRO_TRACE=1``; see
    :mod:`repro.obs.trace`) to Chrome trace format for ``about:tracing``
    / Perfetto. ``--clock logical`` matches ``REPRO_TRACE_CLOCK=logical``
    recordings.
``fuzz``
    Differential soundness fuzzing (see :mod:`repro.fuzz`): random
    workloads through analysis and simulator, invariant cross-checks,
    counterexample shrinking and replay. ``--replay FILE`` re-runs a
    stored counterexample; ``--self-test`` proves the harness against an
    injected bound perturbation. Exit 0 iff no violation (for
    ``--replay``: iff the counterexample still reproduces, exit 1).
``serve``
    Run the online channel broker (see :mod:`repro.service`): an asyncio
    JSON-lines server over a unix socket (``--socket``) or TCP
    (``--host``/``--port``) exposing admit/release/query/report/snapshot/
    stats ops, with optional snapshot+journal persistence
    (``--state-dir``). ``REPRO_INCREMENTAL=0`` (or ``--no-incremental``)
    forces full reanalysis on every request. ``--metrics-port PORT``
    additionally serves Prometheus metrics on ``GET /metrics``.
``load``
    Replay seeded admit/release churn against a running broker and print
    a JSON summary (throughput, acceptance rate, server stats). Used by
    the CI smoke job and for capacity probing. ``--target http://...``
    (with ``--api-key``, optionally ``--tenant`` to assert which tenant
    the key maps to) drives a fleet gateway over HTTP instead of a raw
    broker socket — same workload, same summary.
``gateway``
    Run the sharded broker fleet behind an HTTP front end (see
    :mod:`repro.fleet`): per-tenant API keys (``--tenant NAME=KEY``,
    repeatable), ``--shards`` engines per tenant partitioned by
    channel-connected components, journal-shipping warm standbys when
    ``--state-dir`` is given, ``GET /healthz``, a Prometheus
    ``GET /metrics`` rollup, the JSON admission API under ``/v1/`` and
    kill/failover admin ops under ``/admin/``.
``chaos``
    Run a seeded fault-injection campaign against the broker (see
    :mod:`repro.faults`): a fault-free oracle executes an op schedule,
    then the same schedule runs against a persistent broker while
    persistence, protocol and engine faults fire (torn journal writes,
    kills + restarts, dropped connections, cache storms). Exit 0 iff the
    recovered state is bit-identical to the oracle, no acknowledged op
    was lost, and at least ``--min-faults`` faults fired. The printed
    seed reproduces the campaign exactly. ``--fleet`` runs the campaign
    against a sharded fleet instead (see :mod:`repro.fleet.chaos`):
    multi-tenant churn with journal faults, whole-fleet crash restarts,
    primary kills and standby promotions, judged per tenant against
    single-engine oracles.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from . import __version__
from .core.feasibility import FeasibilityAnalyzer
from .core.streams import MessageStream, StreamSet
from .errors import ReproError
from .topology import Mesh2D, XYRouting

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'A Real-Time Communication Method for "
            "Wormhole Switching Networks' (ICPP 1998)"
        ),
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("example", help="run the section 4.4 worked example")

    p_table = sub.add_parser("table", help="regenerate a paper table")
    p_table.add_argument("name", choices=[f"table{i}" for i in range(1, 6)])
    p_table.add_argument("--seed", type=int, default=0)
    p_table.add_argument("--sim-time", type=int, default=30_000)

    p_sound = sub.add_parser("soundness", help="run a soundness campaign")
    p_sound.add_argument("--workloads", type=int, default=10)
    p_sound.add_argument("--streams", type=int, default=12)
    p_sound.add_argument("--levels", type=int, default=3)
    p_sound.add_argument("--sim-time", type=int, default=10_000)
    p_sound.add_argument("--seed0", type=int, default=0)

    sub.add_parser("inversion",
                   help="Fig. 2 priority-inversion comparison")

    p_check = sub.add_parser("check",
                             help="feasibility-test streams from a JSON file")
    p_check.add_argument("file", help="JSON problem description")
    p_check.add_argument("--out", default=None,
                         help="write the report as JSON to this path")
    p_check.add_argument("--analysis", default=None, metavar="BACKEND",
                         help="bound backend (kim98/tighter/buffered; "
                              "default: REPRO_ANALYSIS_BACKEND or kim98); "
                              "unknown names exit 2")

    p_explain = sub.add_parser(
        "explain",
        help="show where a stream's delay bound comes from",
    )
    p_explain.add_argument("file", help="JSON problem description")
    p_explain.add_argument("stream", type=int,
                           help="stream id to explain")
    p_explain.add_argument("--json", action="store_true",
                           help="emit the explanation as JSON")
    p_explain.add_argument("--no-diagram", action="store_true",
                           help="skip the annotated timing diagram")
    p_explain.add_argument("--analysis", default=None, metavar="BACKEND",
                           help="bound backend to explain under "
                                "(default: REPRO_ANALYSIS_BACKEND or kim98)")

    p_trace = sub.add_parser(
        "trace", help="convert a JSONL trace to Chrome trace format"
    )
    p_trace.add_argument("jsonl", help="trace file written under REPRO_TRACE")
    p_trace.add_argument("out", help="Chrome trace JSON output path")
    p_trace.add_argument("--clock", choices=["wall", "logical"],
                         default="wall",
                         help="timestamp base the trace was recorded with "
                              "(REPRO_TRACE_CLOCK; default wall)")

    p_fuzz = sub.add_parser(
        "fuzz", help="differential soundness fuzzing (analysis vs simulator)"
    )
    p_fuzz.add_argument("--seeds", type=int, default=100,
                        help="number of random cases (default 100)")
    p_fuzz.add_argument("--seed0", type=int, default=0,
                        help="first seed (default 0)")
    p_fuzz.add_argument("--mesh", default="4x4", metavar="WxH",
                        help="mesh size, e.g. 4x4 (default)")
    p_fuzz.add_argument("--max-streams", type=int, default=8,
                        help="stream-count ceiling per case (default 8)")
    p_fuzz.add_argument("--sim-time", type=int, default=2_500,
                        help="simulated slots per case (default 2500)")
    p_fuzz.add_argument("--jobs", type=int, default=0,
                        help="worker processes; 0 = one per CPU, 1 = serial")
    p_fuzz.add_argument("--time-budget", type=float, default=None,
                        metavar="SECONDS",
                        help="soft wall-clock cap; stop starting new batches")
    p_fuzz.add_argument("--corpus", default="fuzz-corpus",
                        help="directory for shrunk counterexamples "
                             "(default fuzz-corpus/)")
    p_fuzz.add_argument("--residency-margin", type=int, default=1,
                        help="analysis residency margin (default 1; "
                             "0 = the paper's unsound original)")
    p_fuzz.add_argument("--replay", metavar="FILE", default=None,
                        help="re-run one stored counterexample and exit")
    p_fuzz.add_argument("--self-test", action="store_true",
                        help="prove the harness catches an injected "
                             "bound perturbation end to end")

    p_serve = sub.add_parser(
        "serve", help="run the online channel broker (JSON-lines server)"
    )
    p_serve.add_argument("--socket", default=None, metavar="PATH",
                         help="listen on a unix socket at PATH")
    p_serve.add_argument("--host", default=None,
                         help="listen on TCP HOST (with --port)")
    p_serve.add_argument("--port", type=int, default=7315,
                         help="TCP port (default 7315)")
    p_serve.add_argument("--mesh", default=None, metavar="WxH",
                         help="shortcut for a WxH mesh topology")
    p_serve.add_argument("--topology", default=None, metavar="JSON",
                         help="topology spec as JSON, e.g. "
                              "'{\"type\": \"torus\", \"dims\": [4, 4]}'")
    p_serve.add_argument("--state-dir", default=None, metavar="DIR",
                         help="snapshot+journal persistence directory")
    p_serve.add_argument("--no-incremental", action="store_true",
                         help="full reanalysis on every request "
                              "(same as REPRO_INCREMENTAL=0)")
    p_serve.add_argument("--residency-margin", type=int, default=0,
                         help="analysis residency margin (default 0)")
    p_serve.add_argument("--analysis", default=None, metavar="BACKEND",
                         help="engine-default bound backend for admits "
                              "that do not name one (default: "
                              "REPRO_ANALYSIS_BACKEND or kim98)")
    p_serve.add_argument("--batch-max", type=int, default=64,
                         help="max requests drained per worker wakeup")
    p_serve.add_argument("--metrics-port", type=int, default=None,
                         metavar="PORT",
                         help="serve Prometheus metrics over HTTP on "
                              "127.0.0.1:PORT (GET /metrics)")
    p_serve.add_argument("--metrics-host", default="127.0.0.1",
                         help="bind address for --metrics-port "
                              "(default 127.0.0.1)")

    p_gateway = sub.add_parser(
        "gateway", help="run the sharded broker fleet behind HTTP"
    )
    p_gateway.add_argument("--host", default="127.0.0.1",
                           help="bind address (default 127.0.0.1)")
    p_gateway.add_argument("--port", type=int, default=7316,
                           help="HTTP port (default 7316)")
    p_gateway.add_argument("--tenant", action="append", default=None,
                           metavar="NAME=KEY",
                           help="tenant and its API key; repeatable "
                                "(default: one tenant 'default=dev-key')")
    p_gateway.add_argument("--shards", type=int, default=2,
                           help="engines per tenant (default 2)")
    p_gateway.add_argument("--workers", type=int, default=0,
                           help="run shards in N supervised worker "
                                "processes (needs --state-dir; default "
                                "0 = in-process)")
    p_gateway.add_argument("--mesh", default=None, metavar="WxH",
                           help="shortcut for a WxH mesh topology")
    p_gateway.add_argument("--topology", default=None, metavar="JSON",
                           help="topology spec as JSON (all tenants)")
    p_gateway.add_argument("--state-dir", default=None, metavar="DIR",
                           help="persistence root (one subdirectory per "
                                "tenant/shard); also enables the "
                                "journal-shipping warm standbys")
    p_gateway.add_argument("--no-standby", action="store_true",
                           help="persist without warm standbys")
    p_gateway.add_argument("--no-incremental", action="store_true",
                           help="full reanalysis on every request")
    p_gateway.add_argument("--poll-interval", type=float, default=0.2,
                           help="standby journal-tail period in seconds "
                                "(default 0.2)")

    p_load = sub.add_parser(
        "load", help="replay admit/release churn against a running broker"
    )
    p_load.add_argument("--socket", default=None, metavar="PATH",
                        help="broker unix socket")
    p_load.add_argument("--host", default=None, help="broker TCP host")
    p_load.add_argument("--port", type=int, default=7315,
                        help="broker TCP port (default 7315)")
    p_load.add_argument("--target", default=None, metavar="URL",
                        help="fleet gateway base URL (http://host:port); "
                             "drives the same churn over HTTP")
    p_load.add_argument("--api-key", default=None,
                        help="tenant API key for --target")
    p_load.add_argument("--tenant", default=None,
                        help="assert the --api-key maps to this tenant")
    p_load.add_argument("--ops", type=int, default=300,
                        help="operations to replay (default 300)")
    p_load.add_argument("--seed", type=int, default=0,
                        help="churn RNG seed (default 0)")
    p_load.add_argument("--target-live", type=int, default=40,
                        help="occupancy the churn hovers around")
    p_load.add_argument("--batch-size", type=int, default=1,
                        help="streams per admit request (default 1)")
    p_load.add_argument("--pipeline", type=int, default=1,
                        help="requests kept in flight (default 1 = "
                             "closed loop)")
    p_load.add_argument("--wait", type=float, default=10.0,
                        help="seconds to wait for the broker socket")
    p_load.add_argument("--trace", default=None, metavar="FILE",
                        help="replay a recorded JSON-lines op trace "
                             "instead of seeded churn")
    p_load.add_argument("--pattern", default=None,
                        choices=["bursty", "diurnal"],
                        help="generate a seeded trace (admit bursts / "
                             "sinusoidal occupancy) and replay it")
    p_load.add_argument("--link-rate", type=float, default=0.0,
                        help="per-op probability of a link fail/restore "
                             "event in a generated trace (--pattern "
                             "only; default 0)")
    p_load.add_argument("--save-trace", default=None, metavar="FILE",
                        help="write the replayed trace to FILE "
                             "(JSON lines)")
    p_load.add_argument("--assert-stats", action="store_true",
                        help="exit 1 unless server stats are non-empty")
    p_load.add_argument("--shutdown", action="store_true",
                        help="send a shutdown op after the run")

    p_chaos = sub.add_parser(
        "chaos",
        help="seeded fault-injection campaign against the channel broker",
    )
    p_chaos.add_argument("--seed", type=int, default=0,
                         help="campaign seed (default 0); reproduces "
                              "schedule and fault placement exactly")
    p_chaos.add_argument("--ops", type=int, default=150,
                         help="schedule length (default 150)")
    p_chaos.add_argument("--mesh", default="6x6", metavar="WxH",
                         help="mesh size (default 6x6)")
    p_chaos.add_argument("--target-live", type=int, default=12,
                         help="occupancy the churn hovers around")
    p_chaos.add_argument("--persistence-rate", type=float, default=0.30,
                         help="per-op probability of a journal fault")
    p_chaos.add_argument("--protocol-rate", type=float, default=0.45,
                         help="per-op probability of a connection fault")
    p_chaos.add_argument("--engine-rate", type=float, default=0.18,
                         help="per-op probability of a cache storm")
    p_chaos.add_argument("--restart-rate", type=float, default=0.06,
                         help="per-op probability of a socket-stage "
                              "server restart")
    p_chaos.add_argument("--link-rate", type=float, default=0.0,
                         help="per-slot probability the schedule kills "
                              "or restores a topology link (default 0)")
    p_chaos.add_argument("--socket-fraction", type=float, default=0.4,
                         help="fraction of ops run over a real unix "
                              "socket (default 0.4)")
    p_chaos.add_argument("--state-dir", default=None, metavar="DIR",
                         help="broker state dir (default: a temp dir)")
    p_chaos.add_argument("--min-faults", type=int, default=0,
                         help="fail unless at least this many faults "
                              "fired across all three layers")
    p_chaos.add_argument("--fleet", action="store_true",
                         help="run the campaign against a sharded fleet "
                              "(kills, promotions, whole-fleet restarts)")
    p_chaos.add_argument("--tenants", type=int, default=3,
                         help="fleet tenants (--fleet only; default 3)")
    p_chaos.add_argument("--shards", type=int, default=2,
                         help="shards per tenant (--fleet only; default 2)")
    p_chaos.add_argument("--kill-rate", type=float, default=0.04,
                         help="per-op probability of a primary kill "
                              "(--fleet only; default 0.04)")
    p_chaos.add_argument("--min-kills", type=int, default=0,
                         help="fail unless at least this many primaries "
                              "were killed (--fleet only)")
    p_chaos.add_argument("--workers", type=int, default=0,
                         help="run shards in N supervised worker "
                              "processes and SIGKILL them for real "
                              "(--fleet only; default 0 = in-process)")
    p_chaos.add_argument("--worker-kill-rate", type=float, default=0.10,
                         help="per-op probability of a worker SIGKILL "
                              "(--fleet --workers only; default 0.10)")
    p_chaos.add_argument("--min-worker-kills", type=int, default=0,
                         help="fail unless at least this many worker "
                              "processes were SIGKILLed (--fleet only)")

    return parser


def _run_example() -> int:
    from .core.hpset import HPEntry, HPSet
    from .core.render import render_diagram, render_hp_set

    mesh = Mesh2D(10, 10)
    routing = XYRouting(mesh)
    spec = [
        ((7, 3), (7, 7), 5, 15, 4, 15, 7),
        ((1, 1), (5, 4), 4, 10, 2, 10, 8),
        ((2, 1), (7, 5), 3, 40, 4, 40, 12),
        ((4, 1), (8, 5), 2, 45, 9, 45, 16),
        ((6, 1), (9, 3), 1, 50, 6, 50, 10),
    ]
    streams = StreamSet()
    for i, (s, r, p, t, c, d, latency) in enumerate(spec):
        streams.add(MessageStream(
            i, mesh.node_xy(*s), mesh.node_xy(*r), priority=p, period=t,
            length=c, deadline=d, latency=latency,
        ))
    override = {
        3: HPSet(3, [HPEntry.direct(1)]),
        4: HPSet(4, [HPEntry.indirect(0, [2]), HPEntry.indirect(1, [2, 3]),
                     HPEntry.direct(2), HPEntry.direct(3)]),
    }
    an = FeasibilityAnalyzer(streams, routing, hp_override=override)
    for sid in sorted(an.hp_sets):
        print(render_hp_set(an.hp_sets[sid]))
    final, removed = an.diagram_for(4)
    print(render_diagram(final, upper_bound=final.upper_bound(10)))
    report = an.determine_feasibility()
    print(f"U = {report.upper_bounds()} "
          f"-> {'success' if report.success else 'fail'}")
    return 0


def _run_table(name: str, seed: int, sim_time: int) -> int:
    from .analysis import format_table, run_paper_table

    result = run_paper_table(name, seed=seed, sim_time=sim_time)
    print(format_table(result))
    return 0


def _run_soundness(args: argparse.Namespace) -> int:
    from .analysis import run_soundness_campaign

    result = run_soundness_campaign(
        workloads=args.workloads,
        num_streams=args.streams,
        priority_levels=args.levels,
        sim_time=args.sim_time,
        seed0=args.seed0,
    )
    print(result.summary())
    return 0 if result.sound else 1


def _run_inversion() -> int:
    from .baselines import compare_arbitration, priority_inversion_scenario

    mesh, routing, streams = priority_inversion_scenario()
    cmp = compare_arbitration(mesh, routing, streams,
                              until=20_000, warmup=2_000)
    for p in sorted(cmp.preemptive, reverse=True):
        pre, cla = cmp.preemptive[p], cmp.classical[p]
        print(f"P{p}: preemptive {pre.mean:.1f}/{pre.maximum} "
              f"classical {cla.mean:.1f}/{cla.maximum} "
              f"({cmp.blowup(p):.1f}x)")
    return 0


def _run_check(
    path: str, out: Optional[str] = None, analysis: Optional[str] = None
) -> int:
    from .core.backends import get as get_backend, resolve_name
    from .io import load_problem, report_to_spec

    # Validated before any file I/O: an unknown --analysis must exit 2
    # (invalid input), never silently fall back to kim98. get/resolve
    # raise AnalysisError, which main() maps to exit code 2.
    backend = get_backend(resolve_name(analysis))
    try:
        topology, routing, streams = load_problem(path)
    except FileNotFoundError:
        print(f"error: no such file: {path}", file=sys.stderr)
        return 4
    except json.JSONDecodeError as exc:
        print(f"error: {path} is not valid JSON: {exc}", file=sys.stderr)
        return 3
    report = backend.analyzer(streams, routing).determine_feasibility()
    if out:
        import pathlib

        pathlib.Path(out).write_text(
            json.dumps(report_to_spec(report), indent=2) + "\n"
        )
    for sid, verdict in sorted(report.verdicts.items()):
        mark = "ok  " if verdict.feasible else "MISS"
        print(f"  M{sid}: U={verdict.upper_bound:>5}  "
              f"D={verdict.stream.deadline:>5}  {mark}")
    print(f"{'feasible' if report.success else 'infeasible'} "
          f"({backend.name})")
    return 0 if report.success else 1


def _run_explain(args: argparse.Namespace) -> int:
    from .core.backends import get as get_backend, resolve_name
    from .io import load_problem
    from .obs.provenance import explain_stream, render_explanation

    backend = get_backend(resolve_name(args.analysis))
    try:
        topology, routing, streams = load_problem(args.file)
    except FileNotFoundError:
        print(f"error: no such file: {args.file}", file=sys.stderr)
        return 4
    except json.JSONDecodeError as exc:
        print(f"error: {args.file} is not valid JSON: {exc}", file=sys.stderr)
        return 3
    if args.stream not in streams:
        known = ", ".join(str(s.stream_id) for s in streams)
        print(f"error: no stream {args.stream} in {args.file} "
              f"(streams: {known})", file=sys.stderr)
        return 2
    analyzer = backend.analyzer(streams, routing)
    explanation = explain_stream(analyzer, args.stream)
    if args.json:
        print(json.dumps(explanation.to_spec(), indent=2))
    else:
        print(render_explanation(
            explanation,
            analyzer=None if args.no_diagram else analyzer,
        ))
    return 0 if explanation.feasible else 1


def _run_trace(args: argparse.Namespace) -> int:
    from .obs.chrome import export_chrome_trace

    try:
        count = export_chrome_trace(args.jsonl, args.out, clock=args.clock)
    except FileNotFoundError:
        print(f"error: no such file: {args.jsonl}", file=sys.stderr)
        return 4
    print(f"wrote {count} events to {args.out}")
    return 0


def _parse_mesh(text: str) -> tuple:
    try:
        w, h = text.lower().split("x")
        width, height = int(w), int(h)
    except ValueError:
        raise ReproError(
            f"--mesh wants WxH (e.g. 4x4), got {text!r}"
        ) from None
    if width < 2 or height < 1:
        raise ReproError(f"mesh {width}x{height} is too small to route on")
    return width, height


def _run_fuzz(args: argparse.Namespace) -> int:
    from .fuzz import (
        GeneratorConfig,
        replay,
        run_fuzz_campaign,
        run_self_test,
    )

    if args.replay is not None:
        try:
            result = replay(args.replay)
        except FileNotFoundError:
            print(f"error: no such file: {args.replay}", file=sys.stderr)
            return 4
        except json.JSONDecodeError as exc:
            print(f"error: {args.replay} is not valid JSON: {exc}",
                  file=sys.stderr)
            return 3
        print(result.summary())
        return 1 if result.reproduced else 0

    width, height = _parse_mesh(args.mesh)
    cfg = GeneratorConfig(
        width=width,
        height=height,
        max_streams=args.max_streams,
        sim_time=args.sim_time,
        residency_margin=args.residency_margin,
    )
    if args.self_test:
        ok, text = run_self_test(
            corpus_dir=args.corpus, generator=cfg, jobs=args.jobs
        )
        print(text)
        return 0 if ok else 1

    report = run_fuzz_campaign(
        seeds=args.seeds,
        seed0=args.seed0,
        generator=cfg,
        jobs=args.jobs,
        time_budget=args.time_budget,
        corpus_dir=args.corpus,
    )
    print(report.summary())
    return 0 if report.sound else 1


def _serve_topology_spec(args: argparse.Namespace) -> dict:
    if args.mesh is not None and args.topology is not None:
        raise ReproError("pass --mesh or --topology, not both")
    if args.topology is not None:
        try:
            spec = json.loads(args.topology)
        except json.JSONDecodeError as exc:
            raise ReproError(f"--topology is not valid JSON: {exc}") from None
        if not isinstance(spec, dict):
            raise ReproError("--topology must be a JSON object")
        return spec
    width, height = _parse_mesh(args.mesh or "10x10")
    return {"type": "mesh", "width": width, "height": height}


def _run_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .service.server import BrokerServer

    if (args.socket is None) == (args.host is None):
        raise ReproError("pass exactly one of --socket or --host")
    server = BrokerServer(
        _serve_topology_spec(args),
        state_dir=args.state_dir,
        residency_margin=args.residency_margin,
        analysis=args.analysis,
        incremental=False if args.no_incremental else None,
        batch_max=args.batch_max,
    )

    async def run() -> None:
        if args.socket is not None:
            await server.start_unix(args.socket)
            where = args.socket
        else:
            await server.start_tcp(args.host, args.port)
            where = f"{args.host}:{args.port}"
        if args.metrics_port is not None:
            await server.start_metrics_http(
                args.metrics_host, args.metrics_port
            )
            print(f"metrics on http://{args.metrics_host}:"
                  f"{args.metrics_port}/metrics", flush=True)
        mode = "incremental" if server.engine.incremental else "full"
        print(f"repro-broker listening on {where} "
              f"({mode} engine, {len(server.engine.admitted)} recovered)",
              flush=True)
        await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    return 0


def _run_gateway(args: argparse.Namespace) -> int:
    import asyncio

    from .fleet import Fleet, GatewayServer, StandbyPool, TenantSpec

    topo = _serve_topology_spec(args)
    pairs = args.tenant or ["default=dev-key"]
    specs = []
    for pair in pairs:
        name, sep, key = pair.partition("=")
        if not sep or not name or not key:
            raise ReproError(
                f"--tenant wants NAME=KEY, got {pair!r}"
            )
        specs.append(TenantSpec(name, key, topo))
    fleet = Fleet(
        specs,
        shards=args.shards,
        state_dir=args.state_dir,
        incremental=False if args.no_incremental else None,
        workers=args.workers,
    )
    standbys = None
    if args.state_dir is not None and not args.no_standby:
        standbys = StandbyPool(fleet)
    gateway = GatewayServer(
        fleet, standbys=standbys, poll_interval=args.poll_interval
    )

    async def run() -> None:
        await gateway.start(args.host, args.port)
        recovered = sum(
            len(tf.owner) for tf in fleet.tenants.values()
        )
        print(
            f"repro-gateway listening on http://{args.host}:"
            f"{gateway.port} ({len(specs)} tenant(s) x {args.shards} "
            f"shard(s), {recovered} stream(s) recovered, standbys "
            f"{'on' if standbys else 'off'}, "
            f"{args.workers or 'no'} worker process(es))",
            flush=True,
        )
        await gateway.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    return 0


def _run_load(args: argparse.Namespace) -> int:
    import random

    from .service.loadgen import (
        BrokerClient,
        generate_trace,
        load_trace,
        run_load,
        run_trace,
        save_trace,
    )

    chosen = [o for o in (args.socket, args.host, args.target)
              if o is not None]
    if len(chosen) != 1:
        raise ReproError(
            "pass exactly one of --socket, --host or --target"
        )
    if args.trace is not None and args.pattern is not None:
        raise ReproError("pass at most one of --trace and --pattern")
    if args.target is not None:
        from .fleet import GatewayClient

        if args.api_key is None:
            raise ReproError("--target needs --api-key")
        client = GatewayClient(args.target, api_key=args.api_key)
        if args.tenant is not None:
            hello = client.check("hello")
            if hello.get("tenant") != args.tenant:
                client.close()
                raise ReproError(
                    f"API key maps to tenant {hello.get('tenant')!r}, "
                    f"not {args.tenant!r}"
                )
    elif args.socket is not None:
        client = BrokerClient.wait_for_unix(args.socket, timeout=args.wait)
    else:
        client = BrokerClient(host=args.host, port=args.port)
    with client:
        if args.trace is not None or args.pattern is not None:
            if args.trace is not None:
                trace = load_trace(args.trace)
            else:
                hello = client.check("hello")
                links: List[tuple] = []
                if args.link_rate > 0:
                    from .io import topology_from_spec

                    topo, _ = topology_from_spec(hello["topology"])
                    links = sorted({
                        tuple(sorted((u, v)))
                        for u, v in topo.channels()
                    })
                trace = generate_trace(
                    args.pattern,
                    random.Random(args.seed),
                    int(hello["nodes"]),
                    ops=args.ops,
                    target_live=args.target_live,
                    links=links,
                    link_rate=args.link_rate,
                )
            if args.save_trace is not None:
                save_trace(args.save_trace, trace)
            summary = run_trace(client, trace)
        else:
            summary = run_load(
                client,
                ops=args.ops,
                seed=args.seed,
                target_live=args.target_live,
                batch_size=args.batch_size,
                pipeline=args.pipeline,
            )
        if args.shutdown:
            client.check("shutdown")
    print(json.dumps(summary.to_dict(), indent=2))
    if summary.errors:
        return 1
    if args.assert_stats:
        engine = (summary.server_stats or {}).get("engine", {})
        missing = [k for k in
                   ("dirty_last", "dirty_max", "dirty_total")
                   if k not in engine]
        if not engine.get("ops", 0):
            print("error: server stats empty", file=sys.stderr)
            return 1
        if missing:
            print(f"error: engine stats miss gauge(s) {missing}",
                  file=sys.stderr)
            return 1
    return 0


def _run_fleet_chaos(args: argparse.Namespace) -> int:
    from .fleet.chaos import FleetChaosConfig, run_fleet_chaos_campaign

    width, height = _parse_mesh(args.mesh)
    cfg = FleetChaosConfig(
        seed=args.seed,
        ops=args.ops,
        tenants=args.tenants,
        shards=args.shards,
        width=width,
        height=height,
        target_live=args.target_live,
        persistence_rate=args.persistence_rate,
        kill_rate=args.kill_rate,
        workers=args.workers,
        worker_kill_rate=args.worker_kill_rate,
    )
    report = run_fleet_chaos_campaign(cfg, state_dir=args.state_dir)
    print(json.dumps(report.to_dict(), indent=2))
    print(report.summary(), file=sys.stderr)
    if not report.ok:
        return 1
    if report.faults_total < args.min_faults:
        print(
            f"error: only {report.faults_total} faults fired "
            f"(--min-faults {args.min_faults})",
            file=sys.stderr,
        )
        return 1
    if report.kills < args.min_kills:
        print(
            f"error: only {report.kills} primaries killed "
            f"(--min-kills {args.min_kills})",
            file=sys.stderr,
        )
        return 1
    if report.worker_kills < args.min_worker_kills:
        print(
            f"error: only {report.worker_kills} workers SIGKILLed "
            f"(--min-worker-kills {args.min_worker_kills})",
            file=sys.stderr,
        )
        return 1
    return 0


def _run_chaos(args: argparse.Namespace) -> int:
    from .faults import ChaosConfig, run_chaos_campaign

    if args.fleet:
        return _run_fleet_chaos(args)
    width, height = _parse_mesh(args.mesh)
    cfg = ChaosConfig(
        seed=args.seed,
        ops=args.ops,
        width=width,
        height=height,
        target_live=args.target_live,
        persistence_rate=args.persistence_rate,
        protocol_rate=args.protocol_rate,
        engine_rate=args.engine_rate,
        restart_rate=args.restart_rate,
        socket_fraction=args.socket_fraction,
        link_rate=args.link_rate,
    )
    report = run_chaos_campaign(cfg, state_dir=args.state_dir)
    print(json.dumps(report.to_dict(), indent=2))
    print(report.summary(), file=sys.stderr)
    if not report.ok:
        return 1
    if report.faults_total < args.min_faults:
        print(
            f"error: only {report.faults_total} faults fired "
            f"(--min-faults {args.min_faults})",
            file=sys.stderr,
        )
        return 1
    if args.min_faults and report.layers_covered < 3:
        print(
            f"error: only {report.layers_covered}/3 fault layers covered",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "example":
            return _run_example()
        if args.command == "table":
            return _run_table(args.name, args.seed, args.sim_time)
        if args.command == "soundness":
            return _run_soundness(args)
        if args.command == "inversion":
            return _run_inversion()
        if args.command == "check":
            return _run_check(args.file, args.out, args.analysis)
        if args.command == "explain":
            return _run_explain(args)
        if args.command == "trace":
            return _run_trace(args)
        if args.command == "fuzz":
            return _run_fuzz(args)
        if args.command == "serve":
            return _run_serve(args)
        if args.command == "gateway":
            return _run_gateway(args)
        if args.command == "load":
            return _run_load(args)
        if args.command == "chaos":
            return _run_chaos(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(  # pragma: no cover - argparse enforces choices
        f"unhandled command {args.command!r}"
    )
