"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers may catch a single base class. The more
specific subclasses distinguish configuration mistakes (bad stream
parameters, unknown nodes) from runtime conditions detected during analysis
or simulation (infeasible sets, deadlocked routing functions).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TopologyError",
    "RoutingError",
    "StreamError",
    "AnalysisError",
    "SimulationError",
    "DeadlockError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class TopologyError(ReproError):
    """Raised for invalid topology construction or node/channel lookups."""


class RoutingError(ReproError):
    """Raised when a route cannot be produced (unknown nodes, bad algorithm)."""


class StreamError(ReproError):
    """Raised for invalid message-stream parameters (non-positive period,
    deadline shorter than the network latency, duplicate identifiers, ...)."""


class AnalysisError(ReproError):
    """Raised when the feasibility analysis is invoked with inconsistent
    inputs (e.g. an HP-set override naming unknown streams)."""


class SimulationError(ReproError):
    """Raised for invalid simulator configuration or internal invariant
    violations detected while the simulation is running."""


class DeadlockError(SimulationError):
    """Raised when a routing algorithm admits a channel-dependency cycle, or
    when the simulator detects that no flit has moved for an implausibly long
    time even though messages are outstanding."""
