"""JSON serialisation of problems (topology + streams) and results.

A *problem file* describes a network and a stream set::

    {
      "topology": {"type": "mesh", "width": 10, "height": 10},
      "streams": [
        {"id": 0, "src": [7, 3], "dst": [7, 7],
         "priority": 5, "period": 150, "length": 4, "deadline": 150}
      ]
    }

Topology types: ``mesh`` (width/height), ``torus`` (dims), ``hypercube``
(dimension). Node references may be coordinate lists (meshes/tori:
``[x, y, ...]``) or plain integer node ids. The legacy key ``mesh`` is
accepted as an alias for a mesh topology (the original CLI format).

Used by ``python -m repro check`` and by user scripts that want to keep
workloads under version control next to their measured results.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from .core.feasibility import FeasibilityReport
from .core.streams import MessageStream, StreamSet
from .errors import ReproError
from .topology import (
    ECubeRouting,
    Hypercube,
    Mesh2D,
    RoutingAlgorithm,
    Topology,
    Torus,
    TorusDimensionOrderRouting,
    UpDownRouting,
    XYRouting,
)

__all__ = [
    "topology_from_spec",
    "load_problem",
    "save_problem",
    "stream_from_spec",
    "stream_to_spec",
    "streams_to_spec",
    "report_to_spec",
]


def topology_from_spec(
    spec: Dict[str, Any]
) -> Tuple[Topology, RoutingAlgorithm]:
    """Build a topology and its routing function from a JSON spec.

    The routing defaults to the topology's canonical algorithm (X-Y on
    meshes, dateline dimension-order on tori, e-cube on hypercubes). A
    ``"routing"`` key in the spec — or, when the spec names none, the
    ``REPRO_ROUTING`` environment variable — overrides it:
    ``"default"`` keeps the canonical algorithm, ``"updown"`` selects
    BFS-rooted up*/down* routing (deadlock-free on every topology,
    including irregular ones, at the cost of longer routes). Specs that
    pin ``"routing"`` explicitly are immune to the environment override,
    which is how tests asserting exact canonical-routing bounds stay
    stable under a suite-wide ``REPRO_ROUTING=updown`` run.
    """
    kind = spec.get("type", "mesh")
    if kind == "mesh":
        topology: Topology = Mesh2D(
            int(spec.get("width", 10)),
            int(spec.get("height", spec.get("width", 10))))
        routing: RoutingAlgorithm = XYRouting(topology)
    elif kind == "torus":
        dims = spec.get("dims")
        if not dims:
            raise ReproError("torus spec needs 'dims'")
        topology = Torus(tuple(int(d) for d in dims))
        routing = TorusDimensionOrderRouting(topology)
    elif kind == "hypercube":
        topology = Hypercube(int(spec.get("dimension", 4)))
        routing = ECubeRouting(topology)
    else:
        raise ReproError(f"unknown topology type {kind!r}")
    choice = spec.get("routing")
    if choice is None:
        choice = os.environ.get("REPRO_ROUTING") or "default"
    if choice == "updown":
        routing = UpDownRouting(topology)
    elif choice != "default":
        raise ReproError(
            f"unknown routing {choice!r} (known: default, updown)"
        )
    return topology, routing


def _node(topology: Topology, ref: Union[int, list]) -> int:
    if isinstance(ref, list):
        return topology.node_at(ref)
    return topology.validate_node(int(ref))


def stream_from_spec(
    topology: Topology,
    entry: Dict[str, Any],
    *,
    stream_id: Optional[int] = None,
) -> MessageStream:
    """Build one :class:`MessageStream` from a problem-file stream entry.

    ``src``/``dst`` may be coordinate lists (``[x, y, ...]``) or plain
    integer node ids. ``stream_id`` overrides the entry's ``id`` key (the
    broker service uses this to assign server-side ids); exactly one of
    the two must be present.
    """
    if stream_id is None:
        if "id" not in entry:
            raise ReproError("stream entry needs an 'id' key")
        stream_id = int(entry["id"])
    missing = [k for k in ("src", "dst", "priority", "period", "length",
                           "deadline") if k not in entry]
    if missing:
        raise ReproError(f"stream entry misses key(s) {missing}")
    return MessageStream(
        stream_id=stream_id,
        src=_node(topology, entry["src"]),
        dst=_node(topology, entry["dst"]),
        priority=int(entry["priority"]),
        period=int(entry["period"]),
        length=int(entry["length"]),
        deadline=int(entry["deadline"]),
        latency=(int(entry["latency"])
                 if entry.get("latency") is not None else None),
    )


def stream_to_spec(stream: MessageStream) -> Dict[str, Any]:
    """Serialise one stream to the problem-file entry form."""
    entry = {
        "id": stream.stream_id,
        "src": stream.src,
        "dst": stream.dst,
        "priority": stream.priority,
        "period": stream.period,
        "length": stream.length,
        "deadline": stream.deadline,
    }
    if stream.latency is not None:
        entry["latency"] = stream.latency
    return entry


def load_problem(
    path: Union[str, Path]
) -> Tuple[Topology, RoutingAlgorithm, StreamSet]:
    """Load a problem file: (topology, routing, streams)."""
    with open(path) as f:
        spec = json.load(f)
    topo_spec = spec.get("topology") or spec.get("mesh")
    if topo_spec is None:
        raise ReproError("problem file needs a 'topology' (or 'mesh') key")
    if "type" not in topo_spec and "width" in topo_spec:
        topo_spec = {"type": "mesh", **topo_spec}
    topology, routing = topology_from_spec(topo_spec)
    if "streams" not in spec:
        raise ReproError("problem file needs a 'streams' list")
    streams = StreamSet()
    for entry in spec["streams"]:
        streams.add(stream_from_spec(topology, entry))
    return topology, routing, streams


def streams_to_spec(streams: StreamSet) -> list:
    """Serialise a stream set to the problem-file stream list."""
    return [stream_to_spec(s) for s in streams]


def save_problem(
    path: Union[str, Path],
    topology_spec: Dict[str, Any],
    streams: StreamSet,
) -> None:
    """Write a problem file (topology spec passed through verbatim)."""
    payload = {
        "topology": topology_spec,
        "streams": streams_to_spec(streams),
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def report_to_spec(report: FeasibilityReport) -> Dict[str, Any]:
    """Serialise a feasibility report (bounds, verdicts, success).

    When the report carries provenance (``determine_feasibility(
    explain=True)``), an ``"explanations"`` key maps stream ids to the
    per-stream breakdown (see :mod:`repro.obs.provenance`).
    """
    spec: Dict[str, Any] = {
        "success": report.success,
        "streams": {
            str(sid): {
                "upper_bound": v.upper_bound,
                "deadline": v.stream.deadline,
                "feasible": v.feasible,
                "slack": v.slack,
                "analysis": v.backend,
            }
            for sid, v in sorted(report.verdicts.items())
        },
    }
    if report.explanations is not None:
        spec["explanations"] = {
            str(sid): exp.to_spec()
            for sid, exp in sorted(report.explanations.items())
        }
    return spec
