"""Blocking dependency graphs (the paper's BDG, Figs. 5 and 8).

For a stream ``M_j`` with indirect elements in its HP set, the paper draws a
*blocking dependency graph* whose nodes are ``M_j`` and the members of
``HP_j`` and whose edges encode direct blocking. ``Modify_Diagram`` walks
this graph breadth-first from ``M_j`` so that an indirect element is handled
only after every chain leading to it has been accounted for (the pseudocode's
in-degree counter).

Edge direction here: ``u -> v`` means "``u`` is directly blocked by ``v``"
(``v`` is in the direct part of ``HP_u``). Chains from ``M_j`` to an
indirect blocker are then directed paths, and the BFS layers used by
:mod:`repro.core.modify` are distances from ``M_j``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

import networkx as nx

from ..errors import AnalysisError
from ..obs.trace import active as _trace_active
from .hpset import HPSet
from .streams import StreamSet

__all__ = ["build_bdg", "bfs_layers", "indirect_processing_order"]


def build_bdg(
    hp: HPSet,
    blockers: Mapping[int, Tuple[int, ...]],
) -> "nx.DiGraph":
    """Build the blocking dependency graph for one analysed stream.

    Parameters
    ----------
    hp:
        The HP set of the analysed stream (self-entry optional; ignored).
    blockers:
        The global direct-blocking relation (stream id -> ids that directly
        block it), as produced by :func:`repro.core.hpset.direct_blockers`.

    Returns
    -------
    networkx.DiGraph
        Nodes: the analysed stream and all HP members. Edge ``u -> v``:
        ``u`` is directly blocked by ``v``. Node attribute ``mode`` is
        ``"owner"``, ``"DIRECT"`` or ``"INDIRECT"``.
    """
    j = hp.owner_id
    members = {e.stream_id for e in hp if e.stream_id != j}
    # Hot path (once per Cal_U with indirect members): guard the span
    # explicitly so the disabled cost is one call and a None test.
    tr = _trace_active()
    if tr is not None:
        tr.begin("build_bdg", "analysis", owner=j, members=len(members))
    try:
        g = nx.DiGraph()
        g.add_node(j, mode="owner")
        for e in hp:
            if e.stream_id == j:
                continue
            g.add_node(e.stream_id, mode=e.mode.value)
        node_set = members | {j}
        for u in node_set:
            if u not in blockers:
                raise AnalysisError(f"no blocking info for stream {u}")
            for v in blockers[u]:
                if v in node_set and v != u:
                    g.add_edge(u, v)
    finally:
        if tr is not None:
            tr.end("build_bdg", "analysis")
    return g


def bfs_layers(g: "nx.DiGraph", source: int) -> List[Tuple[int, ...]]:
    """Return BFS layers of ``g`` from ``source`` (deterministic order).

    Layer 0 is ``(source,)``; layer ``k`` holds nodes whose shortest blocking
    chain from the owner has ``k`` edges. Nodes unreachable from ``source``
    (possible only for malformed inputs) are appended as a final layer so
    callers never silently drop them.
    """
    if source not in g:
        raise AnalysisError(f"BDG has no node {source}")
    seen = {source}
    layers: List[Tuple[int, ...]] = [(source,)]
    frontier = [source]
    while frontier:
        nxt = sorted(
            {v for u in frontier for v in g.successors(u)} - seen
        )
        if not nxt:
            break
        seen.update(nxt)
        layers.append(tuple(nxt))
        frontier = nxt
    rest = sorted(set(g.nodes) - seen)
    if rest:
        layers.append(tuple(rest))
    return layers


def indirect_processing_order(
    hp: HPSet,
    blockers: Mapping[int, Tuple[int, ...]],
    streams: StreamSet,
) -> Tuple[int, ...]:
    """Return the order in which ``Modify_Diagram`` handles indirect elements.

    Elements are processed by increasing BFS distance from the owner
    (nearest chains first), ties broken by descending priority then id —
    mirroring the paper's BFS walk with in-degree counting, which guarantees
    an element is reached only via already-examined chains.
    """
    indirect = set(hp.indirect_ids())
    if not indirect:
        return ()
    if _trace_active() is not None:
        # Cold path: build the real graph so the build_bdg span fires.
        g = build_bdg(hp, blockers)
        order: List[int] = []
        for layer in bfs_layers(g, hp.owner_id):
            layer_ids = [i for i in layer if i in indirect]
            layer_ids.sort(key=lambda i: (-streams[i].priority, i))
            order.extend(layer_ids)
        missing = indirect - set(order)
        if missing:  # pragma: no cover - defensive
            order.extend(sorted(missing))
        return tuple(order)
    # Hot path (once per Cal_U with indirect members): the BFS only needs
    # the blocked-by edges restricted to the closure — walk `blockers`
    # directly instead of materialising a DiGraph.
    j = hp.owner_id
    node_set = {e.stream_id for e in hp if e.stream_id != j}
    node_set.add(j)
    for u in node_set:
        if u not in blockers:
            raise AnalysisError(f"no blocking info for stream {u}")
    order = []
    seen = {j}
    frontier = [j]
    while frontier:
        nxt = {
            v
            for u in frontier
            for v in blockers[u]
            if v in node_set and v != u and v not in seen
        }
        if not nxt:
            break
        seen.update(nxt)
        frontier = sorted(nxt)
        layer_ids = [i for i in frontier if i in indirect]
        layer_ids.sort(key=lambda i: (-streams[i].priority, i))
        order.extend(layer_ids)
    missing = indirect - seen
    if missing:  # pragma: no cover - defensive
        rest = sorted(missing, key=lambda i: (-streams[i].priority, i))
        order.extend(rest)
    return tuple(order)
