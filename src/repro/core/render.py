"""ASCII rendering of timing diagrams, HP sets and BDGs.

The paper's figures 4, 6, 7 and 9 are timing diagrams and figures 5 and 8
are blocking dependency graphs; with no plotting stack available offline we
render them as monospace text, which is faithful to the original figures
(they are themselves discrete grids). The benchmark harness prints these for
the figure-reproduction experiments (E-F4..E-F9).

Cell legend (matching the paper's)::

    X  ALLOCATED   the row's stream transmits in the slot
    w  WAITING     the row's stream is preempted / blocked in the slot
    #  BUSY        a higher-priority row occupies the slot
    .  FREE        slot available to lower priorities
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Tuple

import networkx as nx

from .bdg import bfs_layers
from .hpset import HPSet
from .timing_diagram import CellState, TimingDiagram

__all__ = ["render_diagram", "render_hp_set", "render_bdg", "CELL_CHARS"]

#: Character used for each cell state.
CELL_CHARS: Mapping[int, str] = {
    int(CellState.FREE): ".",
    int(CellState.BUSY): "#",
    int(CellState.WAITING): "w",
    int(CellState.ALLOCATED): "X",
}


def _time_ruler(dtime: int, label_width: int, major: int = 10) -> str:
    """Build a header line marking every ``major``-th slot."""
    cells = []
    for t in range(1, dtime + 1):
        if t % major == 0:
            mark = str(t)
            cells.append(mark[-1])
        elif t % 5 == 0:
            cells.append("+")
        else:
            cells.append("-")
    return " " * label_width + "".join(cells)


def render_diagram(
    diagram: TimingDiagram,
    *,
    upper_bound: Optional[int] = None,
    major: int = 10,
) -> str:
    """Render a timing diagram as monospace text (paper Figs. 7 and 9).

    Parameters
    ----------
    diagram:
        The populated diagram.
    upper_bound:
        When given, a caret marks the slot where the owner's bound falls on
        the result row (the arrow in the paper's Fig. 9).
    major:
        Ruler period.
    """
    grid = diagram.to_grid()
    labels = [f"M{s.stream_id}" for s in diagram.row_streams] + ["result"]
    label_width = max(len(x) for x in labels) + 2
    lines = [
        f"timing diagram for M{diagram.owner_id} "
        f"(dtime={diagram.dtime}, free slots={diagram.num_free_slots()})",
        _time_ruler(diagram.dtime, label_width, major),
    ]
    for row, label in enumerate(labels):
        chars = "".join(
            CELL_CHARS[int(grid[row, t])] for t in range(1, diagram.dtime + 1)
        )
        lines.append(label.ljust(label_width) + chars)
    if upper_bound is not None and upper_bound > 0:
        lines.append(
            " " * label_width
            + " " * (upper_bound - 1)
            + "^"
            + f" U = {upper_bound}"
        )
    lines.append(
        " " * label_width
        + "legend: X=ALLOCATED  w=WAITING  #=BUSY  .=FREE"
    )
    return "\n".join(lines)


def render_hp_set(hp: HPSet) -> str:
    """Render an HP set in the paper's notation (Fig. 3 / section 4.4)."""
    parts = []
    for e in hp:
        if e.is_direct:
            parts.append(f"({e.stream_id}, DIRECT, ∅)")
        else:
            ins = ", ".join(str(i) for i in sorted(e.intermediates))
            parts.append(f"({e.stream_id}, INDIRECT, ({ins}))")
    return f"HP_{hp.owner_id} = {{ " + "; ".join(parts) + " }"


def render_bdg(g: "nx.DiGraph", owner_id: int) -> str:
    """Render a blocking dependency graph as BFS layers + edge list.

    The paper draws the BDG as a chain/tree rooted at the analysed stream
    (Figs. 5 and 8); BFS layers from the owner give the same reading order.
    """
    layers = bfs_layers(g, owner_id)
    lines = [f"blocking dependency graph of M{owner_id}"]
    for depth, layer in enumerate(layers):
        names = "  ".join(f"M{i}" for i in layer)
        lines.append(f"  depth {depth}: {names}")
    lines.append("  blocked-by edges:")
    for u, v in sorted(g.edges()):
        lines.append(f"    M{u} -> M{v}")
    return "\n".join(lines)
