"""Worst-case timing diagrams (the paper's ``Generate_Init_Diagram``).

The delay upper bound of a stream ``M_j`` is computed on a two-dimensional
*timing diagram*: one row per HP-set element (sorted by non-increasing
priority), one column per time slot ``1 .. dtime``, plus a final *result*
row. Cells take the paper's four states:

``FREE``
    nobody above uses the slot;
``BUSY``
    a higher-priority row allocated the slot (propagated downward);
``WAITING``
    the row's stream wanted the slot but it was busy (preempted state);
``ALLOCATED``
    the row's stream transmits during the slot.

All streams are released simultaneously at time 0 (the critical instant) and
every instance ``i`` of a stream with period ``T`` may only use slots inside
its own window ``(i*T, (i+1)*T]``; within the window it claims the first
``C`` free slots, marking busy slots it had to skip as WAITING until its
demand is met. Slots allocated by a row render every lower row (including
the result row) BUSY. ``U_j`` is then the earliest time by which the FREE
slots of the result row accumulate to the network latency ``L_j``
(``Cal_U``'s final scan).

This module stores rows as NumPy boolean masks (one ``allocated`` and one
``waiting`` mask per row) rather than a dense state grid: the construction
then costs a few vector operations per message instance instead of one
Python iteration per cell, which matters because the evaluation recomputes
diagrams for tens of streams over horizons of 10^4..10^5 slots. A dense
``int8`` grid (for rendering the paper's figures and for tests) is
materialised on demand by :meth:`TimingDiagram.to_grid`.

Hand-validated against the paper: the initial diagram of ``HP_4`` in section
4.4 yields exactly 7 free slots within the deadline (Fig. 7), and the final
diagrams reproduce ``U = (7, 8, 26, 20, 33)`` — see ``tests/test_paper_example.py``.
"""

from __future__ import annotations

from collections.abc import Mapping as _MappingABC
from dataclasses import dataclass, field
from enum import IntEnum
from typing import (
    AbstractSet,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from ..errors import AnalysisError
from ..obs.trace import active as _trace_active
from .kernel import fill_masks, window_arrays
from .streams import MessageStream

__all__ = [
    "CellState",
    "InstanceAllocation",
    "TimingDiagram",
    "generate_init_diagram",
    "refill_rows",
]


class CellState(IntEnum):
    """Cell states of the timing diagram (paper section 4.2)."""

    FREE = 0
    BUSY = 1
    WAITING = 2
    ALLOCATED = 3


class InstanceAllocation:
    """Slots claimed by one message instance of one stream row.

    ``allocated`` and ``waiting`` are ascending slot indices (1-based);
    ``satisfied`` is ``False`` when the window closed before the instance
    collected its full ``C`` slots (demand overflow — the paper inflates the
    period in that case, see :func:`repro.analysis.experiments.inflate_periods`).

    Slot indices are held as NumPy arrays (``alloc_arr`` / ``wait_arr``) so
    the hot release-check of ``Modify_Diagram`` can test thousands of
    instances without materialising Python integers; the tuple views exist
    for tests, rendering and user code.
    """

    __slots__ = ("stream_id", "index", "release", "satisfied",
                 "alloc_arr", "wait_arr")

    def __init__(self, stream_id: int, index: int, release: int,
                 satisfied: bool, alloc_arr: np.ndarray,
                 wait_arr: np.ndarray):
        self.stream_id = stream_id
        self.index = index
        self.release = release
        self.satisfied = satisfied
        self.alloc_arr = alloc_arr
        self.wait_arr = wait_arr

    @property
    def allocated(self) -> Tuple[int, ...]:
        """Ascending allocated slot indices, as a tuple."""
        return tuple(int(t) for t in self.alloc_arr)

    @property
    def waiting(self) -> Tuple[int, ...]:
        """Ascending waiting slot indices, as a tuple."""
        return tuple(int(t) for t in self.wait_arr)

    def occupied(self) -> Tuple[int, ...]:
        """Return all slots the instance touches (allocated + waiting)."""
        return tuple(
            int(t) for t in np.sort(
                np.concatenate([self.alloc_arr, self.wait_arr])
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InstanceAllocation(stream={self.stream_id}, i={self.index}, "
            f"release={self.release}, allocated={self.allocated}, "
            f"satisfied={self.satisfied})"
        )


class _InstanceView(_MappingABC):
    """Read-only ``stream_id -> [InstanceAllocation]`` view of a diagram.

    The records are derived data — fully determined by the row masks and
    the per-row skip sets — and only ``Modify_Diagram``'s release check
    (plus tests and rendering) ever reads them, while ``refill_rows``
    rewrites masks on every compaction pass. Building them lazily, one
    stream on first access, makes the common re-fill (no indirect
    elements, nobody asks) free of per-instance Python objects.
    """

    __slots__ = ("_diagram",)

    def __init__(self, diagram: "TimingDiagram"):
        self._diagram = diagram

    def __getitem__(self, stream_id: int) -> List["InstanceAllocation"]:
        return self._diagram._records_for(stream_id)

    def __iter__(self) -> Iterator[int]:
        return iter(s.stream_id for s in self._diagram.row_streams)

    def __len__(self) -> int:
        return len(self._diagram.row_streams)


class TimingDiagram:
    """A populated timing diagram for one analysed stream.

    Rows appear in non-increasing priority order; the implicit result row is
    the complement of the union of all allocations. Construction goes
    through :func:`generate_init_diagram`.
    """

    def __init__(
        self,
        owner_id: int,
        row_streams: Sequence[MessageStream],
        dtime: int,
    ):
        if dtime < 1:
            raise AnalysisError(f"dtime must be >= 1, got {dtime}")
        self.owner_id = owner_id
        self.row_streams: Tuple[MessageStream, ...] = tuple(row_streams)
        self.dtime = int(dtime)
        self._row_index: Dict[int, int] = {
            s.stream_id: i for i, s in enumerate(self.row_streams)
        }
        if len(self._row_index) != len(self.row_streams):
            raise AnalysisError("duplicate stream ids among diagram rows")
        n = len(self.row_streams)
        # Index 0 of each mask is unused: slots are 1-based as in the paper.
        self.allocated = np.zeros((n, dtime + 1), dtype=bool)
        self.waiting = np.zeros((n, dtime + 1), dtype=bool)
        #: busy-from-above prefix per row: busy_above[i] = OR of allocations
        #: of rows 0..i-1. Row n (== result row) is the union of all.
        self._busy_above: Optional[np.ndarray] = None
        #: Lazily-built per-stream instance records (see _InstanceView).
        self.instances: Mapping[int, List[InstanceAllocation]] = (
            _InstanceView(self)
        )
        self._records: Dict[int, List[InstanceAllocation]] = {}
        self._requests: Dict[int, np.ndarray] = {}
        self._row_skip: Dict[int, Tuple[int, ...]] = {}
        self._filled: Set[int] = set()

    # ------------------------------------------------------------------ #
    # Row access
    # ------------------------------------------------------------------ #

    @property
    def num_rows(self) -> int:
        """Number of stream rows (the result row is implicit)."""
        return len(self.row_streams)

    def row_of(self, stream_id: int) -> int:
        """Return the row index of ``stream_id``."""
        try:
            return self._row_index[stream_id]
        except KeyError:
            raise AnalysisError(
                f"stream {stream_id} has no row in the diagram of "
                f"stream {self.owner_id}"
            ) from None

    def result_busy(self) -> np.ndarray:
        """Return the result row's busy mask (index 0 unused)."""
        if self.num_rows == 0:
            return np.zeros(self.dtime + 1, dtype=bool)
        return self.allocated.any(axis=0)

    def state(self, row: int, slot: int) -> CellState:
        """Return the :class:`CellState` of one cell.

        ``row`` may be ``num_rows`` to address the result row, whose cells
        are only ever FREE or BUSY.
        """
        if not 1 <= slot <= self.dtime:
            raise AnalysisError(
                f"slot {slot} outside diagram range [1, {self.dtime}]"
            )
        if row == self.num_rows:
            return (
                CellState.BUSY if self.result_busy()[slot] else CellState.FREE
            )
        if not 0 <= row < self.num_rows:
            raise AnalysisError(f"row {row} out of range")
        if self.allocated[row, slot]:
            return CellState.ALLOCATED
        if self.waiting[row, slot]:
            return CellState.WAITING
        if self.allocated[:row, slot].any():
            return CellState.BUSY
        return CellState.FREE

    def row_requests(self, row: int) -> np.ndarray:
        """Return the mask of slots the row's stream holds or wants.

        A slot is *requested* when the row is ALLOCATED or WAITING there —
        the condition ``Modify_Diagram`` evaluates on intermediate streams.
        Cached per row (invalidated when the row is re-filled); callers
        must treat the returned mask as read-only.
        """
        mask = self._requests.get(row)
        if mask is None:
            mask = self.allocated[row] | self.waiting[row]
            self._requests[row] = mask
        return mask

    def _records_for(self, stream_id: int) -> List[InstanceAllocation]:
        """Build (or return cached) instance records for one stream row.

        Splits the row's allocated/waiting slot indices per period window
        — exactly the records the eager fill used to produce, but only
        for rows somebody actually reads.
        """
        records = self._records.get(stream_id)
        if records is not None:
            return records
        row = self.row_of(stream_id)
        records = []
        if row in self._filled:
            stream = self.row_streams[row]
            starts, _ = window_arrays(stream.period, self.dtime)
            skip = self._row_skip.get(row, ())
            skip_set = frozenset(skip)
            alloc_idx = np.flatnonzero(self.allocated[row])
            wait_idx = np.flatnonzero(self.waiting[row])
            a_bounds = np.searchsorted(alloc_idx, starts, side="right")
            w_bounds = np.searchsorted(wait_idx, starts, side="right")
            n = len(starts)
            length = stream.length
            for index in range(n):
                if index in skip_set:
                    continue
                a_lo = a_bounds[index]
                a_hi = a_bounds[index + 1] if index + 1 < n else len(alloc_idx)
                w_lo = w_bounds[index]
                w_hi = w_bounds[index + 1] if index + 1 < n else len(wait_idx)
                a = alloc_idx[a_lo:a_hi]
                w = wait_idx[w_lo:w_hi]
                records.append(
                    InstanceAllocation(
                        stream_id=stream_id,
                        index=index,
                        release=int(starts[index]),
                        satisfied=len(a) == length,
                        alloc_arr=a,
                        wait_arr=w,
                    )
                )
        self._records[stream_id] = records
        return records

    # ------------------------------------------------------------------ #
    # Result-row queries (Cal_U's final scan)
    # ------------------------------------------------------------------ #

    def free_slots(self) -> np.ndarray:
        """Return ascending slot indices that are FREE on the result row."""
        busy = self.result_busy()
        free = np.flatnonzero(~busy[1:]) + 1
        return free

    def num_free_slots(self) -> int:
        """Return the count of FREE result-row slots (Fig. 7 reports 7)."""
        return int(len(self.free_slots()))

    def upper_bound(self, latency: int) -> int:
        """Return ``U``: the slot by which ``latency`` free slots accumulate.

        Returns ``-1`` when fewer than ``latency`` free slots exist within
        the diagram horizon (the paper's failure signal).
        """
        if latency < 1:
            raise AnalysisError(f"latency must be >= 1, got {latency}")
        free = self.free_slots()
        if len(free) < latency:
            return -1
        return int(free[latency - 1])

    def unsatisfied_instances(self) -> Tuple[InstanceAllocation, ...]:
        """Return instances whose demand did not fit inside their window."""
        return tuple(
            inst
            for lst in self.instances.values()
            for inst in lst
            if not inst.satisfied
        )

    # ------------------------------------------------------------------ #
    # Dense grid (rendering / tests)
    # ------------------------------------------------------------------ #

    def to_grid(self) -> np.ndarray:
        """Materialise the dense ``(num_rows + 1, dtime + 1)`` state grid.

        Row ``num_rows`` is the result row; column 0 is unused (slots are
        1-based). Values are :class:`CellState` integers.
        """
        n = self.num_rows
        grid = np.zeros((n + 1, self.dtime + 1), dtype=np.int8)
        busy = np.zeros(self.dtime + 1, dtype=bool)
        for row in range(n):
            grid[row, busy] = CellState.BUSY
            grid[row, self.waiting[row]] = CellState.WAITING
            grid[row, self.allocated[row]] = CellState.ALLOCATED
            busy |= self.allocated[row]
        grid[n, busy] = CellState.BUSY
        grid[:, 0] = CellState.FREE
        return grid

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TimingDiagram(owner={self.owner_id}, rows="
            f"{[s.stream_id for s in self.row_streams]}, dtime={self.dtime})"
        )


def generate_init_diagram(
    owner_id: int,
    row_streams: Sequence[MessageStream],
    dtime: int,
    *,
    removed: Optional[Mapping[int, AbstractSet[int]]] = None,
    erased_slots: Optional[Mapping[int, AbstractSet[int]]] = None,
) -> TimingDiagram:
    """Populate a timing diagram (the paper's ``Generate_Init_Diagram``).

    Parameters
    ----------
    owner_id:
        Stream whose bound is being computed (not itself a row).
    row_streams:
        HP-set member streams **sorted by non-increasing priority** (ties by
        ascending id); each must have a positive period and length.
    dtime:
        Diagram horizon in slots (the paper uses the owner's deadline).
    removed:
        Optional map ``stream_id -> set of instance indices`` to skip —
        ``Modify_Diagram`` re-generates the diagram with the instances whose
        indirect interference was released removed entirely.
    erased_slots:
        Optional map ``stream_id -> set of absolute slots`` erased from the
        stream's demand (slot-granular release): the stream neither
        allocates nor waits there, and the erased demand does not shift.

    Notes
    -----
    Instance ``i`` of a stream with period ``T`` is released at ``i * T`` and
    may claim slots in ``(i*T, min((i+1)*T, dtime)]`` only; it takes the
    first ``C`` free slots of that window, marking skipped busy slots
    WAITING. Slots it allocates become BUSY for every lower row.
    """
    removed = removed or {}
    # Hot path (re-run on every Cal_U / Modify_Diagram pass): guard the
    # span explicitly so the disabled cost is one call and a None test.
    tr = _trace_active()
    if tr is not None:
        tr.begin(
            "generate_init_diagram", "analysis",
            owner=owner_id, rows=len(row_streams), dtime=int(dtime),
        )
    try:
        diagram = TimingDiagram(owner_id, row_streams, dtime)
        for prev, cur in zip(
            diagram.row_streams[:-1], diagram.row_streams[1:]
        ):
            if (prev.priority, -prev.stream_id) < (
                cur.priority, -cur.stream_id
            ):
                raise AnalysisError(
                    "diagram rows must be sorted by non-increasing priority "
                    f"(ties by id): {prev.stream_id} before {cur.stream_id}"
                )
        refill_rows(diagram, removed, erased_slots=erased_slots, start_row=0)
    finally:
        if tr is not None:
            tr.end("generate_init_diagram", "analysis")
    return diagram


def _fill_row(
    diagram: TimingDiagram,
    row: int,
    busy: np.ndarray,
    skip: AbstractSet[int],
    erased: Optional[AbstractSet[int]] = None,
) -> None:
    """(Re)compute one row's allocation against the busy-from-above mask.

    The mask computation lives in :mod:`repro.core.kernel` (numpy
    free-rank by default, optional numba scan): instead of scanning each
    period window cell by cell, rank the FREE slots with a cumulative sum
    — within a window, the slots whose free-rank (relative to the window
    start) is in ``[1, C]`` are exactly the first ``C`` free slots the
    paper's scan would allocate, and a BUSY slot is WAITING exactly when
    fewer than ``C`` free slots precede it in its window (the scan was
    still unsatisfied when it passed).
    """
    stream = diagram.row_streams[row]
    sid = stream.stream_id
    period, length = stream.period, stream.length
    dtime = diagram.dtime

    alloc, wait, starts = fill_masks(busy, period, length, dtime)
    if erased:
        # Only slots inside the horizon can be erased; the common case
        # (no erasures) never reaches here, and an all-out-of-range set
        # must not pay the fancy-index either.
        idx = [t for t in erased if 1 <= t <= dtime]
        if idx:
            alloc[idx] = False
            wait[idx] = False
    skip_sorted = tuple(sorted(skip))
    for index in skip_sorted:
        if 0 <= index < len(starts):
            lo = starts[index] + 1
            hi = min(starts[index] + period, dtime)
            alloc[lo : hi + 1] = False
            wait[lo : hi + 1] = False

    diagram.allocated[row] = alloc
    diagram.waiting[row] = wait
    # Records and the requests mask are derived from the masks just
    # rewritten — drop the stale caches; _records_for rebuilds on demand.
    diagram._row_skip[row] = skip_sorted
    diagram._filled.add(row)
    diagram._records.pop(sid, None)
    diagram._requests.pop(row, None)


def refill_rows(
    diagram: TimingDiagram,
    removed: Mapping[int, AbstractSet[int]],
    *,
    erased_slots: Optional[Mapping[int, AbstractSet[int]]] = None,
    start_row: int = 0,
) -> None:
    """Recompute rows ``start_row..`` of a diagram in place.

    Rows above ``start_row`` are untouched — their allocations fully
    determine the busy mask the lower rows see, which is what makes the
    incremental update of ``Modify_Diagram`` sound: releasing instances of
    the stream at ``start_row`` can only change rows at or below it.
    """
    if not 0 <= start_row <= diagram.num_rows:
        raise AnalysisError(f"start_row {start_row} out of range")
    if start_row == 0:
        busy = np.zeros(diagram.dtime + 1, dtype=bool)
    else:
        busy = diagram.allocated[:start_row].any(axis=0)
    erased_slots = erased_slots or {}
    for row in range(start_row, diagram.num_rows):
        stream = diagram.row_streams[row]
        _fill_row(
            diagram, row, busy,
            removed.get(stream.stream_id, frozenset()),
            erased_slots.get(stream.stream_id),
        )
        # `busy` is a private accumulator here (fresh zeros or a fresh
        # .any() reduction), so the OR can run in place.
        np.logical_or(busy, diagram.allocated[row], out=busy)
