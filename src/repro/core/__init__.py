"""The paper's primary contribution: message-stream feasibility analysis.

Submodules follow the structure of the paper's section 4: stream model
(:mod:`.streams`, :mod:`.latency`), HP sets (:mod:`.hpset`), blocking
dependency graphs (:mod:`.bdg`), timing diagrams (:mod:`.timing_diagram`,
:mod:`.modify`), the feasibility test itself (:mod:`.feasibility`), the
host-processor admission-control surface (:mod:`.admission`) and figure
rendering (:mod:`.render`).
"""

from .admission import AdmissionController, AdmissionDecision
from .backends import (
    BoundBackend,
    default_name as default_backend_name,
    get as get_backend,
    names as backend_names,
    register as register_backend,
    temporary_backend,
)
from .assignment import (
    audsley_assignment,
    deadline_monotonic_assignment,
    group_into_levels,
    rate_monotonic_assignment,
)
from .bdg import bfs_layers, build_bdg, indirect_processing_order
from .busy_window import BusyWindowResult, busy_window_bound, busy_window_bounds
from .feasibility import FeasibilityAnalyzer, FeasibilityReport, StreamVerdict
from .hpset import (
    BlockingMode,
    HPEntry,
    HPSet,
    build_all_hp_sets,
    build_hp_set,
    direct_blockers,
    stream_channels,
)
from .latency import LatencyModel, NoLoadLatency, PipelinedLatency
from .modify import modify_diagram, releasable_instances
from .render import render_bdg, render_diagram, render_hp_set
from .report import (
    Contribution,
    InterferenceReport,
    format_interference_report,
    interference_report,
)
from .streams import MessageStream, StreamSet
from .timing_diagram import (
    CellState,
    InstanceAllocation,
    TimingDiagram,
    generate_init_diagram,
)

__all__ = [
    "MessageStream",
    "StreamSet",
    "LatencyModel",
    "NoLoadLatency",
    "PipelinedLatency",
    "BlockingMode",
    "HPEntry",
    "HPSet",
    "stream_channels",
    "direct_blockers",
    "build_hp_set",
    "build_all_hp_sets",
    "build_bdg",
    "bfs_layers",
    "indirect_processing_order",
    "CellState",
    "InstanceAllocation",
    "TimingDiagram",
    "generate_init_diagram",
    "modify_diagram",
    "releasable_instances",
    "FeasibilityAnalyzer",
    "FeasibilityReport",
    "StreamVerdict",
    "BoundBackend",
    "get_backend",
    "backend_names",
    "register_backend",
    "default_backend_name",
    "temporary_backend",
    "BusyWindowResult",
    "busy_window_bound",
    "busy_window_bounds",
    "AdmissionController",
    "AdmissionDecision",
    "render_diagram",
    "render_hp_set",
    "render_bdg",
    "Contribution",
    "InterferenceReport",
    "interference_report",
    "format_interference_report",
    "rate_monotonic_assignment",
    "deadline_monotonic_assignment",
    "audsley_assignment",
    "group_into_levels",
]
