"""Interference attribution: *why* is a stream's bound what it is?

``U_i`` is the point where the free slots of the result row accumulate to
``L_i``; everything before it is either the stream's own latency budget or
busy time charged to specific HP elements. :func:`interference_report`
breaks the interval ``[1, U_i]`` down per interfering stream — slots
allocated before the bound, share of the bound, instances removed by
``Modify_Diagram`` — which is the first thing a system designer asks when
an admission request is rejected ("who is blocking me, and by how much?").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import AnalysisError
from .feasibility import FeasibilityAnalyzer
from .hpset import BlockingMode

__all__ = ["Contribution", "InterferenceReport", "interference_report",
           "format_interference_report"]


@dataclass(frozen=True)
class Contribution:
    """One HP element's share of the analysed stream's bound."""

    stream_id: int
    priority: int
    mode: BlockingMode
    #: Slots the element's messages occupy in [1, U] (or the horizon when
    #: the bound was not reached).
    busy_slots: int
    #: busy_slots / U.
    share: float
    #: Instances released by Modify_Diagram (whole-diagram count).
    removed_instances: int


@dataclass(frozen=True)
class InterferenceReport:
    """Attribution of one stream's delay upper bound."""

    stream_id: int
    latency: int
    upper_bound: int
    horizon: int
    contributions: Tuple[Contribution, ...]

    @property
    def interference(self) -> int:
        """Total busy slots before the bound (``U - L`` when U exists)."""
        return sum(c.busy_slots for c in self.contributions)

    def dominant(self) -> Optional[Contribution]:
        """The largest contributor, or ``None`` when nothing interferes."""
        if not self.contributions:
            return None
        return max(self.contributions, key=lambda c: c.busy_slots)


def interference_report(
    analyzer: FeasibilityAnalyzer,
    stream_id: int,
    *,
    horizon: Optional[int] = None,
) -> InterferenceReport:
    """Attribute a stream's bound to the members of its HP set.

    Uses the analyzer's configuration (Modify toggle, residency margin).
    When the bound exceeds the horizon, slots are attributed over the whole
    horizon instead and ``upper_bound`` is ``-1``.
    """
    stream = analyzer.streams[stream_id]
    assert stream.latency is not None
    diagram, removed = analyzer.diagram_for(stream_id, horizon)
    u = diagram.upper_bound(stream.latency)
    window_end = u if u > 0 else diagram.dtime

    contributions: List[Contribution] = []
    hp = analyzer.hp_sets[stream_id]
    for entry in hp:
        if entry.stream_id == stream_id:
            continue
        row = diagram.row_of(entry.stream_id)
        busy = int(diagram.allocated[row][1 : window_end + 1].sum())
        contributions.append(Contribution(
            stream_id=entry.stream_id,
            priority=analyzer.streams[entry.stream_id].priority,
            mode=entry.mode,
            busy_slots=busy,
            share=busy / window_end if window_end else 0.0,
            removed_instances=len(removed.get(entry.stream_id, ())),
        ))
    contributions.sort(key=lambda c: (-c.busy_slots, c.stream_id))
    return InterferenceReport(
        stream_id=stream_id,
        latency=stream.latency,
        upper_bound=u,
        horizon=diagram.dtime,
        contributions=tuple(contributions),
    )


def format_interference_report(report: InterferenceReport) -> str:
    """Render the attribution as aligned text."""
    if report.upper_bound > 0:
        head = (
            f"M{report.stream_id}: U = {report.upper_bound} "
            f"= L ({report.latency}) + interference "
            f"({report.interference}) over [1, {report.upper_bound}]"
        )
    else:
        head = (
            f"M{report.stream_id}: bound exceeds horizon "
            f"{report.horizon}; attribution over the whole horizon"
        )
    lines = [head]
    if not report.contributions:
        lines.append("  (no interfering streams)")
        return "\n".join(lines)
    lines.append(
        f"  {'blocker':>8} {'prio':>5} {'mode':>9} {'slots':>6} "
        f"{'share':>7} {'released':>9}"
    )
    for c in report.contributions:
        lines.append(
            f"  M{c.stream_id:>7} {c.priority:>5} {c.mode.value:>9} "
            f"{c.busy_slots:>6} {c.share:>6.1%} {c.removed_instances:>9}"
        )
    return "\n".join(lines)
