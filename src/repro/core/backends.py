"""Pluggable bound backends: named configurations of the feasibility analysis.

Every admission verdict in this repo is ultimately a delay upper bound ``U``
compared against ``min(T, D)``. The paper's analysis (Kim98) is one way to
compute ``U``; the successor literature bounds the *same* workloads with
different tightness — Nikolić/Indrusiak's tighter priority-preemptive
analysis (arXiv:1605.07888) and Indrusiak/Burns's buffering-effects analysis
(arXiv:1606.02942). A :class:`BoundBackend` names one such analysis as a
frozen set of :class:`~repro.core.feasibility.FeasibilityAnalyzer` keyword
arguments, so callers (engine, CLI, fuzz oracle, benchmarks) select an
analysis by name instead of by knob soup.

Registered backends
-------------------
``kim98``
    The paper's analysis verbatim — worst-case timing diagram plus the
    instance-granular ``Modify_Diagram`` single sweep. The reference point:
    every other backend is differential-tested against it.
``tighter``
    Kim98 plus (i) the ``Modify_Diagram`` fixpoint sweep and (ii) an FCFS
    equal-priority instance cap in the spirit of arXiv:1605.07888's
    interference refinements: a *direct* equal-priority HP member whose
    channels are shared with no third stream at the owner's priority can
    block the owner's header at most once per shared channel under the
    simulator's FCFS arbitration, so the diagram charges it at most
    ``|channels(member) ∩ channels(owner)|`` instances; later windows are
    discharged before the diagram is built. Declares ``refines="kim98"``:
    its bound never exceeds Kim98's on the same prepared inputs, which the
    cross-backend fuzz oracle enforces (bounds ≤, admitted ⊇).
``buffered``
    Kim98 with every HP member's charged length inflated by one flit slot
    (``interference_margin=1``), modelling the per-hop buffering /
    backpressure residency that arXiv:1606.02942 shows real routers add on
    top of the idealised wormhole model. Strictly pessimistic, hence sound
    by construction; useful as the conservative end of the differential
    spread.

Use :func:`get` / :func:`names` / :func:`default_name` for lookup and
:func:`temporary_backend` to register throwaway backends in tests. The
process-wide default honours the ``REPRO_ANALYSIS_BACKEND`` environment
variable (validated — an unknown name raises at first use rather than
silently meaning kim98).
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

from ..errors import AnalysisError
from .feasibility import FeasibilityAnalyzer
from .streams import StreamSet

__all__ = [
    "BoundBackend",
    "register",
    "get",
    "names",
    "default_name",
    "resolve_name",
    "temporary_backend",
    "ENV_VAR",
]

#: Environment variable naming the process-wide default backend.
ENV_VAR = "REPRO_ANALYSIS_BACKEND"


@dataclass(frozen=True)
class BoundBackend:
    """A named, frozen configuration of the feasibility analysis.

    Attributes
    ----------
    name:
        Registry key; also what the service persists in reports/journals.
    summary:
        One-line human description (surfaced by ``hello`` and the CLI).
    citation:
        Where the analysis comes from (paper section or arXiv id).
    refines:
        Name of a backend this one is a *refinement* of: on identical
        prepared inputs this backend's bound is never larger, so its
        admitted set is a superset. ``None`` when no such relation is
        claimed. The cross-backend fuzz oracle enforces declared
        refinements.
    analyzer_kwargs:
        Extra keyword arguments applied on top of the caller's when
        constructing a :class:`FeasibilityAnalyzer`.
    """

    name: str
    summary: str
    citation: str
    refines: Optional[str] = None
    analyzer_kwargs: Mapping[str, Any] = field(default_factory=dict)

    def analyzer(
        self,
        streams: StreamSet,
        routing=None,
        **kwargs: Any,
    ) -> FeasibilityAnalyzer:
        """Construct an analyzer for ``streams`` under this backend.

        ``kwargs`` are the caller's extras (latency model, precomputed
        channels, residency margin...); the backend's own kwargs win on
        conflict so a backend cannot be accidentally un-configured.
        """
        merged = {**kwargs, **self.analyzer_kwargs, "backend": self.name}
        return FeasibilityAnalyzer(streams, routing, **merged)

    def analyzer_from_prepared(
        self,
        streams: StreamSet,
        channels,
        blockers,
        hp_sets,
        **kwargs: Any,
    ) -> FeasibilityAnalyzer:
        """`from_prepared` twin of :meth:`analyzer` (engine hot path)."""
        merged = {**kwargs, **self.analyzer_kwargs, "backend": self.name}
        return FeasibilityAnalyzer.from_prepared(
            streams, channels, blockers, hp_sets, **merged
        )


_REGISTRY: Dict[str, BoundBackend] = {}


def register(backend: BoundBackend, *, replace: bool = False) -> BoundBackend:
    """Add ``backend`` to the registry and return it.

    Re-registering an existing name is an error unless ``replace=True``
    (typo-guard: two modules silently fighting over a name would make
    verdicts depend on import order).
    """
    if not replace and backend.name in _REGISTRY:
        raise AnalysisError(
            f"backend {backend.name!r} is already registered"
        )
    if backend.refines is not None and backend.refines not in _REGISTRY:
        raise AnalysisError(
            f"backend {backend.name!r} refines unknown backend "
            f"{backend.refines!r}"
        )
    _REGISTRY[backend.name] = backend
    return backend


def get(name: str) -> BoundBackend:
    """Look up a backend by name; unknown names raise ``AnalysisError``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise AnalysisError(
            f"unknown analysis backend {name!r}; registered: "
            f"{', '.join(names())}"
        ) from None


def names() -> Tuple[str, ...]:
    """Registered backend names, registration order."""
    return tuple(_REGISTRY)


def resolve_name(name: Optional[str]) -> str:
    """Map an optional caller-supplied name to a validated backend name.

    ``None`` means "use the process default" (:func:`default_name`);
    anything else must be registered.
    """
    if name is None:
        return default_name()
    return get(name).name


def default_name() -> str:
    """The process-wide default backend name.

    Honours ``REPRO_ANALYSIS_BACKEND`` when set (and validates it — a
    typo'd override must fail loudly, not silently mean kim98);
    otherwise ``"kim98"``.
    """
    env = os.environ.get(ENV_VAR)
    if env:
        return get(env).name
    return "kim98"


@contextlib.contextmanager
def temporary_backend(backend: BoundBackend) -> Iterator[BoundBackend]:
    """Register ``backend`` for the duration of a ``with`` block.

    Test helper: conformance/fuzz tests inject synthetic backends (e.g. a
    deliberately unsound one to prove the oracle catches it) without
    leaking them into other tests.
    """
    register(backend)
    try:
        yield backend
    finally:
        _REGISTRY.pop(backend.name, None)


register(BoundBackend(
    name="kim98",
    summary="the paper's timing-diagram analysis (single Modify sweep)",
    citation="Kim, Kim, Hong & Lee, ICPP 1998",
))

register(BoundBackend(
    name="tighter",
    summary=("Kim98 + Modify fixpoint + FCFS equal-priority instance cap "
             "(never looser than kim98)"),
    citation="arXiv:1605.07888 (Nikolić & Indrusiak)",
    refines="kim98",
    analyzer_kwargs={"modify_fixpoint": True, "eqp_instance_cap": True},
))

register(BoundBackend(
    name="buffered",
    summary=("Kim98 with one extra flit slot of per-member buffering "
             "residency (strictly pessimistic)"),
    citation="arXiv:1606.02942 (Indrusiak, Burns & Nikolić)",
    analyzer_kwargs={"interference_margin": 1},
))
