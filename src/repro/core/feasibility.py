"""Feasibility testing: ``Cal_U`` and ``Determine-Feasibility``.

This is the paper's primary contribution packaged as a public API. Given a
set of periodic real-time message streams over a wormhole network with
flit-level preemptive priority arbitration, :class:`FeasibilityAnalyzer`
computes for every stream a transmission-delay upper bound ``U_i`` and
declares the set feasible iff ``U_i <= D_i`` for all streams.

Pipeline per stream (section 4):

1. construct ``HP_i`` (:mod:`repro.core.hpset`);
2. build the worst-case timing diagram for the direct interpretation
   (:mod:`repro.core.timing_diagram`);
3. if indirect elements exist, release unforwardable interference and
   re-compact (:mod:`repro.core.modify`);
4. ``U_i`` = time by which the result row's free slots accumulate to the
   no-load network latency ``L_i``.

A computed ``U_i`` of ``-1`` means the bound exceeded the analysis horizon
(the stream's deadline, by default); :meth:`FeasibilityAnalyzer.upper_bound`
can search a larger horizon by doubling, which the evaluation harness uses
because the paper's simulation study compares ``U`` against *measured*
latency even when ``U`` exceeds the deadline.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Set, Tuple

from ..errors import AnalysisError
from ..obs.trace import active as _trace_active, span as _span
from ..topology.base import Channel
from ..topology.routing import RoutingAlgorithm
from .hpset import HPSet, build_all_hp_sets, direct_blockers, stream_channels
from .latency import LatencyModel, NoLoadLatency
from .modify import modify_diagram
from .streams import MessageStream, StreamSet
from .timing_diagram import TimingDiagram, generate_init_diagram

__all__ = ["StreamVerdict", "FeasibilityReport", "FeasibilityAnalyzer"]


@dataclass(frozen=True)
class StreamVerdict:
    """Per-stream outcome of the feasibility analysis."""

    stream: MessageStream
    #: Delay upper bound; ``-1`` when it exceeded the analysis horizon.
    upper_bound: int
    #: Horizon the diagram was evaluated over.
    horizon: int
    #: ``True`` iff ``0 < upper_bound <= deadline``.
    feasible: bool
    #: Instances removed by ``Modify_Diagram`` (stream id -> indices).
    removed_instances: Mapping[int, FrozenSet[int]] = field(
        default_factory=dict
    )
    #: Name of the bound backend that produced this verdict (see
    #: :mod:`repro.core.backends`).
    backend: str = "kim98"

    @property
    def slack(self) -> Optional[int]:
        """Deadline minus bound, or ``None`` when the bound is unknown."""
        if self.upper_bound < 0:
            return None
        return self.stream.deadline - self.upper_bound


@dataclass(frozen=True)
class FeasibilityReport:
    """Outcome of ``Determine-Feasibility`` over a whole stream set."""

    verdicts: Mapping[int, StreamVerdict]
    success: bool
    #: Per-stream bound provenance (see :mod:`repro.obs.provenance`);
    #: only populated by ``determine_feasibility(explain=True)``.
    explanations: Optional[Mapping[int, object]] = None

    @classmethod
    def trivial(cls) -> "FeasibilityReport":
        """Report for an empty stream set: vacuously feasible."""
        return cls(verdicts={}, success=True)

    def upper_bounds(self) -> Dict[int, int]:
        """Return ``stream_id -> U`` for every analysed stream."""
        return {i: v.upper_bound for i, v in self.verdicts.items()}

    def infeasible_ids(self) -> Tuple[int, ...]:
        """Return the ids of streams that failed the test, ascending."""
        return tuple(
            sorted(i for i, v in self.verdicts.items() if not v.feasible)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        word = "success" if self.success else "fail"
        return f"FeasibilityReport({word}, U={self.upper_bounds()})"


class FeasibilityAnalyzer:
    """Delay-upper-bound analysis for a stream set on a routed network.

    Parameters
    ----------
    streams:
        The message streams under test. Streams without an explicit
        ``latency`` get ``L_i`` from ``latency_model`` over their route.
    routing:
        Deterministic routing function (e.g. :class:`~repro.topology.routing.XYRouting`
        on the paper's mesh). May be omitted when both ``channels`` and all
        stream latencies are supplied explicitly.
    latency_model:
        No-load latency model; defaults to the paper's ``L = hops + C - 1``.
    channels:
        Optional pre-computed channel sets per stream id (overrides routes).
    hp_override:
        Optional explicit HP sets (stream id -> :class:`HPSet`). Used to
        reproduce the paper's section 4.4 example verbatim, whose printed
        ``HP_3`` deviates from the path-overlap rule (see DESIGN.md), and
        generally useful for what-if analysis.
    use_modify:
        Apply ``Modify_Diagram`` for indirect elements (paper behaviour).
        ``False`` keeps the pessimistic direct-only diagram (E-AB1 ablation).
    modify_fixpoint:
        Iterate the release sweep to a fixpoint instead of the paper's
        single BFS pass.
    modify_granularity:
        ``"instance"`` (default, matches the paper's worked example) or
        ``"slot"`` (the paper's literal per-slot prose) — see
        :mod:`repro.core.modify`. Slot granularity is never looser.
    residency_margin:
        Extra slots charged per instance of every *equal-priority* HP
        member. The paper's analysis charges an interfering instance
        exactly its ``C`` channel slots, which is correct for
        higher-priority preemption (separate VCs) but not for
        equal-priority contention: equal-priority messages share one VC
        per port, and a worm owns each VC from header arrival until its
        tail drains — one slot longer than its channel occupancy. The
        reproduction observed exactly +1-slot bound violations from this
        effect (EXPERIMENTS.md, finding F-4); ``residency_margin=1``
        eliminated every observed violation. Default 0 = the paper's
        analysis, empirically unsound by one slot under equal-priority
        contention.
    interference_margin:
        Extra slots charged per instance of **every** HP member — the
        ``buffered`` backend's generalisation of ``residency_margin`` to
        all interference: router buffering and backpressure keep a worm
        resident on contested channels beyond its nominal ``C`` slots
        (the effect arXiv:1606.02942 analyses). Strictly pessimistic, so
        bounds grow monotonically with the margin. Default 0.
    eqp_instance_cap:
        Apply the ``tighter`` backend's FCFS refinement: a *direct*
        equal-priority member can block the analysed stream at most once
        per shared channel, because equal-priority arbitration is
        first-come-first-served on message release time — once the
        analysed header waits at a channel, a later-released instance
        cannot overtake it, and closure feasibility (``U <= T``) rules
        out backlogged earlier-released instances. A member only
        qualifies when no third stream at the same priority shares any
        of its channels: chain-mediated re-blocking through an
        equal-priority convoy defeats the argument otherwise. Qualified
        members have their window instances beyond the cap discharged
        from the diagram before any release decision. Default off (= the
        paper's charging).
    backend:
        Label stamped into every :class:`StreamVerdict` (reports carry it
        through the service and CLI). Purely descriptive.
    """

    #: Optional per-phase timing sink (any object with a mutable
    #: ``diagram_seconds`` attribute, e.g. the admission engine's
    #: :class:`~repro.service.engine.EngineStats`): when set,
    #: :meth:`cal_u` accumulates the wall time spent building timing
    #: diagrams into it. Class-level default keeps the hot path to a
    #: single attribute test when unused.
    timing_sink = None

    def __init__(
        self,
        streams: StreamSet,
        routing: Optional[RoutingAlgorithm] = None,
        *,
        latency_model: Optional[LatencyModel] = None,
        channels: Optional[Mapping[int, FrozenSet[Channel]]] = None,
        hp_override: Optional[Mapping[int, HPSet]] = None,
        use_modify: bool = True,
        modify_fixpoint: bool = False,
        modify_granularity: str = "instance",
        residency_margin: int = 0,
        interference_margin: int = 0,
        eqp_instance_cap: bool = False,
        backend: str = "kim98",
    ):
        if residency_margin < 0:
            raise AnalysisError(
                f"residency_margin must be >= 0, got {residency_margin}"
            )
        if interference_margin < 0:
            raise AnalysisError(
                f"interference_margin must be >= 0, got {interference_margin}"
            )
        self.residency_margin = residency_margin
        self.interference_margin = interference_margin
        self.eqp_instance_cap = eqp_instance_cap
        self.backend = backend
        if len(streams) == 0:
            raise AnalysisError("cannot analyse an empty stream set")
        if routing is None and channels is None:
            raise AnalysisError("pass 'routing' and/or 'channels'")
        self.routing = routing
        self.latency_model = latency_model or NoLoadLatency()
        self.use_modify = use_modify
        self.modify_fixpoint = modify_fixpoint
        self.modify_granularity = modify_granularity

        if channels is None:
            assert routing is not None
            channels = stream_channels(streams, routing)
        self.channels: Mapping[int, FrozenSet[Channel]] = dict(channels)

        # Resolve latencies up front so every stream carries its L_i.
        resolved = StreamSet()
        for s in streams:
            if s.latency is None:
                hops = len(self.channels[s.stream_id])
                resolved.add(s.with_latency(self.latency_model.latency(s, hops)))
            else:
                resolved.add(s)
        self.streams = resolved

        self.blockers = direct_blockers(self.streams, self.channels)
        if hp_override is not None:
            unknown = set(hp_override) - set(self.streams.ids())
            if unknown:
                raise AnalysisError(
                    f"hp_override names unknown streams {sorted(unknown)}"
                )
            base = build_all_hp_sets(self.streams, channels=self.channels)
            base.update(
                {i: hp.without_self() for i, hp in hp_override.items()}
            )
            self.hp_sets: Dict[int, HPSet] = base
        else:
            self.hp_sets = build_all_hp_sets(
                self.streams, channels=self.channels
            )

    # ------------------------------------------------------------------ #
    # Cache-friendly construction (incremental admission engine)
    # ------------------------------------------------------------------ #

    @classmethod
    def from_prepared(
        cls,
        streams: StreamSet,
        channels: Mapping[int, FrozenSet[Channel]],
        blockers: Mapping[int, Tuple[int, ...]],
        hp_sets: Mapping[int, HPSet],
        *,
        routing: Optional[RoutingAlgorithm] = None,
        latency_model: Optional[LatencyModel] = None,
        use_modify: bool = True,
        modify_fixpoint: bool = False,
        modify_granularity: str = "instance",
        residency_margin: int = 0,
        interference_margin: int = 0,
        eqp_instance_cap: bool = False,
        backend: str = "kim98",
    ) -> "FeasibilityAnalyzer":
        """Build an analyzer from precomputed per-stream structures.

        The normal constructor derives routes, the direct-blocking relation
        and every HP set from scratch — O(n^2) work that an *incremental*
        caller (the channel-broker engine in :mod:`repro.service.engine`)
        already maintains between requests. This entry point adopts those
        structures verbatim so the only remaining cost of a verdict is
        :meth:`cal_u` itself, and is guaranteed to produce bit-identical
        results to the normal constructor given equal inputs.

        ``streams`` must already carry resolved latencies (every
        ``MessageStream.latency`` set); ``channels``, ``blockers`` and
        ``hp_sets`` must cover exactly the ids in ``streams``.
        """
        if len(streams) == 0:
            raise AnalysisError("cannot analyse an empty stream set")
        ids = set(streams.ids())
        for name, mapping in (
            ("channels", channels),
            ("blockers", blockers),
            ("hp_sets", hp_sets),
        ):
            missing = ids - set(mapping)
            if missing:
                raise AnalysisError(
                    f"from_prepared: {name} misses stream ids "
                    f"{sorted(missing)}"
                )
        unresolved = [s.stream_id for s in streams if s.latency is None]
        if unresolved:
            raise AnalysisError(
                f"from_prepared: streams {unresolved} have no resolved "
                "latency"
            )
        if residency_margin < 0:
            raise AnalysisError(
                f"residency_margin must be >= 0, got {residency_margin}"
            )
        if interference_margin < 0:
            raise AnalysisError(
                f"interference_margin must be >= 0, got {interference_margin}"
            )
        self = cls.__new__(cls)
        self.residency_margin = residency_margin
        self.interference_margin = interference_margin
        self.eqp_instance_cap = eqp_instance_cap
        self.backend = backend
        self.routing = routing
        self.latency_model = latency_model or NoLoadLatency()
        self.use_modify = use_modify
        self.modify_fixpoint = modify_fixpoint
        self.modify_granularity = modify_granularity
        self.channels = dict(channels)
        self.streams = streams
        self.blockers = dict(blockers)
        self.hp_sets = dict(hp_sets)
        return self

    # ------------------------------------------------------------------ #
    # Per-stream bound (Cal_U)
    # ------------------------------------------------------------------ #

    def diagram_for(
        self,
        stream_id: int,
        horizon: Optional[int] = None,
        *,
        apply_modify: Optional[bool] = None,
    ) -> Tuple[TimingDiagram, Dict[int, Set[int]]]:
        """Return the (final) timing diagram and removed instances for a stream.

        ``horizon`` defaults to the stream's deadline; ``apply_modify``
        defaults to the analyzer-wide setting.
        """
        stream = self.streams[stream_id]
        dtime = int(horizon) if horizon is not None else stream.deadline
        hp = self.hp_sets[stream_id]
        if apply_modify is None:
            apply_modify = self.use_modify
        effective = self._effective_streams(stream)
        seeds = self._cap_seeds(stream, dtime)
        if apply_modify and hp.indirect_ids():
            return modify_diagram(
                stream,
                hp,
                effective,
                self.blockers,
                dtime,
                fixpoint=self.modify_fixpoint,
                granularity=self.modify_granularity,
                initial_removed=seeds,
            )
        rows = tuple(
            sorted(
                (effective[e.stream_id] for e in hp
                 if e.stream_id != stream_id),
                key=lambda s: (-s.priority, s.stream_id),
            )
        )
        return (
            generate_init_diagram(stream_id, rows, dtime, removed=seeds),
            {k: set(v) for k, v in seeds.items()} if seeds else {},
        )

    def _effective_streams(self, owner: MessageStream) -> StreamSet:
        """Return the stream set the owner's diagram is built from.

        With a positive ``residency_margin``, equal-priority members have
        their length raised by the margin — charging the extra VC-residency
        slot(s) a same-priority worm costs beyond its channel occupancy.
        A positive ``interference_margin`` (the ``buffered`` backend)
        additionally raises **every** member's length, charging the
        buffering/backpressure residency on contested channels; the two
        margins stack for equal-priority members.
        """
        if self.residency_margin == 0 and self.interference_margin == 0:
            return self.streams
        hp = self.hp_sets[owner.stream_id]
        inflate: Dict[int, int] = {}
        for e in hp:
            if e.stream_id == owner.stream_id:
                continue
            margin = self.interference_margin
            if (self.residency_margin
                    and self.streams[e.stream_id].priority == owner.priority):
                margin += self.residency_margin
            if margin:
                inflate[e.stream_id] = margin
        if not inflate:
            return self.streams
        effective = StreamSet()
        for s in self.streams:
            margin = inflate.get(s.stream_id)
            if margin:
                effective.add(
                    dataclasses.replace(s, length=s.length + margin)
                )
            else:
                effective.add(s)
        return effective

    def _cap_seeds(
        self, owner: MessageStream, dtime: int
    ) -> Optional[Dict[int, Set[int]]]:
        """Window instances discharged by the FCFS equal-priority cap.

        For each *qualified* direct equal-priority member (no third stream
        at the owner's priority shares any of its channels), every window
        instance beyond one per shared channel is discharged: FCFS
        arbitration on release time means a later-released equal-priority
        instance cannot overtake the owner's waiting header, and closure
        feasibility rules out backlog, so at most one instance can hold
        each shared channel when the header arrives there.
        """
        if not self.eqp_instance_cap:
            return None
        sid = owner.stream_id
        hp = self.hp_sets[sid]
        own_channels = self.channels[sid]
        seeds: Dict[int, Set[int]] = {}
        for e in hp:
            b = e.stream_id
            if b == sid or not e.is_direct:
                continue
            member = self.streams[b]
            if member.priority != owner.priority:
                continue
            if any(
                k != sid and self.streams[k].priority == owner.priority
                for k in self.blockers[b]
            ):
                continue  # an equal-priority convoy defeats the argument
            cap = len(own_channels & self.channels[b])
            n_windows = -(-dtime // member.period)  # ceil
            if cap < n_windows:
                seeds[b] = set(range(cap, n_windows))
        return seeds or None

    def cal_u(
        self, stream_id: int, horizon: Optional[int] = None
    ) -> StreamVerdict:
        """Compute ``U`` for one stream over one horizon (the paper's
        ``Cal_U``). Returns a verdict with ``upper_bound == -1`` when the
        bound exceeds the horizon."""
        stream = self.streams[stream_id]
        # Called once per stream per horizon: guard the span with an
        # explicit active() check so the disabled path costs one call and
        # a None test instead of a nullcontext enter/exit.
        tr = _trace_active()
        if horizon is None and tr is None:
            return self._cal_u_adaptive(stream)
        dtime = int(horizon) if horizon is not None else stream.deadline
        if tr is not None:
            tr.begin("cal_u", "analysis", stream=stream_id, horizon=dtime)
        try:
            sink = self.timing_sink
            if sink is not None:
                t0 = time.perf_counter()
            diagram, removed = self.diagram_for(stream_id, dtime)
            if sink is not None:
                sink.diagram_seconds += time.perf_counter() - t0
            assert stream.latency is not None
            u = diagram.upper_bound(stream.latency)
            if tr is not None:
                tr.instant("cal_u.result", "analysis", stream=stream_id, u=u)
        finally:
            if tr is not None:
                tr.end("cal_u", "analysis")
        return StreamVerdict(
            stream=stream,
            upper_bound=u,
            horizon=dtime,
            feasible=0 < u <= stream.deadline,
            removed_instances={
                k: frozenset(v) for k, v in removed.items()
            },
            backend=self.backend,
        )

    def _cal_u_adaptive(self, stream: MessageStream) -> StreamVerdict:
        """Deadline-horizon verdict computed over the smallest safe prefix.

        The diagram construction is prefix-stable: truncating the horizon
        truncates period windows on the right, and the greedy fill claims
        slots left to right against a busy-from-above mask that itself
        only depends on the prefix — so the cells in ``[1, h]`` are
        identical for every horizon ``>= h``. A bound found at a shorter
        horizon therefore equals the deadline-horizon bound provided
        every window that can still disturb slots ``<= U`` closes within
        the horizon: trivially true for direct-only HP sets (guard 0),
        and within the max member period for ``Modify_Diagram`` release
        decisions (the same guard :meth:`upper_bound` applies). Since
        deadlines routinely dwarf the bound, starting from the
        busy-window estimate instead of the deadline cuts the dominant
        admission-path cost; the returned verdict is bit-identical to
        the plain run except that ``removed_instances`` only covers the
        evaluated prefix (no release decision past ``U + guard`` can
        exist within it anyway).
        """
        sid = stream.stream_id
        deadline = stream.deadline
        hp = self.hp_sets[sid]
        assert stream.latency is not None
        guard = 0
        if self.use_modify and hp.indirect_ids():
            guard = max(
                (self.streams[e.stream_id].period for e in hp
                 if e.stream_id != sid),
                default=0,
            )
        effective = self._effective_streams(stream)
        members = [effective[e.stream_id] for e in hp
                   if e.stream_id != sid]
        util = sum(m.length / m.period for m in members)
        h = deadline
        if util < 0.999:
            total_c = sum(m.length for m in members)
            est = int(
                (stream.latency + total_c) / (1.0 - util)
            ) + guard + 1
            est = max(stream.latency, est, 1)
            # Round up to a power of two: the per-(period, horizon)
            # window arrays are memoised, and raw estimates would give
            # every call its own cold cache key.
            h = min(deadline, 1 << (est - 1).bit_length())
        sink = self.timing_sink
        while True:
            if sink is not None:
                t0 = time.perf_counter()
            diagram, removed = self.diagram_for(sid, h)
            if sink is not None:
                sink.diagram_seconds += time.perf_counter() - t0
            u = diagram.upper_bound(stream.latency)
            if h >= deadline or (u > 0 and u + guard <= h):
                break
            h = min(max(h * 2, h + guard), deadline)
        return StreamVerdict(
            stream=stream,
            upper_bound=u,
            horizon=deadline,
            feasible=0 < u <= deadline,
            removed_instances={
                k: frozenset(v) for k, v in removed.items()
            },
            backend=self.backend,
        )

    def upper_bound(
        self,
        stream_id: int,
        *,
        max_horizon: int = 1 << 20,
    ) -> int:
        """Search for ``U`` beyond the deadline by horizon doubling.

        Returns ``-1`` if no bound is found within ``max_horizon`` slots
        (interference from the HP set saturates the path indefinitely).
        """
        stream = self.streams[stream_id]
        assert stream.latency is not None
        hp = self.hp_sets[stream_id]
        # Instances whose window straddles the horizon are truncated, which
        # can perturb Modify_Diagram release decisions near the boundary.
        # Truncation effects only propagate forward in time, so a bound is
        # horizon-independent once every window containing a slot <= U closes
        # before the horizon: require U + max member period <= horizon.
        guard = max(
            (self.streams[e.stream_id].period for e in hp
             if e.stream_id != stream_id),
            default=0,
        )
        # Busy-window estimate: the interference of the HP set within t is
        # at most sum(ceil(t/T_k) * C_k) <= t * util + sum(C_k), so
        # t = (L + sum C) / (1 - util) slots always contain L free slots
        # when util < 1. Starting there (plus the guard) makes the search
        # single-shot for every non-saturated stream instead of doubling
        # its way up from the deadline.
        effective = self._effective_streams(stream)
        members = [effective[e.stream_id] for e in hp
                   if e.stream_id != stream_id]
        util = sum(m.length / m.period for m in members)
        total_c = sum(m.length for m in members)
        assert stream.latency is not None
        if util < 0.999:
            estimate = int((stream.latency + total_c) / (1.0 - util)) + guard + 1
        else:
            estimate = max_horizon
        horizon = min(
            max(stream.deadline, stream.latency, estimate, 1), max_horizon
        )
        while True:
            verdict = self.cal_u(stream_id, horizon)
            u = verdict.upper_bound
            if u > 0 and (u + guard <= horizon or horizon >= max_horizon):
                return u
            if horizon >= max_horizon:
                return -1
            horizon = min(horizon * 2, max_horizon)

    # ------------------------------------------------------------------ #
    # Whole-set test (Determine-Feasibility)
    # ------------------------------------------------------------------ #

    def determine_feasibility(
        self, *, explain: bool = False
    ) -> FeasibilityReport:
        """Run the paper's ``Determine-Feasibility`` over all streams.

        Streams are processed from the highest priority level downwards
        (the ``GList`` loop); the report is a success iff every stream's
        bound exists within its deadline. With ``explain=True`` the report
        additionally carries full per-stream bound provenance (see
        :mod:`repro.obs.provenance`) — an offline/debug path that roughly
        doubles the analysis cost.
        """
        with _span(
            "determine_feasibility", "analysis", n=len(self.streams),
            explain=explain,
        ):
            verdicts: Dict[int, StreamVerdict] = {}
            for stream in self.streams.sorted_by_priority():
                verdicts[stream.stream_id] = self.cal_u(stream.stream_id)
            success = all(v.feasible for v in verdicts.values())
            explanations = None
            if explain:
                # Local import: provenance depends on this module.
                from ..obs.provenance import explain_report

                explanations = explain_report(self)
        return FeasibilityReport(
            verdicts=verdicts, success=success, explanations=explanations
        )

    def all_upper_bounds(
        self, *, max_horizon: int = 1 << 20
    ) -> Dict[int, int]:
        """Return ``stream_id -> U`` searching past deadlines if needed."""
        return {
            s.stream_id: self.upper_bound(
                s.stream_id, max_horizon=max_horizon
            )
            for s in self.streams.sorted_by_priority()
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FeasibilityAnalyzer(n_streams={len(self.streams)}, "
            f"use_modify={self.use_modify})"
        )
