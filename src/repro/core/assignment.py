"""Priority assignment: completing the paper's workflow.

The paper takes the priority value ``P_i`` of every stream as an input
("representing the importance of the message stream") and studies how many
*levels* are needed for tight bounds — but a system integrator must still
pick the priorities. This module supplies the classical assignment
policies with the paper's feasibility test as the underlying oracle:

* :func:`rate_monotonic_assignment` — shorter period = higher priority;
* :func:`deadline_monotonic_assignment` — shorter deadline = higher
  priority (optimal for single resources with D <= T, not for networks);
* :func:`audsley_assignment` — Audsley's optimal priority assignment
  (OPA): build the order bottom-up, at each (lowest remaining) level
  keeping any stream whose bound fits its deadline when every other
  unassigned stream is assumed higher-priority. OPA is optimal whenever
  the schedulability test is independent of the relative order *above*
  the analysed stream; the paper's HP-set construction satisfies that for
  direct blocking (all higher streams interfere regardless of their
  mutual order), so OPA with this oracle is a principled — though, given
  indirect chains, not provably optimal — search.

All functions return a new :class:`~repro.core.streams.StreamSet` with
distinct priorities ``n .. 1`` (highest first), or group priorities into
``levels`` classes when requested (the paper's tables use far fewer levels
than streams; grouping trades analysis tightness for VC cost exactly as
section 5 discusses).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import AnalysisError
from ..topology.routing import RoutingAlgorithm
from .feasibility import FeasibilityAnalyzer
from .streams import MessageStream, StreamSet

__all__ = [
    "rate_monotonic_assignment",
    "deadline_monotonic_assignment",
    "audsley_assignment",
    "group_into_levels",
]


def _with_priorities(
    streams: StreamSet, priorities: Dict[int, int]
) -> StreamSet:
    out = StreamSet()
    for s in streams:
        out.add(dataclasses.replace(s, priority=priorities[s.stream_id]))
    return out


def _ranked_assignment(
    streams: StreamSet, key: Callable[[MessageStream], Tuple]
) -> StreamSet:
    ordered = sorted(streams, key=key)
    n = len(ordered)
    priorities = {
        s.stream_id: n - rank for rank, s in enumerate(ordered)
    }
    return _with_priorities(streams, priorities)


def rate_monotonic_assignment(streams: StreamSet) -> StreamSet:
    """Assign distinct priorities by period (shortest period highest)."""
    if len(streams) == 0:
        raise AnalysisError("empty stream set")
    return _ranked_assignment(streams, lambda s: (s.period, s.stream_id))


def deadline_monotonic_assignment(streams: StreamSet) -> StreamSet:
    """Assign distinct priorities by deadline (shortest deadline highest)."""
    if len(streams) == 0:
        raise AnalysisError("empty stream set")
    return _ranked_assignment(streams, lambda s: (s.deadline, s.stream_id))


def audsley_assignment(
    streams: StreamSet,
    routing: RoutingAlgorithm,
    *,
    use_modify: bool = True,
    residency_margin: int = 0,
) -> Optional[StreamSet]:
    """Audsley's optimal priority assignment with the paper's test.

    Levels are filled from the bottom: at each step, try every unassigned
    stream at the lowest remaining level (all other unassigned streams
    assumed strictly higher); the first whose bound fits its deadline is
    fixed there. Returns the assigned stream set, or ``None`` when some
    level admits no stream (the set is unschedulable under *any* priority
    order this test can certify).
    """
    if len(streams) == 0:
        raise AnalysisError("empty stream set")
    unassigned: List[MessageStream] = list(streams)
    fixed: Dict[int, int] = {}
    n = len(unassigned)
    for level in range(1, n + 1):  # 1 = lowest priority
        placed = None
        for candidate in sorted(
            unassigned, key=lambda s: (-s.deadline, s.stream_id)
        ):
            trial_prios = dict(fixed)
            trial_prios[candidate.stream_id] = level
            for other in unassigned:
                if other.stream_id != candidate.stream_id:
                    trial_prios[other.stream_id] = level + 1
            trial = _with_priorities(streams, trial_prios)
            analyzer = FeasibilityAnalyzer(
                trial, routing,
                use_modify=use_modify,
                residency_margin=residency_margin,
            )
            verdict = analyzer.cal_u(candidate.stream_id)
            if verdict.feasible:
                placed = candidate
                break
        if placed is None:
            return None
        fixed[placed.stream_id] = level
        unassigned = [
            s for s in unassigned if s.stream_id != placed.stream_id
        ]
    return _with_priorities(streams, fixed)


def group_into_levels(streams: StreamSet, levels: int) -> StreamSet:
    """Quantise distinct priorities into ``levels`` classes.

    Keeps the relative order of the existing priorities and maps them onto
    ``1..levels`` by rank quantiles — the knob the paper's section 5 turns
    (few VCs = few levels = looser bounds). ``levels >= number of
    distinct priorities`` is a no-op re-labelling.
    """
    if levels < 1:
        raise AnalysisError(f"levels must be >= 1, got {levels}")
    if len(streams) == 0:
        raise AnalysisError("empty stream set")
    ordered = sorted(streams, key=lambda s: (s.priority, s.stream_id))
    n = len(ordered)
    priorities: Dict[int, int] = {}
    for rank, s in enumerate(ordered):
        # ranks 0..n-1 -> classes 1..levels, evenly.
        priorities[s.stream_id] = min(levels, 1 + rank * levels // n)
    return _with_priorities(streams, priorities)
