"""Lumped busy-window bound: the analytical baseline the paper improves on.

Classical fixed-priority response-time analysis (the machinery behind
Mutka's rate-monotonic approach that the paper's related-work section
criticises) bounds a stream's delay by iterating

    U^(0)   = L_i
    U^(n+1) = L_i + sum_k ceil(U^(n) / T_k) * C_k        over k in HP_i

to a fixed point. Compared with the paper's timing-diagram method this is
*lumped*: it (a) charges every HP element its full demand regardless of
window confinement (an instance of a stream with period T can only occupy
slots inside its own T-window, which the diagram respects), and (b) cannot
release indirect interference the way ``Modify_Diagram`` does. Both effects
make the busy-window bound never tighter than the diagram bound — a claim
``tests/test_busy_window.py`` checks property-style and the
``bench_baseline_bounds`` benchmark quantifies.

Two interference accountings are offered:

``include_indirect=True`` (default, safe)
    every HP element counts, direct or indirect;
``include_indirect=False`` (unsafe, for comparison)
    only direct elements count — this mirrors naively porting processor
    response-time analysis to a network, and the benchmark shows it can
    *under*-estimate (unsound), reproducing the paper's argument that
    blocking chains must not be ignored.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Dict, Mapping, Optional

from ..errors import AnalysisError
from .hpset import HPSet
from .streams import MessageStream, StreamSet

__all__ = ["BusyWindowResult", "busy_window_bound", "busy_window_bounds"]


@dataclass(frozen=True)
class BusyWindowResult:
    """Outcome of the busy-window iteration for one stream."""

    stream_id: int
    #: The fixed point, or ``-1`` when the iteration diverged past the cap.
    bound: int
    iterations: int
    converged: bool


def busy_window_bound(
    stream: MessageStream,
    hp: HPSet,
    streams: StreamSet,
    *,
    include_indirect: bool = True,
    max_bound: int = 1 << 22,
    max_iterations: int = 10_000,
) -> BusyWindowResult:
    """Iterate the lumped interference equation for one stream.

    The iteration is monotone non-decreasing from ``L_i``, so it either
    reaches a fixed point or crosses ``max_bound`` (divergence — total HP
    utilization at or above 1).
    """
    if stream.latency is None:
        raise AnalysisError(
            f"stream {stream.stream_id} has no latency; resolve L_i first"
        )
    members = [
        streams[e.stream_id]
        for e in hp
        if e.stream_id != stream.stream_id
        and (include_indirect or e.is_direct)
    ]
    u = stream.latency
    for n in range(1, max_iterations + 1):
        interference = sum(
            ceil(u / m.period) * m.length for m in members
        )
        nxt = stream.latency + interference
        if nxt == u:
            return BusyWindowResult(stream.stream_id, u, n, True)
        if nxt > max_bound:
            return BusyWindowResult(stream.stream_id, -1, n, False)
        u = nxt
    return BusyWindowResult(  # pragma: no cover - max_iterations guard
        stream.stream_id, -1, max_iterations, False
    )


def busy_window_bounds(
    streams: StreamSet,
    hp_sets: Mapping[int, HPSet],
    *,
    include_indirect: bool = True,
    max_bound: int = 1 << 22,
) -> Dict[int, BusyWindowResult]:
    """Run the busy-window iteration for every stream."""
    out: Dict[int, BusyWindowResult] = {}
    for s in streams.sorted_by_priority():
        hp = hp_sets.get(s.stream_id)
        if hp is None:
            raise AnalysisError(f"no HP set for stream {s.stream_id}")
        out[s.stream_id] = busy_window_bound(
            s, hp, streams,
            include_indirect=include_indirect, max_bound=max_bound,
        )
    return out
