"""Host-processor admission control (the paper's Fig. 1 role).

In the system model a dedicated *host processor* owns all traffic
information, performs schedulability testing when real-time jobs arrive, and
only downloads a job when every one of its message streams is guaranteed.
:class:`AdmissionController` packages the feasibility analysis in that
interactive form: streams are *requested* one at a time (or in job-sized
batches) and a request is admitted only if the whole set — already-admitted
streams plus the request — remains feasible.

This is the natural deployment surface of the paper's algorithm and is used
by ``examples/admission_control.py`` (experiment E-F1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import AnalysisError, StreamError
from ..topology.routing import RoutingAlgorithm
from .feasibility import FeasibilityAnalyzer, FeasibilityReport
from .latency import LatencyModel, NoLoadLatency
from .streams import MessageStream, StreamSet

__all__ = ["AdmissionDecision", "AdmissionController"]


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission request."""

    admitted: bool
    #: Feasibility report of the trial set (admitted set + request).
    report: FeasibilityReport
    #: Ids of the streams whose bounds broke, if rejected.
    violations: Tuple[int, ...]


class AdmissionController:
    """Incremental admission control over a routed network.

    Parameters
    ----------
    routing:
        Deterministic routing function of the managed network.
    latency_model:
        No-load latency model (paper default).
    use_modify:
        Whether admitted-set analysis applies ``Modify_Diagram``.
    """

    def __init__(
        self,
        routing: RoutingAlgorithm,
        *,
        latency_model: Optional[LatencyModel] = None,
        use_modify: bool = True,
    ):
        self.routing = routing
        self.latency_model = latency_model or NoLoadLatency()
        self.use_modify = use_modify
        self._admitted = StreamSet()
        self._next_id = 0

    # ------------------------------------------------------------------ #

    @property
    def admitted(self) -> StreamSet:
        """The currently admitted stream set (a live view; do not mutate)."""
        return self._admitted

    def fresh_id(self) -> int:
        """Return a never-before-seen stream id for building request streams.

        The counter is monotonic over the controller's lifetime: an id that
        was admitted (or merely requested) and later released is **never**
        reissued, so a decision that still references it cannot be confused
        with a newer stream.
        """
        while self._next_id in self._admitted:  # explicit client-chosen ids
            self._next_id += 1
        nid = self._next_id
        self._next_id += 1
        return nid

    def _reserve_ids(self, requests: Sequence[MessageStream]) -> None:
        """Advance the id counter past every requested id (no reuse)."""
        top = max(r.stream_id for r in requests)
        if top >= self._next_id:
            self._next_id = top + 1

    def _analyze(self, streams: StreamSet) -> FeasibilityReport:
        analyzer = FeasibilityAnalyzer(
            streams,
            self.routing,
            latency_model=self.latency_model,
            use_modify=self.use_modify,
        )
        return analyzer.determine_feasibility()

    # ------------------------------------------------------------------ #

    def try_admit(
        self, requests: MessageStream | Iterable[MessageStream]
    ) -> AdmissionDecision:
        """Test a request (stream or job batch) and admit it if feasible.

        Rejection leaves the admitted set untouched. Admission of a new
        stream can never be granted at the expense of an existing guarantee:
        the trial analysis covers the *union*, so if any already-admitted
        stream's bound breaks, the request is rejected.
        """
        if isinstance(requests, MessageStream):
            requests = (requests,)
        requests = tuple(requests)
        if not requests:
            raise AnalysisError("empty admission request")
        self._reserve_ids(requests)
        trial = StreamSet(self._admitted)
        for r in requests:
            trial.add(r)
        report = self._analyze(trial)
        violations = report.infeasible_ids()
        if report.success:
            for r in requests:
                self._admitted.add(r)
            return AdmissionDecision(True, report, ())
        return AdmissionDecision(False, report, violations)

    def release(self, stream_ids: int | Iterable[int]) -> None:
        """Remove streams (a finished job's traffic) from the admitted set.

        The whole release is validated up front: if any id is not currently
        admitted, a :class:`StreamError` naming it is raised and *nothing*
        is removed.
        """
        if isinstance(stream_ids, int):
            stream_ids = (stream_ids,)
        ids = tuple(dict.fromkeys(stream_ids))
        unknown = sorted(sid for sid in ids if sid not in self._admitted)
        if unknown:
            raise StreamError(
                f"cannot release stream id(s) {unknown}: not admitted"
            )
        for sid in ids:
            self._admitted.remove(sid)

    def current_report(self) -> FeasibilityReport:
        """Re-run the analysis over the currently admitted set.

        An empty admitted set is vacuously feasible and yields a trivial
        success report (no verdicts).
        """
        if len(self._admitted) == 0:
            return FeasibilityReport.trivial()
        return self._analyze(self._admitted)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AdmissionController(admitted={len(self._admitted)})"
