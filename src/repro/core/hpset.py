"""HP-set construction: which streams can delay a given stream, and how.

In a preemptive, prioritised wormhole network a message is delayed only by
messages of equal or higher priority that use part of its path (**direct
blocking**), or by higher-priority messages that delay such messages in turn
(**indirect blocking**, through a *blocking chain* of intermediate streams).
Section 4.1 of the paper builds, for every stream ``M_j``, the set ``HP_j``
of affecting streams, each entry marked ``DIRECT`` or ``INDIRECT``; indirect
entries carry the set of intermediate streams (the ``IN`` field) appearing on
any blocking chain.

Rules implemented here (validated against the paper's Fig. 3 and the worked
example of section 4.4 — see DESIGN.md):

* ``M_k`` is a **direct** element of ``HP_j`` iff ``k != j``,
  ``P_k >= P_j`` (equal-priority streams are "mutually influential", Fig. 3)
  and the routes of ``M_k`` and ``M_j`` share at least one directed channel.
* ``M_k`` is an **indirect** element of ``HP_j`` iff it is not direct and
  there is a chain ``M_j -> r_1 -> ... -> M_k`` in the direct-blocking
  relation (each step: the left stream is directly blocked by the right
  one). The ``IN`` set of the entry contains every stream that lies on the
  interior of *any* such chain.
* The paper's ``HP_j`` also lists ``M_j`` itself (removed again on entry to
  ``Cal_U``); we keep that behaviour behind ``include_self`` for exactness
  but default to the cleaner self-free set.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    Mapping,
    Optional,
    Tuple,
)

from ..errors import AnalysisError
from ..obs.trace import active as _trace_active, span as _span
from ..topology.base import Channel
from ..topology.routing import RoutingAlgorithm
from .streams import MessageStream, StreamSet

__all__ = [
    "BlockingMode",
    "HPEntry",
    "HPSet",
    "stream_channels",
    "direct_blockers",
    "build_hp_set",
    "build_all_hp_sets",
    "hp_set_from_reach",
]


class BlockingMode(Enum):
    """How an HP-set element affects the analysed stream."""

    DIRECT = "DIRECT"
    INDIRECT = "INDIRECT"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class HPEntry:
    """One element of an HP set: the paper's ``(M_id, Mode, IN)`` structure."""

    stream_id: int
    mode: BlockingMode
    intermediates: FrozenSet[int] = frozenset()

    def __post_init__(self) -> None:
        if self.mode is BlockingMode.DIRECT and self.intermediates:
            raise AnalysisError(
                f"direct HP entry for stream {self.stream_id} must not carry "
                f"intermediates {set(self.intermediates)}"
            )
        if self.mode is BlockingMode.INDIRECT and not self.intermediates:
            raise AnalysisError(
                f"indirect HP entry for stream {self.stream_id} needs at "
                "least one intermediate stream"
            )

    @property
    def is_direct(self) -> bool:
        return self.mode is BlockingMode.DIRECT

    @property
    def is_indirect(self) -> bool:
        return self.mode is BlockingMode.INDIRECT

    @classmethod
    def direct(cls, stream_id: int) -> "HPEntry":
        """Build a DIRECT entry."""
        return cls(stream_id, BlockingMode.DIRECT)

    @classmethod
    def indirect(cls, stream_id: int, intermediates: Iterable[int]) -> "HPEntry":
        """Build an INDIRECT entry with the given intermediate streams."""
        return cls(stream_id, BlockingMode.INDIRECT, frozenset(intermediates))


class HPSet:
    """The HP set of one analysed stream: id-keyed, deterministic order."""

    def __init__(self, owner_id: int, entries: Iterable[HPEntry] = ()):
        self.owner_id = owner_id
        self._entries: Dict[int, HPEntry] = {}
        self._ordered: Optional[Tuple[HPEntry, ...]] = None
        for e in entries:
            self.add(e)

    def add(self, entry: HPEntry) -> None:
        if entry.stream_id in self._entries:
            raise AnalysisError(
                f"HP set of stream {self.owner_id} already contains "
                f"stream {entry.stream_id}"
            )
        self._entries[entry.stream_id] = entry
        self._ordered = None

    def __contains__(self, stream_id: object) -> bool:
        return stream_id in self._entries

    def __getitem__(self, stream_id: int) -> HPEntry:
        try:
            return self._entries[stream_id]
        except KeyError:
            raise AnalysisError(
                f"HP set of stream {self.owner_id} has no entry for "
                f"stream {stream_id}"
            ) from None

    def __iter__(self):
        # The analysis iterates each HP set many times per Cal_U with no
        # mutation in between — cache the sorted view until the next add.
        if self._ordered is None:
            self._ordered = tuple(
                sorted(self._entries.values(), key=lambda e: e.stream_id)
            )
        return iter(self._ordered)

    def __len__(self) -> int:
        return len(self._entries)

    def ids(self) -> Tuple[int, ...]:
        """Return member stream ids, ascending."""
        return tuple(sorted(self._entries))

    def direct_ids(self) -> Tuple[int, ...]:
        """Return the ids of DIRECT elements, ascending."""
        return tuple(e.stream_id for e in self if e.is_direct)

    def indirect_ids(self) -> Tuple[int, ...]:
        """Return the ids of INDIRECT elements, ascending."""
        return tuple(e.stream_id for e in self if e.is_indirect)

    def without_self(self) -> "HPSet":
        """Return a copy with the owner's own entry removed (``Cal_U`` line 1)."""
        return HPSet(
            self.owner_id,
            (e for e in self if e.stream_id != self.owner_id),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HPSet):
            return NotImplemented
        return (
            self.owner_id == other.owner_id
            and self._entries == other._entries
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = []
        for e in self:
            if e.is_direct:
                parts.append(f"({e.stream_id}, DIRECT)")
            else:
                ins = ",".join(str(i) for i in sorted(e.intermediates))
                parts.append(f"({e.stream_id}, INDIRECT, {{{ins}}})")
        return f"HP_{self.owner_id} = {{{', '.join(parts)}}}"


# ---------------------------------------------------------------------- #
# Construction
# ---------------------------------------------------------------------- #


def stream_channels(
    streams: StreamSet, routing: RoutingAlgorithm
) -> Dict[int, FrozenSet[Channel]]:
    """Return, per stream id, the set of directed channels its route uses."""
    return {
        s.stream_id: frozenset(routing.route_channels(s.src, s.dst))
        for s in streams
    }


def direct_blockers(
    streams: StreamSet,
    channels: Mapping[int, FrozenSet[Channel]],
) -> Dict[int, Tuple[int, ...]]:
    """Return, per stream id, the ids that *directly* block it.

    A stream is directly blocked by every distinct stream of equal or higher
    priority whose route shares a directed channel with it.
    """
    out: Dict[int, Tuple[int, ...]] = {}
    all_streams = tuple(streams)
    for sj in all_streams:
        cj = channels[sj.stream_id]
        blockers = [
            sk.stream_id
            for sk in all_streams
            if sk.stream_id != sj.stream_id
            and sk.priority >= sj.priority
            and not cj.isdisjoint(channels[sk.stream_id])
        ]
        out[sj.stream_id] = tuple(sorted(blockers))
    return out


def build_hp_set(
    stream: MessageStream,
    streams: StreamSet,
    blockers: Mapping[int, Tuple[int, ...]],
    *,
    include_self: bool = False,
) -> HPSet:
    """Construct ``HP_j`` for one stream from the direct-blocking relation.

    Indirect elements are found by forward traversal of the direct-blocking
    relation starting at ``stream``; the intermediates of an indirect element
    ``K`` are all streams reachable from ``stream`` from which ``K`` is in
    turn reachable (i.e. the interior nodes of every blocking chain).
    """
    j = stream.stream_id
    direct = set(blockers[j])

    # Transitive closure of the blocked-by relation from j.
    reachable: set[int] = set()
    frontier = list(direct)
    while frontier:
        k = frontier.pop()
        if k in reachable:
            continue
        reachable.add(k)
        frontier.extend(blockers[k])
    indirect = reachable - direct - {j}

    hp = HPSet(j)
    if include_self:
        hp.add(HPEntry.direct(j))
    for k in sorted(direct):
        hp.add(HPEntry.direct(k))
    if indirect:
        # descendants[r] = streams reachable from r via blocked-by edges.
        desc_cache: Dict[int, FrozenSet[int]] = {}

        def descendants(r: int) -> FrozenSet[int]:
            cached = desc_cache.get(r)
            if cached is not None:
                return cached
            seen: set[int] = set()
            stack = list(blockers[r])
            while stack:
                x = stack.pop()
                if x in seen:
                    continue
                seen.add(x)
                stack.extend(blockers[x])
            out = frozenset(seen)
            desc_cache[r] = out
            return out

        for k in sorted(indirect):
            # Interior nodes of any blocking chain j -> ... -> k: reachable
            # from j, and k reachable from them. Same-priority mutual
            # blocking creates cycles, so j itself may appear in `reachable`
            # and must be excluded explicitly.
            ins = frozenset(
                r for r in reachable
                if r != k and r != j and k in descendants(r)
            )
            hp.add(HPEntry.indirect(k, ins))
    return hp


def hp_set_from_reach(
    owner_id: int,
    direct: Tuple[int, ...],
    reach: AbstractSet[int],
    reach_map: Mapping[int, AbstractSet[int]],
) -> HPSet:
    """Construct ``HP_j`` from maintained reachability sets (no traversal).

    The incremental admission engine keeps, per admitted stream, the
    transitive closure ``reach[j]`` of the blocked-by relation (owner
    excluded). Given those closed sets, the HP set falls out without any
    graph walk — and bit-identical to :func:`build_hp_set`:

    * the DIRECT elements are exactly ``blockers[j]``;
    * the INDIRECT elements are ``reach[j]`` minus the direct ones
      (``j`` itself never appears: the closure excludes the owner);
    * the intermediates of an indirect ``k`` are the members ``r`` of
      ``reach[j]`` with ``k in reach[r]`` — reachable from ``j`` and
      reaching ``k``, i.e. the interior of some blocking chain. The
      owner-exclusion of :func:`build_hp_set` is automatic (``j`` is not
      in its own closure) and every indirect element has at least one
      intermediate (the direct blocker its chain passes through), so the
      :class:`HPEntry` invariant holds by construction.

    Parameters
    ----------
    owner_id:
        The analysed stream ``j``.
    direct:
        ``blockers[j]``, ascending (the engine maintains sorted tuples).
    reach:
        Closed reachable set of ``j`` over blocked-by edges, ``j``
        excluded.
    reach_map:
        The closure of every admitted stream (must cover ``reach``).
    """
    hp = HPSet(owner_id)
    for k in direct:
        hp.add(HPEntry.direct(k))
    indirect = reach.difference(direct)
    for k in sorted(indirect):
        ins = frozenset(
            r for r in reach if r != k and k in reach_map[r]
        )
        hp.add(HPEntry.indirect(k, ins))
    return hp


def build_all_hp_sets(
    streams: StreamSet,
    routing: Optional[RoutingAlgorithm] = None,
    *,
    channels: Optional[Mapping[int, FrozenSet[Channel]]] = None,
    include_self: bool = False,
) -> Dict[int, HPSet]:
    """Construct the HP set of every stream in the set.

    Exactly one of ``routing`` or ``channels`` must be given: either the
    routes are derived from the routing function, or pre-computed channel
    sets are supplied (useful for custom path assignments and for testing).
    """
    if (routing is None) == (channels is None):
        raise AnalysisError("pass exactly one of 'routing' or 'channels'")
    if channels is None:
        assert routing is not None
        channels = stream_channels(streams, routing)
    missing = [s.stream_id for s in streams if s.stream_id not in channels]
    if missing:
        raise AnalysisError(f"no channel set for stream ids {missing}")
    # Hoist the active() check out of the per-stream loop so the disabled
    # path pays one call for the whole build, not one per hp_set instant.
    tr = _trace_active()
    with _span("build_hp_sets", "analysis", n=len(streams)):
        blockers = direct_blockers(streams, channels)
        out = {}
        for s in streams:
            hp = build_hp_set(s, streams, blockers, include_self=include_self)
            if tr is not None:
                tr.instant(
                    "hp_set", "analysis", stream=s.stream_id,
                    direct=len(hp.direct_ids()),
                    indirect=len(hp.indirect_ids()),
                )
            out[s.stream_id] = hp
    return out
