"""Indirect-interference release (the paper's ``Modify_Diagram``).

An INDIRECT element ``K`` of ``HP_j`` shares no channel with ``M_j``; it
delays ``M_j`` only by delaying *intermediate* streams that do. If, during
some interval, none of ``K``'s intermediates requests the channel time that
``K`` occupies, that occupancy cannot propagate to ``M_j`` and the paper
releases ("frees") it: "A time slot used by an indirect element can be freed
if all of the intermediate message streams do not request that time slot. A
released time slot can be reused by other message streams."

Concretely, a slot is *requested* by an intermediate when the intermediate's
row is ALLOCATED or WAITING there; the release condition is that every
intermediate's row is FREE or BUSY on the slot (the pseudocode's
``all T_d[r][i] == FREE or BUSY``).

The paper's prose is per *slot* ("a time slot used by an indirect element
can be freed...") while its worked example only ever releases whole
instances, leaving the split case ambiguous. Both readings are
implemented, selected by ``granularity``:

``"instance"`` (default)
    an instance is removed only when **all** of its occupied slots
    (allocated and waiting) are releasable. Reproduces the paper's worked
    example exactly (instances 2 and 3 of ``M_0`` and instance 4 of
    ``M_1`` vanish from the Fig. 9 diagram) and errs conservative when
    the per-slot condition would split an instance.
``"slot"``
    the literal prose: each releasable slot is individually erased from
    the indirect element's demand (the instance keeps its remaining
    slots; erased demand does not shift elsewhere). Never looser than
    instance granularity — and **demonstrably unsound**: the soundness
    campaign found simulated delays exceeding slot-granular bounds by
    double-digit slots (EXPERIMENTS.md, finding F-6). An instance whose
    early slots are erased still transmits those flits in reality, just
    later — erasing part of its demand under-counts interference. Keep
    this mode for studying the interpretation, not for guarantees.

After each removal the diagram is re-generated ("Update T_d consistently"),
so lower-priority allocations compact into the released slots (the paper's
"the first instance of M_3 is compacted"). Indirect elements are processed
in BFS order over the blocking dependency graph from the analysed stream,
matching the paper's in-degree-counted BFS walk.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, Mapping, Optional, Set, Tuple

import numpy as np

from ..errors import AnalysisError
from ..obs.trace import active as _trace_active
from .bdg import indirect_processing_order
from .hpset import HPSet
from .kernel import window_arrays
from .streams import MessageStream, StreamSet
from .timing_diagram import TimingDiagram, generate_init_diagram, refill_rows

__all__ = ["modify_diagram", "releasable_instances"]


def releasable_instances(
    diagram: TimingDiagram,
    indirect_id: int,
    intermediates: AbstractSet[int],
) -> Tuple[int, ...]:
    """Return indices of the indirect stream's instances that can be removed.

    An instance is releasable when every slot it occupies (ALLOCATED or
    WAITING) is requested by **no** intermediate stream. Computed
    straight off the row masks: instance indices are period-window
    indices, so mapping each occupied slot through the shared
    slot-to-window array and discarding windows that contain a requested
    slot yields exactly the instances the per-record check would pass —
    without materialising any instance records.
    """
    if not intermediates:
        raise AnalysisError(
            f"indirect stream {indirect_id} has no intermediates"
        )
    row = diagram.row_of(indirect_id)
    occ_idx = np.flatnonzero(diagram.row_requests(row))
    if len(occ_idx) == 0:
        return ()
    requested = np.zeros(diagram.dtime + 1, dtype=bool)
    for r in sorted(intermediates):
        requested |= diagram.row_requests(diagram.row_of(r))
    _, win = window_arrays(
        diagram.row_streams[row].period, diagram.dtime
    )
    # The arrays are tiny (a handful of occupied slots): plain set
    # arithmetic beats numpy's set routines here.
    w_occ = win[occ_idx]
    bad = set(w_occ[requested[occ_idx]].tolist())
    return tuple(sorted(set(w_occ.tolist()) - bad))


def releasable_slots(
    diagram: TimingDiagram,
    indirect_id: int,
    intermediates: AbstractSet[int],
) -> np.ndarray:
    """Return the slots of the indirect stream that can be erased.

    Slot-granular variant of :func:`releasable_instances`: a slot the
    indirect stream occupies (ALLOCATED or WAITING) is releasable when no
    intermediate requests it.
    """
    if not intermediates:
        raise AnalysisError(
            f"indirect stream {indirect_id} has no intermediates"
        )
    requested = np.zeros(diagram.dtime + 1, dtype=bool)
    for r in sorted(intermediates):
        requested |= diagram.row_requests(diagram.row_of(r))
    own = diagram.row_requests(diagram.row_of(indirect_id))
    return np.flatnonzero(own & ~requested)


def modify_diagram(
    owner: MessageStream,
    hp: HPSet,
    streams: StreamSet,
    blockers: Mapping[int, Tuple[int, ...]],
    dtime: int,
    *,
    fixpoint: bool = False,
    granularity: str = "instance",
    max_passes: int = 16,
    initial_removed: Optional[Mapping[int, AbstractSet[int]]] = None,
) -> Tuple[TimingDiagram, Dict[int, Set[int]]]:
    """Run ``Modify_Diagram``: release indirect interference and re-compact.

    Parameters
    ----------
    owner:
        The analysed stream ``M_j``.
    hp:
        Its HP set (without the self entry).
    streams, blockers:
        The global stream set and direct-blocking relation (for the BDG).
    dtime:
        Diagram horizon.
    fixpoint:
        The paper walks each indirect element once (BFS order); with
        ``fixpoint=True`` the BFS sweep repeats until no further instance is
        released, which can only tighten the bound further (released slots
        may idle an intermediate that previously requested slots). Used by
        the E-AB1 ablation benchmark.
    granularity:
        ``"instance"`` (default, matches the worked example) or ``"slot"``
        (the paper's literal prose) — see the module docstring.
    max_passes:
        Safety cap on fixpoint sweeps.
    initial_removed:
        Instances excluded from the diagram *before* any release decision
        (``stream_id -> instance indices``). Backends that discharge part
        of a member's demand analytically (e.g. the FCFS equal-priority
        instance cap of the ``tighter`` backend) seed the exclusion here;
        the returned map includes these seeds alongside genuine releases.

    Returns
    -------
    (diagram, removed):
        The final diagram and the map ``stream_id -> released instance
        indices`` (instance granularity) or ``stream_id -> released
        slots`` (slot granularity).
    """
    if granularity not in ("instance", "slot"):
        raise AnalysisError(
            f"granularity must be 'instance' or 'slot', got {granularity!r}"
        )
    if initial_removed and granularity != "instance":
        raise AnalysisError(
            "initial_removed requires instance granularity (the seeds are "
            "instance indices, not slots)"
        )
    row_streams = tuple(
        sorted(
            (streams[e.stream_id] for e in hp if e.stream_id != owner.stream_id),
            key=lambda s: (-s.priority, s.stream_id),
        )
    )
    removed: Dict[int, Set[int]] = {}
    if initial_removed:
        for sid, idxs in initial_removed.items():
            if idxs:
                removed[sid] = set(idxs)
    # Hot path (once per Cal_U): guard the span explicitly so the
    # disabled cost is one call and a None test.
    tr = _trace_active()
    if tr is not None:
        tr.begin(
            "modify_diagram", "analysis",
            owner=owner.stream_id, dtime=int(dtime), granularity=granularity,
        )
    try:
        diagram = generate_init_diagram(
            owner.stream_id, row_streams, dtime, removed=removed
        )
        order = indirect_processing_order(hp, blockers, streams)
        if not order:
            return diagram, removed

        passes = max_passes if fixpoint else 1
        for _ in range(passes):
            changed = False
            for k in order:
                entry = hp[k]
                if granularity == "instance":
                    new = set(
                        releasable_instances(diagram, k, entry.intermediates)
                    )
                else:
                    new = set(
                        int(t) for t in
                        releasable_slots(diagram, k, entry.intermediates)
                    )
                fresh = new - removed.get(k, set())
                if fresh:
                    removed.setdefault(k, set()).update(fresh)
                    if tr is not None:
                        tr.instant(
                            "modify.release", "analysis",
                            owner=owner.stream_id, stream=k,
                            released=sorted(int(x) for x in fresh),
                            granularity=granularity,
                        )
                    # Releasing demand of k only changes k's row and the
                    # rows below it; the prefix above is untouched.
                    if granularity == "instance":
                        refill_rows(diagram, removed,
                                    start_row=diagram.row_of(k))
                    else:
                        refill_rows(diagram, {}, erased_slots=removed,
                                    start_row=diagram.row_of(k))
                    changed = True
            if not changed:
                break
    finally:
        if tr is not None:
            tr.end("modify_diagram", "analysis")
    return diagram, removed
