"""Network-latency models.

The paper defines network latency as "the time taken to deliver a message
when no other traffic is present". For wormhole switching with one flit
forwarded per channel per flit time, a ``C``-flit message over ``h`` hops
pipelines as

    L = h + C - 1

(the header needs ``h`` flit times to reach the destination; the remaining
``C - 1`` flits drain one per flit time). This is exactly the model behind
the worked example of section 4.4: all five printed ``L_i`` values equal
``hops + C - 1`` under X-Y routing, which is how we recovered the OCR-garbled
constants (see DESIGN.md).

Real routers add a per-hop routing/switching delay; :class:`PipelinedLatency`
generalises to ``L = r * h + C - 1`` with ``r`` flit times per hop
(``r = 1`` reproduces the paper).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..errors import StreamError
from .streams import MessageStream

__all__ = ["LatencyModel", "PipelinedLatency", "NoLoadLatency"]


class LatencyModel(ABC):
    """Maps a stream and its hop count to a no-load network latency."""

    @abstractmethod
    def latency(self, stream: MessageStream, hops: int) -> int:
        """Return ``L_i`` for ``stream`` whose route spans ``hops`` channels."""


class PipelinedLatency(LatencyModel):
    """Wormhole pipeline latency ``L = header_hop_delay * hops + C - 1``.

    Parameters
    ----------
    header_hop_delay:
        Flit times the header spends per hop (route computation + switch +
        link traversal). The paper's unit-delay model uses ``1``.
    """

    def __init__(self, header_hop_delay: int = 1):
        if header_hop_delay < 1:
            raise StreamError(
                f"header_hop_delay must be >= 1, got {header_hop_delay}"
            )
        self.header_hop_delay = int(header_hop_delay)

    def latency(self, stream: MessageStream, hops: int) -> int:
        if hops < 1:
            raise StreamError(
                f"stream {stream.stream_id}: route must span >= 1 hop, got {hops}"
            )
        return self.header_hop_delay * hops + stream.length - 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PipelinedLatency(header_hop_delay={self.header_hop_delay})"


class NoLoadLatency(PipelinedLatency):
    """The paper's latency model: ``L = hops + C - 1`` (unit hop delay)."""

    def __init__(self) -> None:
        super().__init__(header_hop_delay=1)
