"""Row-fill kernels for the timing diagram (``_fill_row``'s inner core).

One call computes a row's ALLOCATED and WAITING masks against the
busy-from-above mask — the innermost loop of ``Generate_Init_Diagram``
and therefore of every ``Cal_U``. Two implementations exist:

``numpy`` (default)
    The vectorised free-rank construction: cumulative-sum the FREE
    slots, subtract the count at each window start, and a slot is
    allocated iff it is free with in-window rank ``1..C`` (waiting iff
    busy with rank ``< C``). Identical to the paper's scan by the
    rank/scan equivalence argued in :mod:`repro.core.timing_diagram`.

``numba`` (opt-in, ``REPRO_KERNEL=numba``)
    The paper's literal per-window scan loop, JIT-compiled. The scan
    source doubles as the pure-Python reference oracle the test suite
    fuzzes against the numpy path, so the numba path is exercised for
    correctness even on hosts without numba (where selection silently
    falls back to numpy — the dependency is optional and never
    installed by this repo).

Both share the per-``(period, dtime)`` *window arrays* — the release
times ``starts`` and the clipped slot-to-window index map — which are
memoised process-wide because an engine recomputes diagrams for the
same streams over the same horizons on every admission.
"""

from __future__ import annotations

import os
import warnings
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "active_kernel",
    "fill_masks",
    "fill_masks_numpy",
    "fill_masks_scan",
    "select_kernel",
    "window_arrays",
]

# ---------------------------------------------------------------------- #
# Window arrays (shared by both kernels and by the lazy record builder)
# ---------------------------------------------------------------------- #

_WINDOW_CACHE: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = {}
#: starts[win] materialised per key — the per-slot window-start gather the
#: numpy kernel would otherwise recompute on every call.
_WSTART_CACHE: Dict[Tuple[int, int], np.ndarray] = {}
_WINDOW_CACHE_CAP = 4096


def window_arrays(period: int, dtime: int) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(starts, win)`` for a period over a horizon, memoised.

    ``starts`` are the instance release times ``0, T, 2T, ...`` below
    ``dtime``; ``win[t]`` is the window index of slot ``t`` clipped to
    the last window (slot 0 maps into window 0 but is masked out by the
    kernels). Both arrays are shared and must not be mutated.
    """
    key = (period, dtime)
    cached = _WINDOW_CACHE.get(key)
    if cached is not None:
        return cached
    starts = np.arange(0, dtime, period)
    win = np.clip(
        (np.arange(dtime + 1) - 1) // period, 0, len(starts) - 1
    )
    if len(_WINDOW_CACHE) >= _WINDOW_CACHE_CAP:
        _WINDOW_CACHE.clear()
        _WSTART_CACHE.clear()
    _WINDOW_CACHE[key] = (starts, win)
    _WSTART_CACHE[key] = starts[win]
    return starts, win


# ---------------------------------------------------------------------- #
# Kernels
# ---------------------------------------------------------------------- #


def fill_masks_numpy(
    busy: np.ndarray,
    period: int,
    length: int,
    starts: np.ndarray,
    win: np.ndarray,
    wstart: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised free-rank fill: return ``(alloc, wait)`` masks.

    The rank tests are fused into one comparison: a FREE slot is taken
    iff its in-window free-rank is ``<= C`` (the rank of a free slot is
    always ``>= 1`` — the slot counts itself), and a BUSY slot waits iff
    its rank is ``< C``, i.e. rank plus the busy flag is ``<= C``.
    """
    free = ~busy
    free[0] = False
    fc = np.cumsum(free)
    if wstart is None:
        wstart = starts[win]
    taken = fc - fc[wstart] + busy <= length
    alloc = free & taken
    wait = busy & taken
    alloc[0] = wait[0] = False
    return alloc, wait


def fill_masks_scan(
    busy: np.ndarray,
    period: int,
    length: int,
    nwin: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """The paper's literal scan: walk each window, claim the first ``C``
    free slots, mark skipped busy slots WAITING while unsatisfied.

    Written numba-compatible (plain loops, no fancy indexing): this
    exact function object is what ``REPRO_KERNEL=numba`` JIT-compiles,
    and what the fuzz oracle runs in pure Python against the numpy path.
    """
    n = busy.shape[0]
    alloc = np.zeros(n, np.bool_)
    wait = np.zeros(n, np.bool_)
    for w in range(nwin):
        lo = w * period + 1
        hi = (w + 1) * period
        if hi > n - 1:
            hi = n - 1
        got = 0
        for t in range(lo, hi + 1):
            if busy[t]:
                if got < length:
                    wait[t] = True
            elif got < length:
                alloc[t] = True
                got += 1
    return alloc, wait


_scan_jitted = None
_ACTIVE = "numpy"


def select_kernel(name: str) -> str:
    """Select the fill kernel; return the name actually activated.

    ``"numba"`` JIT-compiles :func:`fill_masks_scan` if numba is
    importable and falls back to ``"numpy"`` (with a one-time warning)
    otherwise — the dependency is optional and must never be required.
    """
    global _ACTIVE, _scan_jitted
    if name == "numba":
        if _scan_jitted is None:
            try:
                import numba  # type: ignore[import-not-found]

                _scan_jitted = numba.njit(cache=True)(fill_masks_scan)
            except ImportError:
                warnings.warn(
                    "REPRO_KERNEL=numba requested but numba is not "
                    "installed; falling back to the numpy kernel",
                    RuntimeWarning,
                    stacklevel=2,
                )
                _ACTIVE = "numpy"
                return _ACTIVE
        _ACTIVE = "numba"
    else:
        _ACTIVE = "numpy"
    return _ACTIVE


def active_kernel() -> str:
    """Return the name of the kernel in use (``"numpy"`` or ``"numba"``)."""
    return _ACTIVE


def fill_masks(
    busy: np.ndarray, period: int, length: int, dtime: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dispatch to the active kernel; return ``(alloc, wait, starts)``."""
    starts, win = window_arrays(period, dtime)
    if _ACTIVE == "numba" and _scan_jitted is not None:
        alloc, wait = _scan_jitted(busy, period, length, len(starts))
    else:
        alloc, wait = fill_masks_numpy(
            busy, period, length, starts, win,
            _WSTART_CACHE.get((period, dtime)),
        )
    return alloc, wait, starts


select_kernel(os.environ.get("REPRO_KERNEL", "numpy").strip().lower())
