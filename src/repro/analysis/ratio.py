"""The tables' metric: measured latency relative to the computed bound.

The paper's Tables 1-5 report, per priority level, "the ratio between the
delay upper bound found using the proposed algorithm and the actual average
message transmission delay" — written as a number in (0, 1], i.e.
``actual / U``. A ratio near 1 means the bound is tight (the guarantee
costs little); a tiny ratio means the bound is so pessimistic it is
practically useless, which is what happens with few priority levels.

:func:`ratio_by_priority` pools per-stream ratios within each priority
level. Streams whose bound exceeded the search horizon (``U == -1``) have
ratio 0 by convention (the bound is unbounded) and are counted separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

import numpy as np

from ..core.streams import StreamSet
from ..errors import AnalysisError
from ..sim.stats import StatsCollector

__all__ = ["RatioStats", "stream_ratios", "ratio_by_priority"]


@dataclass(frozen=True)
class RatioStats:
    """Ratio summary for one priority level."""

    priority: int
    #: Streams at this level with both a bound and latency samples.
    num_streams: int
    #: Streams whose bound search failed (ratio treated as 0).
    num_unbounded: int
    mean: float
    minimum: float
    maximum: float

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RatioStats(P={self.priority}, n={self.num_streams}, "
            f"mean={self.mean:.3f}, range=[{self.minimum:.3f}, "
            f"{self.maximum:.3f}], unbounded={self.num_unbounded})"
        )


def stream_ratios(
    streams: StreamSet,
    upper_bounds: Mapping[int, int],
    stats: StatsCollector,
) -> Dict[int, float]:
    """Return ``stream_id -> mean measured delay / U`` per stream.

    Streams with ``U == -1`` map to 0.0. Streams that finished no messages
    after warm-up are skipped (they contribute no evidence either way).
    """
    ratios: Dict[int, float] = {}
    sampled = set(stats.stream_ids())
    for s in streams:
        if s.stream_id not in upper_bounds:
            raise AnalysisError(f"no upper bound for stream {s.stream_id}")
        if s.stream_id not in sampled:
            continue
        u = upper_bounds[s.stream_id]
        if u <= 0:
            ratios[s.stream_id] = 0.0
        else:
            ratios[s.stream_id] = stats.mean_delay(s.stream_id) / u
    return ratios


def ratio_by_priority(
    streams: StreamSet,
    upper_bounds: Mapping[int, int],
    stats: StatsCollector,
) -> Dict[int, RatioStats]:
    """Pool per-stream ratios into per-priority-level summaries.

    Returns a mapping keyed by priority value, descending iteration order
    matching the paper's tables (highest priority row first).
    """
    ratios = stream_ratios(streams, upper_bounds, stats)
    by_level: Dict[int, list] = {}
    unbounded: Dict[int, int] = {}
    for s in streams:
        r = ratios.get(s.stream_id)
        if r is None:
            continue
        by_level.setdefault(s.priority, []).append(r)
        if upper_bounds[s.stream_id] <= 0:
            unbounded[s.priority] = unbounded.get(s.priority, 0) + 1
    out: Dict[int, RatioStats] = {}
    for p in sorted(by_level, reverse=True):
        vals = np.asarray(by_level[p], dtype=float)
        out[p] = RatioStats(
            priority=p,
            num_streams=int(vals.size),
            num_unbounded=unbounded.get(p, 0),
            mean=float(vals.mean()),
            minimum=float(vals.min()),
            maximum=float(vals.max()),
        )
    return out
