"""Sensitivity sweeps: how the bound's tightness responds to workload knobs.

The paper varies only two knobs (stream count and priority-level count);
a user adopting the method wants the rest of the response surface:

* :func:`sweep_num_streams` — tightness vs network population (levels
  scale with the paper's |M|/4 rule);
* :func:`sweep_message_length` — tightness vs message size (longer worms
  occupy paths longer, inflating both interference and latency);
* :func:`sweep_period_scale` — tightness vs load (shorter periods raise
  utilization; the bound loosens and eventually saturates);
* :func:`sweep_mesh_size` — tightness vs network size at constant stream
  count (more room dilutes path overlap, so HP sets shrink).

Each sweep point runs the full pipeline (draw, inflate, bound, simulate)
over a few seeds and reports the seed-averaged mean and top-priority
ratios plus interference statistics. Results render as aligned text via
:func:`format_sweep` and regenerate with ``benchmarks/bench_sensitivity.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..core.feasibility import FeasibilityAnalyzer
from ..errors import AnalysisError
from ..sim.traffic import PaperWorkload
from ..topology.mesh import Mesh2D
from ..topology.routing import XYRouting
from .experiments import run_table_experiment

__all__ = [
    "SweepPoint",
    "sweep_num_streams",
    "sweep_message_length",
    "sweep_period_scale",
    "sweep_mesh_size",
    "format_sweep",
]


@dataclass(frozen=True)
class SweepPoint:
    """One x-value of a sensitivity sweep, seed-averaged."""

    x: float
    label: str
    mean_ratio: float
    top_ratio: float
    #: Mean HP-set size across streams (interference scope).
    mean_hp_size: float
    #: Fraction of streams whose period had to be inflated (T := U).
    inflated_share: float
    seeds: int


def _run_point(
    x: float,
    label: str,
    *,
    num_streams: int,
    priority_levels: int,
    seeds: Sequence[int],
    sim_time: int,
    mesh_width: int = 10,
    mesh_height: int = 10,
    workload_factory: Callable[[int], PaperWorkload],
) -> SweepPoint:
    means, tops, hp_sizes, inflated = [], [], [], []
    for seed in seeds:
        result = run_table_experiment(
            name=f"sweep_{label}_{x}_s{seed}",
            num_streams=num_streams,
            priority_levels=priority_levels,
            seed=seed,
            sim_time=sim_time,
            warmup=max(sim_time // 15, 1),
            mesh_width=mesh_width,
            mesh_height=mesh_height,
            workload=workload_factory(seed),
        )
        per_stream = [r.mean for r in result.rows.values()]
        means.append(float(np.mean(per_stream)))
        tops.append(result.highest_priority_ratio())
        analyzer = FeasibilityAnalyzer(
            result.streams, XYRouting(Mesh2D(mesh_width, mesh_height))
        )
        hp_sizes.append(float(np.mean(
            [len(analyzer.hp_sets[s.stream_id]) for s in result.streams]
        )))
        inflated.append(len(result.inflation.inflated) / num_streams)
    return SweepPoint(
        x=x,
        label=label,
        mean_ratio=float(np.mean(means)),
        top_ratio=float(np.mean(tops)),
        mean_hp_size=float(np.mean(hp_sizes)),
        inflated_share=float(np.mean(inflated)),
        seeds=len(list(seeds)),
    )


def sweep_num_streams(
    values: Sequence[int] = (10, 20, 30, 40, 50, 60),
    *,
    seeds: Sequence[int] = (0, 1),
    sim_time: int = 15_000,
) -> List[SweepPoint]:
    """Tightness vs |M|, levels following the paper's |M|/4 rule."""
    points = []
    for m in values:
        levels = max(1, m // 4)
        points.append(_run_point(
            m, "num_streams",
            num_streams=m, priority_levels=levels, seeds=seeds,
            sim_time=sim_time,
            workload_factory=lambda seed, m=m, lv=levels: PaperWorkload(
                num_streams=m, priority_levels=lv, seed=seed,
            ),
        ))
    return points


def sweep_message_length(
    scales: Sequence[float] = (0.5, 1.0, 1.5, 2.0, 3.0),
    *,
    seeds: Sequence[int] = (0, 1),
    sim_time: int = 15_000,
) -> List[SweepPoint]:
    """Tightness vs message size (paper's C ~ U[10,40] scaled).

    Run at 2 priority levels: the paper's 5-level default leaves most HP
    sets empty at |M| = 20, which would flatten the curve."""
    points = []
    for scale in scales:
        lo = max(1, int(10 * scale))
        hi = max(lo, int(40 * scale))
        points.append(_run_point(
            scale, "length_scale",
            num_streams=20, priority_levels=2, seeds=seeds,
            sim_time=sim_time,
            workload_factory=lambda seed, lo=lo, hi=hi: PaperWorkload(
                num_streams=20, priority_levels=2, seed=seed,
                length_range=(lo, hi),
            ),
        ))
    return points


def sweep_period_scale(
    scales: Sequence[float] = (0.25, 0.5, 1.0, 2.0),
    *,
    seeds: Sequence[int] = (0, 1),
    sim_time: int = 15_000,
) -> List[SweepPoint]:
    """Tightness vs load (T ~ U[400,900] scaled down = more load); run at
    2 priority levels for the same reason as :func:`sweep_message_length`."""
    points = []
    for scale in scales:
        lo = max(2, int(400 * scale))
        hi = max(lo, int(900 * scale))
        points.append(_run_point(
            scale, "period_scale",
            num_streams=20, priority_levels=2, seeds=seeds,
            sim_time=sim_time,
            workload_factory=lambda seed, lo=lo, hi=hi: PaperWorkload(
                num_streams=20, priority_levels=2, seed=seed,
                period_range=(lo, hi),
            ),
        ))
    return points


def sweep_mesh_size(
    widths: Sequence[int] = (5, 7, 10, 14),
    *,
    seeds: Sequence[int] = (0, 1),
    sim_time: int = 15_000,
) -> List[SweepPoint]:
    """Tightness vs network size at constant |M| = 20."""
    points = []
    for w in widths:
        points.append(_run_point(
            w, "mesh_width",
            num_streams=20, priority_levels=5, seeds=seeds,
            sim_time=sim_time, mesh_width=w, mesh_height=w,
            workload_factory=lambda seed: PaperWorkload(
                num_streams=20, priority_levels=5, seed=seed,
            ),
        ))
    return points


def format_sweep(title: str, points: Iterable[SweepPoint]) -> str:
    """Render a sweep as an aligned text table."""
    points = list(points)
    if not points:
        raise AnalysisError("empty sweep")
    lines = [
        title,
        f"{'x':>8} {'mean ratio':>11} {'top ratio':>10} "
        f"{'mean |HP|':>10} {'inflated':>9} {'seeds':>6}",
    ]
    for p in points:
        lines.append(
            f"{p.x:8g} {p.mean_ratio:11.3f} {p.top_ratio:10.3f} "
            f"{p.mean_hp_size:10.2f} {p.inflated_share:8.1%} {p.seeds:6d}"
        )
    return "\n".join(lines)
