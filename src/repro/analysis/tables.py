"""Paper-style formatting of regenerated tables.

The original tables print one row per priority level, ``P<k>: <ratio>``.
We keep that shape and add the sample counts and bound statistics a modern
reader wants when judging a reproduction.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from .experiments import TableResult
from .ratio import RatioStats

__all__ = ["format_table", "format_rule_sweep"]


def format_table(result: TableResult) -> str:
    """Render one regenerated table as monospace text."""
    lines = [
        f"{result.name}: {result.priority_levels} priority level(s), "
        f"{result.num_streams} message streams "
        f"(seed={result.seed}, sim={result.sim_time} ft, "
        f"warmup={result.warmup} ft)",
        f"{'level':>6} {'ratio':>7} {'min':>7} {'max':>7} "
        f"{'streams':>8} {'unbounded':>10}",
    ]
    for p in sorted(result.rows, reverse=True):
        r = result.rows[p]
        lines.append(
            f"P{p:>5} {r.mean:7.3f} {r.minimum:7.3f} {r.maximum:7.3f} "
            f"{r.num_streams:8d} {r.num_unbounded:10d}"
        )
    inflated = result.inflation.inflated
    if inflated:
        lines.append(
            f"  periods inflated for {len(inflated)} stream(s) "
            f"(paper's T_i := U_i rule), "
            f"{result.inflation.passes} pass(es), "
            f"converged={result.inflation.converged}"
        )
    lines.append(f"  wall time: {result.wall_seconds:.2f}s")
    return "\n".join(lines)


def format_rule_sweep(results: Mapping[int, TableResult]) -> str:
    """Render the |M|/4-rule sweep: top-priority ratio vs level count."""
    if not results:
        return "(empty sweep)"
    any_result = next(iter(results.values()))
    m = any_result.num_streams
    lines = [
        f"priority-level rule sweep (|M| = {m}; paper: need >= |M|/4 = "
        f"{m / 4:.0f} levels for top ratio > 0.9)",
        f"{'levels':>7} {'top-priority ratio':>20} {'lowest ratio':>14}",
    ]
    crossed = None
    for lv in sorted(results):
        r = results[lv]
        top = r.highest_priority_ratio()
        low = r.lowest_priority_ratio()
        lines.append(f"{lv:7d} {top:20.3f} {low:14.3f}")
        if crossed is None and top > 0.9:
            crossed = lv
    if crossed is not None:
        lines.append(
            f"  first level count with top ratio > 0.9: {crossed} "
            f"(paper's rule predicts ~{max(1, round(m / 4))})"
        )
    else:
        lines.append("  top ratio never exceeded 0.9 in this sweep")
    return "\n".join(lines)
