"""Evaluation harness: ratio metric, table runners and formatting."""

from .experiments import (
    PAPER_TABLES,
    InflationResult,
    TableResult,
    inflate_periods,
    priority_rule_sweep,
    run_paper_table,
    run_table_experiment,
)
from .parallel import map_seeds
from .ratio import RatioStats, ratio_by_priority, stream_ratios
from .tables import format_rule_sweep, format_table
from .validation import CampaignResult, Violation, run_soundness_campaign

__all__ = [
    "RatioStats",
    "stream_ratios",
    "ratio_by_priority",
    "InflationResult",
    "inflate_periods",
    "TableResult",
    "run_table_experiment",
    "PAPER_TABLES",
    "run_paper_table",
    "priority_rule_sweep",
    "format_table",
    "format_rule_sweep",
    "CampaignResult",
    "Violation",
    "run_soundness_campaign",
    "map_seeds",
]
