"""Soundness campaigns: the reproduction's central empirical claim.

The paper provides no proof that ``U`` really upper-bounds every message's
transmission delay; its evidence is simulation. This module turns that into
a first-class, repeatable experiment: draw many random workloads, compute
all bounds, simulate each workload from the critical instant (and
optionally from random release phases), and record every violation.

A campaign result with zero violations over hundreds of stream-runs is the
strongest statement this reproduction can make about the method's
soundness; any violation is reported with full provenance (seed, stream,
observed delay, bound) so it can be replayed deterministically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.feasibility import FeasibilityAnalyzer
from ..errors import AnalysisError
from ..sim.network import WormholeSimulator
from ..sim.traffic import PaperWorkload, random_phases
from ..topology.mesh import Mesh2D
from ..topology.routing import XYRouting
from .experiments import inflate_periods

__all__ = ["Violation", "CampaignResult", "run_soundness_campaign"]


@dataclass(frozen=True)
class Violation:
    """One observed delay exceeding its computed bound."""

    seed: int
    phase_seed: Optional[int]
    stream_id: int
    priority: int
    observed_max: int
    bound: int

    @property
    def excess(self) -> int:
        return self.observed_max - self.bound


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of one soundness campaign."""

    workloads: int
    #: (stream, run) pairs with a finite bound that produced samples.
    checked: int
    #: Streams whose bound exceeded the search horizon (not checkable).
    unbounded: int
    violations: Tuple[Violation, ...]
    wall_seconds: float

    @property
    def sound(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        """One-paragraph human summary."""
        if self.sound:
            return (
                f"sound: 0 violations over {self.checked} bounded "
                f"stream-runs across {self.workloads} random workloads "
                f"({self.unbounded} unbounded streams excluded); "
                f"{self.wall_seconds:.1f}s"
            )
        lines = [
            f"UNSOUND: {len(self.violations)} violation(s) over "
            f"{self.checked} stream-runs:"
        ]
        for v in self.violations:
            lines.append(
                f"  seed={v.seed} phase_seed={v.phase_seed} "
                f"stream={v.stream_id} (P{v.priority}): observed "
                f"{v.observed_max} > U={v.bound} (+{v.excess})"
            )
        return "\n".join(lines)


def run_soundness_campaign(
    *,
    workloads: int = 10,
    num_streams: int = 12,
    priority_levels: int = 3,
    period_range: Tuple[int, int] = (200, 500),
    length_range: Tuple[int, int] = (10, 40),
    sim_time: int = 10_000,
    mesh_width: int = 10,
    mesh_height: int = 10,
    include_random_phases: bool = True,
    use_modify: bool = True,
    modify_granularity: str = "instance",
    residency_margin: int = 0,
    max_horizon: int = 1 << 16,
    seed0: int = 0,
) -> CampaignResult:
    """Run a soundness campaign over random paper-style workloads.

    Each workload is simulated from zero phases (the analysis's critical
    instant) and, when ``include_random_phases``, once more from random
    release offsets. Periods are inflated first (the paper's ``T := U``
    rule) so every stream has a finite bound where possible.
    """
    if workloads < 1:
        raise AnalysisError("need at least one workload")
    t0 = time.perf_counter()
    mesh = Mesh2D(mesh_width, mesh_height)
    routing = XYRouting(mesh)
    checked = unbounded = 0
    violations: List[Violation] = []

    for seed in range(seed0, seed0 + workloads):
        wl = PaperWorkload(
            num_streams=num_streams,
            priority_levels=priority_levels,
            period_range=period_range,
            length_range=length_range,
            seed=seed,
        )
        drawn = wl.generate(mesh)
        inflation = inflate_periods(
            drawn, routing, use_modify=use_modify,
            modify_granularity=modify_granularity,
            residency_margin=residency_margin, max_horizon=max_horizon,
        )
        streams, bounds = inflation.streams, inflation.upper_bounds
        runs: List[Tuple[Optional[int], Optional[Dict[int, int]]]] = [
            (None, None)
        ]
        if include_random_phases:
            runs.append((seed, random_phases(streams, seed=seed)))
        for phase_seed, phases in runs:
            sim = WormholeSimulator(mesh, routing, streams, warmup=0)
            stats = sim.simulate_streams(sim_time, phases=phases)
            for sid in stats.stream_ids():
                u = bounds[sid]
                if u <= 0:
                    unbounded += 1
                    continue
                checked += 1
                observed = stats.max_delay(sid)
                if observed > u:
                    violations.append(
                        Violation(
                            seed=seed,
                            phase_seed=phase_seed,
                            stream_id=sid,
                            priority=streams[sid].priority,
                            observed_max=observed,
                            bound=u,
                        )
                    )
    return CampaignResult(
        workloads=workloads,
        checked=checked,
        unbounded=unbounded,
        violations=tuple(violations),
        wall_seconds=time.perf_counter() - t0,
    )
