"""Parallel experiment execution over workload seeds.

Every experiment in this repository is embarrassingly parallel across
workload seeds (independent draws, independent simulations), and each
seed's run is pure CPU with no shared state — the textbook case for
process-level parallelism in Python. This module fans experiment
callables out over a :class:`concurrent.futures.ProcessPoolExecutor`
while keeping results **bit-identical** to the serial path (same seeds,
same order), so parallelism is a pure wall-clock knob:

    results = map_seeds(run_one_seed, seeds=range(10), processes=4)

Notes for users:

* the callable must be picklable (a module-level function, not a lambda
  or closure) — pass per-seed parameters through ``functools.partial``;
* ``processes=None`` uses ``os.cpu_count()``; ``processes=1`` (or zero
  or one seeds) short-circuits to the serial path with zero overhead,
  which also keeps the code importable on platforms without ``fork``;
* ``chunksize=None`` picks ``max(1, len(seeds) // (4 * processes))`` —
  about four waves of tasks per worker, amortising IPC for long seed
  lists while keeping the pool load-balanced when per-seed runtimes
  vary (heavily contended workloads simulate slower than idle ones);
* workers inherit no state: anything a task needs must travel through
  its arguments (seeded RNGs make that trivial here).
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from ..errors import AnalysisError

__all__ = [
    "map_seeds",
    "map_verdicts",
    "shutdown_verdict_pool",
    "verdict_processes_default",
]

T = TypeVar("T")


def map_seeds(
    fn: Callable[[int], T],
    seeds: Sequence[int],
    *,
    processes: Optional[int] = None,
    chunksize: Optional[int] = None,
) -> List[T]:
    """Run ``fn(seed)`` for every seed, optionally across processes.

    Results are returned in seed order regardless of completion order;
    an empty seed sequence yields an empty list (so callers can sweep
    parameter grids without special-casing degenerate corners).
    Exceptions raised by any task propagate to the caller (the pool is
    shut down first). ``chunksize=None`` picks
    ``max(1, len(seeds) // (4 * processes))``.
    """
    seeds = list(seeds)
    if not seeds:
        return []
    if processes is None:
        processes = os.cpu_count() or 1
    if processes < 1:
        raise AnalysisError(f"processes must be >= 1, got {processes}")
    processes = min(processes, len(seeds))
    if processes == 1:
        return [fn(seed) for seed in seeds]
    if chunksize is None:
        chunksize = max(1, len(seeds) // (4 * processes))
    elif chunksize < 1:
        raise AnalysisError(f"chunksize must be >= 1, got {chunksize}")
    with ProcessPoolExecutor(max_workers=processes) as pool:
        return list(pool.map(fn, seeds, chunksize=chunksize))


# ---------------------------------------------------------------------- #
# Parallel verdict recomputation (incremental admission engine)
# ---------------------------------------------------------------------- #
#
# Dirty-set Cal_U calls are independent given the prepared structures
# (streams, channels, blockers, HP sets) — the same embarrassing
# parallelism as seeds, but *latency*-sensitive: the engine recomputes a
# handful to a few dozen verdicts per admission, so pool startup cost
# must be paid once per process, not once per request. Hence a
# persistent module-level executor, created lazily on first use and torn
# down at interpreter exit (concurrent.futures installs its own atexit
# join) or explicitly via shutdown_verdict_pool().

_verdict_pool: Optional[ProcessPoolExecutor] = None
_pool_broken = False


def verdict_processes_default() -> Optional[int]:
    """Resolve ``REPRO_ANALYSIS_PROCS`` to a worker count or ``None``.

    Unset/empty means ``os.cpu_count()``; ``0`` (the escape hatch) or
    any value below 2 disables process-parallel verdicts entirely
    (returns ``None`` — a single worker would only add IPC cost).
    """
    raw = os.environ.get("REPRO_ANALYSIS_PROCS", "").strip()
    if raw == "":
        n = os.cpu_count() or 1
    else:
        try:
            n = int(raw)
        except ValueError:
            raise AnalysisError(
                f"REPRO_ANALYSIS_PROCS must be an integer, got {raw!r}"
            ) from None
    return n if n >= 2 else None


def _ensure_pool(processes: int) -> ProcessPoolExecutor:
    global _verdict_pool
    if _verdict_pool is None:
        _verdict_pool = ProcessPoolExecutor(max_workers=processes)
    return _verdict_pool


def shutdown_verdict_pool() -> None:
    """Shut the persistent verdict pool down (idempotent)."""
    global _verdict_pool, _pool_broken
    if _verdict_pool is not None:
        _verdict_pool.shutdown(wait=True, cancel_futures=True)
        _verdict_pool = None
    _pool_broken = False


def _cal_u_batch(analyzer, ids: Tuple[int, ...]):
    """Worker: compute verdicts for a batch of ids on one analyzer."""
    return [(j, analyzer.cal_u(j)) for j in ids]


def map_verdicts(
    analyzer,
    ids: Iterable[int],
    *,
    processes: int,
) -> Dict[int, object]:
    """Compute ``analyzer.cal_u(j)`` for every id, across processes.

    ``analyzer`` is a prepared
    :class:`~repro.core.feasibility.FeasibilityAnalyzer` (picklable —
    streams, channels, blockers, HP sets and routing all are). Ids are
    split round-robin over the workers in sorted order and the results
    merged into an id-keyed dict, so the caller's deterministic
    sorted-id iteration sees bit-identical verdicts regardless of
    completion order. ``Cal_U`` is a pure function of the shipped
    structures, so process boundaries cannot perturb results.

    Any pool failure (fork unavailable, broken worker, pickling error)
    falls back to the serial path — parallelism is strictly a wall-clock
    knob, never a correctness dependency. After the first failure the
    pool is marked broken and subsequent calls go serial directly.
    """
    global _pool_broken
    ids = sorted(ids)
    procs = min(int(processes), len(ids))
    if procs >= 2 and not _pool_broken:
        try:
            pool = _ensure_pool(int(processes))
            chunks = [tuple(ids[i::procs]) for i in range(procs)]
            futures = [
                pool.submit(_cal_u_batch, analyzer, chunk)
                for chunk in chunks
            ]
            out: Dict[int, object] = {}
            for future in futures:
                for j, verdict in future.result():
                    out[j] = verdict
            return out
        except Exception as exc:  # pragma: no cover - host-dependent
            _pool_broken = True
            warnings.warn(
                f"verdict pool failed ({exc!r}); falling back to serial "
                "recomputation",
                RuntimeWarning,
                stacklevel=2,
            )
    return {j: analyzer.cal_u(j) for j in ids}
