"""Parallel experiment execution over workload seeds.

Every experiment in this repository is embarrassingly parallel across
workload seeds (independent draws, independent simulations), and each
seed's run is pure CPU with no shared state — the textbook case for
process-level parallelism in Python. This module fans experiment
callables out over a :class:`concurrent.futures.ProcessPoolExecutor`
while keeping results **bit-identical** to the serial path (same seeds,
same order), so parallelism is a pure wall-clock knob:

    results = map_seeds(run_one_seed, seeds=range(10), processes=4)

Notes for users:

* the callable must be picklable (a module-level function, not a lambda
  or closure) — pass per-seed parameters through ``functools.partial``;
* ``processes=None`` uses ``os.cpu_count()``; ``processes=1`` (or zero
  or one seeds) short-circuits to the serial path with zero overhead,
  which also keeps the code importable on platforms without ``fork``;
* ``chunksize=None`` picks ``max(1, len(seeds) // (4 * processes))`` —
  about four waves of tasks per worker, amortising IPC for long seed
  lists while keeping the pool load-balanced when per-seed runtimes
  vary (heavily contended workloads simulate slower than idle ones);
* workers inherit no state: anything a task needs must travel through
  its arguments (seeded RNGs make that trivial here).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from ..errors import AnalysisError

__all__ = ["map_seeds"]

T = TypeVar("T")


def map_seeds(
    fn: Callable[[int], T],
    seeds: Sequence[int],
    *,
    processes: Optional[int] = None,
    chunksize: Optional[int] = None,
) -> List[T]:
    """Run ``fn(seed)`` for every seed, optionally across processes.

    Results are returned in seed order regardless of completion order;
    an empty seed sequence yields an empty list (so callers can sweep
    parameter grids without special-casing degenerate corners).
    Exceptions raised by any task propagate to the caller (the pool is
    shut down first). ``chunksize=None`` picks
    ``max(1, len(seeds) // (4 * processes))``.
    """
    seeds = list(seeds)
    if not seeds:
        return []
    if processes is None:
        processes = os.cpu_count() or 1
    if processes < 1:
        raise AnalysisError(f"processes must be >= 1, got {processes}")
    processes = min(processes, len(seeds))
    if processes == 1:
        return [fn(seed) for seed in seeds]
    if chunksize is None:
        chunksize = max(1, len(seeds) // (4 * processes))
    elif chunksize < 1:
        raise AnalysisError(f"chunksize must be >= 1, got {chunksize}")
    with ProcessPoolExecutor(max_workers=processes) as pool:
        return list(pool.map(fn, seeds, chunksize=chunksize))
