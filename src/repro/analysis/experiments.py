"""Experiment runners regenerating the paper's evaluation (Tables 1-5 and
the priority-level rule of section 5).

Each table is one configuration of the paper's workload (a number of
streams and a number of priority levels on a 10x10 mesh) pushed through the
full pipeline:

1. draw the random workload (:class:`~repro.sim.traffic.PaperWorkload`);
2. compute delay upper bounds with the proposed algorithm, inflating any
   period below its own bound (the paper: "If the calculated U_i is larger
   than T_i, we increased T_i to accommodate all generated traffics");
3. simulate 30000 flit times of the (inflated) workload on the flit-level
   preemptive network, discarding a 2000-flit-time warm-up;
4. report the actual/U ratio per priority level.

Reproduction notes: the paper does not state how the T-inflation interacts
with bounds of *other* streams (raising one stream's period loosens its
interference on everything below it), so :func:`inflate_periods` iterates
to a fixpoint with a pass cap and recomputes bounds after every pass; a
stream whose bound exceeds the search horizon gets its period doubled,
which mirrors "accommodate all generated traffic" for saturated sets. See
EXPERIMENTS.md for measured outcomes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.feasibility import FeasibilityAnalyzer
from ..core.streams import MessageStream, StreamSet
from ..errors import AnalysisError
from ..sim.network import WormholeSimulator
from ..sim.stats import StatsCollector
from ..sim.traffic import PaperWorkload
from ..topology.mesh import Mesh2D
from ..topology.routing import RoutingAlgorithm, XYRouting
from .ratio import RatioStats, ratio_by_priority

__all__ = [
    "InflationResult",
    "inflate_periods",
    "TableResult",
    "run_table_experiment",
    "PAPER_TABLES",
    "run_paper_table",
    "priority_rule_sweep",
]


# ---------------------------------------------------------------------- #
# Period inflation
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class InflationResult:
    """Outcome of the period-inflation fixpoint."""

    streams: StreamSet
    upper_bounds: Dict[int, int]
    #: stream ids whose period was raised, with (original, final) periods.
    inflated: Dict[int, Tuple[int, int]]
    passes: int
    converged: bool


def inflate_periods(
    streams: StreamSet,
    routing: RoutingAlgorithm,
    *,
    use_modify: bool = True,
    modify_granularity: str = "instance",
    residency_margin: int = 0,
    max_passes: int = 8,
    max_horizon: int = 1 << 18,
) -> InflationResult:
    """Raise periods below their own delay bound until none remains.

    Returns inflated streams plus the bounds computed on the **final**
    stream set, so ratios compare simulation and analysis of the same
    workload. Streams whose bound exceeds ``max_horizon`` have their period
    doubled each pass (their HP interference is saturating); if the
    fixpoint is not reached within ``max_passes`` the result is flagged
    ``converged=False`` and the last bounds are reported.
    """
    original = {s.stream_id: s.period for s in streams}
    current = StreamSet(streams)
    bounds: Dict[int, int] = {}
    converged = False
    passes = 0
    for passes in range(1, max_passes + 1):
        analyzer = FeasibilityAnalyzer(
            current, routing, use_modify=use_modify,
            modify_granularity=modify_granularity,
            residency_margin=residency_margin,
        )
        bounds = analyzer.all_upper_bounds(max_horizon=max_horizon)
        changed = False
        for s in list(current):
            u = bounds[s.stream_id]
            new_period = None
            if u < 0:
                new_period = s.period * 2
            elif u > s.period:
                new_period = u
            if new_period is not None:
                current.replace(
                    s.with_period(new_period).with_latency(s.latency)
                )
                changed = True
        if not changed:
            converged = True
            break
    # Bounds must describe the final stream set.
    if not converged:
        analyzer = FeasibilityAnalyzer(
            current, routing, use_modify=use_modify,
            modify_granularity=modify_granularity,
            residency_margin=residency_margin,
        )
        bounds = analyzer.all_upper_bounds(max_horizon=max_horizon)
    inflated = {
        sid: (orig, current[sid].period)
        for sid, orig in original.items()
        if current[sid].period != orig
    }
    return InflationResult(
        streams=current,
        upper_bounds=bounds,
        inflated=inflated,
        passes=passes,
        converged=converged,
    )


# ---------------------------------------------------------------------- #
# Table experiments
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class TableResult:
    """One regenerated table: ratios per priority level plus provenance."""

    name: str
    num_streams: int
    priority_levels: int
    seed: Optional[int]
    rows: Dict[int, RatioStats]
    upper_bounds: Dict[int, int]
    stats: StatsCollector
    streams: StreamSet
    inflation: InflationResult
    sim_time: int
    warmup: int
    wall_seconds: float

    def highest_priority_ratio(self) -> float:
        """Mean ratio of the highest priority level present."""
        top = max(self.rows)
        return self.rows[top].mean

    def lowest_priority_ratio(self) -> float:
        """Mean ratio of the lowest priority level present."""
        bottom = min(self.rows)
        return self.rows[bottom].mean


def run_table_experiment(
    *,
    name: str,
    num_streams: int,
    priority_levels: int,
    seed: Optional[int] = 0,
    sim_time: int = 30_000,
    warmup: int = 2_000,
    mesh_width: int = 10,
    mesh_height: int = 10,
    use_modify: bool = True,
    max_horizon: int = 1 << 18,
    workload: Optional[PaperWorkload] = None,
) -> TableResult:
    """Run one full table configuration end to end.

    ``workload`` overrides the default paper generator (used by ablations
    that vary the traffic constants).
    """
    t0 = time.perf_counter()
    mesh = Mesh2D(mesh_width, mesh_height)
    routing = XYRouting(mesh)
    wl = workload or PaperWorkload(
        num_streams=num_streams,
        priority_levels=priority_levels,
        seed=seed,
    )
    drawn = wl.generate(mesh)
    inflation = inflate_periods(
        drawn, routing, use_modify=use_modify, max_horizon=max_horizon
    )
    streams = inflation.streams
    sim = WormholeSimulator(mesh, routing, streams, warmup=warmup)
    stats = sim.simulate_streams(sim_time)
    rows = ratio_by_priority(streams, inflation.upper_bounds, stats)
    return TableResult(
        name=name,
        num_streams=num_streams,
        priority_levels=priority_levels,
        seed=seed,
        rows=rows,
        upper_bounds=inflation.upper_bounds,
        stats=stats,
        streams=streams,
        inflation=inflation,
        sim_time=sim_time,
        warmup=warmup,
        wall_seconds=time.perf_counter() - t0,
    )


#: The paper's table configurations: (num_streams, priority_levels).
PAPER_TABLES: Dict[str, Tuple[int, int]] = {
    "table1": (20, 1),
    "table2": (60, 1),
    "table3": (20, 4),
    "table4": (20, 5),
    "table5": (60, 15),
}


def run_paper_table(
    table: str, *, seed: Optional[int] = 0, **kwargs
) -> TableResult:
    """Run one of the paper's five tables by name (``"table1"``..)."""
    try:
        num_streams, levels = PAPER_TABLES[table]
    except KeyError:
        raise AnalysisError(
            f"unknown table {table!r}; expected one of {sorted(PAPER_TABLES)}"
        ) from None
    return run_table_experiment(
        name=table,
        num_streams=num_streams,
        priority_levels=levels,
        seed=seed,
        **kwargs,
    )


# ---------------------------------------------------------------------- #
# The |M|/4 priority-level rule (section 5)
# ---------------------------------------------------------------------- #


def priority_rule_sweep(
    *,
    num_streams: int = 20,
    levels: Sequence[int] = (1, 2, 3, 4, 5, 6, 8, 10),
    seed: Optional[int] = 0,
    sim_time: int = 30_000,
    warmup: int = 2_000,
    **kwargs,
) -> Dict[int, TableResult]:
    """Sweep the number of priority levels at fixed |M|.

    The paper's finding: "at least (1/4)|M| priority levels are needed to
    have the ratio of the highest priority level be higher than 0.9". The
    returned map (levels -> table result) lets the benchmark check where the
    highest-priority ratio crosses 0.9.
    """
    out: Dict[int, TableResult] = {}
    for lv in levels:
        out[lv] = run_table_experiment(
            name=f"rule_|M|={num_streams}_L={lv}",
            num_streams=num_streams,
            priority_levels=lv,
            seed=seed,
            sim_time=sim_time,
            warmup=warmup,
            **kwargs,
        )
    return out
