"""Measured channel-occupancy Gantt charts.

The analysis predicts worst-case channel occupancy with a timing diagram;
the :class:`GanttRecorder` captures the *measured* counterpart — which
stream's flit crossed which channel at every flit time of a recording
window — and :func:`render_gantt` draws it in the same visual language as
:func:`repro.core.render.render_diagram`, one row per channel:

    (1,0)->(2,0)  000000111..000...
    (2,0)->(3,0)  .000000111..000..

Putting the measured chart next to the analytical diagram of a stream's
route is the most direct way to see the worst-case assumptions at work
(critical-instant alignment, preemption slots, compaction); the
``examples/measured_vs_predicted.py`` script does exactly that for the
paper's section 4.4 example.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..topology.base import Channel
from ..topology.mesh import Mesh2D
from .flit import Message

__all__ = ["GanttRecorder", "render_gantt"]

#: Symbols for stream ids 0..61 (digits, lower, upper); '*' beyond.
_SYMBOLS = (
    "0123456789abcdefghijklmnopqrstuvwxyz"
    "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
)


class GanttRecorder:
    """Records (cycle, channel) -> stream id over a bounded window.

    Attach via ``WormholeSimulator(..., gantt=GanttRecorder(start, end))``.
    Recording is windowed so memory stays proportional to the window, not
    the run; one entry per committed flit transfer inside the window.
    """

    def __init__(self, start: int = 0, end: int = 1 << 30,
                 channels: Optional[Iterable[Channel]] = None):
        if end < start:
            raise SimulationError(
                f"gantt window end {end} before start {start}"
            )
        self.start = start
        self.end = end
        #: Restrict recording to these channels (None = all).
        self.channels = frozenset(channels) if channels is not None else None
        #: channel -> {cycle -> stream_id}
        self.cells: Dict[Channel, Dict[int, int]] = {}

    def on_transfer(self, now: int, channel: Channel, msg: Message) -> None:
        """Hook called by the simulator for every committed transfer."""
        if not self.start <= now <= self.end:
            return
        if self.channels is not None and channel not in self.channels:
            return
        self.cells.setdefault(channel, {})[now] = msg.stream_id

    def recorded_channels(self) -> Tuple[Channel, ...]:
        """Channels that carried at least one flit inside the window."""
        return tuple(sorted(self.cells))

    def occupancy(self, channel: Channel) -> Mapping[int, int]:
        """cycle -> stream id for one channel (empty if never used)."""
        return dict(self.cells.get(channel, {}))

    def utilisation(self, channel: Channel, lo: int, hi: int) -> float:
        """Fraction of [lo, hi] the channel was busy."""
        if hi < lo:
            raise SimulationError(f"bad interval [{lo}, {hi}]")
        cells = self.cells.get(channel, {})
        busy = sum(1 for t in cells if lo <= t <= hi)
        return busy / (hi - lo + 1)


def _channel_label(channel: Channel, topology=None) -> str:
    if isinstance(topology, Mesh2D):
        (ux, uy), (vx, vy) = topology.xy(channel[0]), topology.xy(channel[1])
        return f"({ux},{uy})->({vx},{vy})"
    return f"{channel[0]}->{channel[1]}"


def render_gantt(
    recorder: GanttRecorder,
    *,
    channels: Optional[Sequence[Channel]] = None,
    lo: Optional[int] = None,
    hi: Optional[int] = None,
    topology=None,
    major: int = 10,
) -> str:
    """Render the recorded occupancy as monospace text.

    One row per channel; each cell is the symbol of the stream whose flit
    crossed in that cycle (``.`` = idle). ``channels`` defaults to every
    recorded channel, ``[lo, hi]`` to the recorded extent.
    """
    chans = list(channels) if channels is not None \
        else list(recorder.recorded_channels())
    if not chans:
        return "(no transfers recorded)"
    all_times = [
        t for ch in chans for t in recorder.cells.get(ch, {})
    ]
    if not all_times:
        return "(no transfers recorded on the selected channels)"
    lo = lo if lo is not None else min(all_times)
    hi = hi if hi is not None else max(all_times)
    labels = [_channel_label(ch, topology) for ch in chans]
    width = max(len(l) for l in labels) + 2

    ruler = []
    for t in range(lo, hi + 1):
        if t % major == 0:
            ruler.append(str(t)[-1])
        elif t % 5 == 0:
            ruler.append("+")
        else:
            ruler.append("-")
    lines = [
        f"measured channel occupancy, cycles {lo}..{hi} "
        f"(symbol = stream id, . = idle)",
        " " * width + "".join(ruler),
    ]
    for ch, label in zip(chans, labels):
        cells = recorder.cells.get(ch, {})
        row = []
        for t in range(lo, hi + 1):
            sid = cells.get(t)
            if sid is None:
                row.append(".")
            elif sid < len(_SYMBOLS):
                row.append(_SYMBOLS[sid])
            else:
                row.append("*")
        lines.append(label.ljust(width) + "".join(row))
    return "\n".join(lines)
