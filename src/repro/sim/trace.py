"""Simulation instrumentation: message traces and link utilization.

Two observability tools a user of the simulator reaches for when a bound
looks surprising:

* :class:`TraceRecorder` — per-message milestones (release, first flit into
  the network, finish) with derived queueing/network split. Attach one via
  ``WormholeSimulator(..., trace=TraceRecorder())``.
* :func:`render_mesh_utilization` — an ASCII heatmap of per-channel
  utilization on a 2-D mesh, computed from the simulator's
  ``channel_transfers`` counters. Hot links show where streams contend,
  which is exactly the direct-blocking structure the HP sets encode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import SimulationError
from ..topology.base import Channel
from ..topology.mesh import Mesh2D
from .flit import Message

__all__ = ["MessageTrace", "TraceRecorder", "render_mesh_utilization"]


@dataclass
class MessageTrace:
    """Milestones of one message's lifetime (flit times)."""

    msg_id: int
    stream_id: int
    priority: int
    release: int
    #: Time the header flit first crossed the source's output channel
    #: (None while still queued).
    first_flit: Optional[int] = None
    #: Time the tail flit was absorbed at the destination.
    finish: Optional[int] = None

    @property
    def queueing_delay(self) -> Optional[int]:
        """Flit times spent at the source before transmission began."""
        if self.first_flit is None:
            return None
        return self.first_flit - 1 - self.release

    @property
    def network_delay(self) -> Optional[int]:
        """Flit times from first flit to tail absorption (inclusive)."""
        if self.first_flit is None or self.finish is None:
            return None
        return self.finish - self.first_flit + 1

    @property
    def total_delay(self) -> Optional[int]:
        """The paper's transmission delay (release to tail absorption)."""
        if self.finish is None:
            return None
        return self.finish - self.release


class TraceRecorder:
    """Collects :class:`MessageTrace` records during a simulation run."""

    def __init__(self) -> None:
        self._traces: Dict[int, MessageTrace] = {}

    # Hooks called by the simulator ------------------------------------- #

    def on_release(self, time: int, msg: Message) -> None:
        self._traces[msg.msg_id] = MessageTrace(
            msg_id=msg.msg_id,
            stream_id=msg.stream_id,
            priority=msg.priority,
            release=time,
        )

    def on_first_flit(self, time: int, msg: Message) -> None:
        trace = self._traces.get(msg.msg_id)
        if trace is not None and trace.first_flit is None:
            trace.first_flit = time

    def on_finish(self, time: int, msg: Message) -> None:
        trace = self._traces.get(msg.msg_id)
        if trace is not None:
            trace.finish = time

    # Queries ------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._traces)

    def trace(self, msg_id: int) -> MessageTrace:
        try:
            return self._traces[msg_id]
        except KeyError:
            raise SimulationError(f"no trace for message {msg_id}") from None

    def stream_traces(self, stream_id: int) -> List[MessageTrace]:
        """All traces of one stream, in release order."""
        return sorted(
            (t for t in self._traces.values() if t.stream_id == stream_id),
            key=lambda t: t.release,
        )

    def finished(self) -> List[MessageTrace]:
        """All completed traces, in finish order."""
        return sorted(
            (t for t in self._traces.values() if t.finish is not None),
            key=lambda t: t.finish,
        )

    def queueing_share(self, stream_id: int) -> float:
        """Fraction of a stream's total delay spent queueing at the source.

        High shares indicate self-interference (period shorter than
        service) rather than network contention.
        """
        traces = [
            t for t in self.stream_traces(stream_id) if t.finish is not None
        ]
        if not traces:
            raise SimulationError(
                f"stream {stream_id} has no finished traces"
            )
        total = sum(t.total_delay for t in traces)
        queued = sum(t.queueing_delay for t in traces)
        return queued / total if total else 0.0


def render_mesh_utilization(
    mesh: Mesh2D,
    transfers: Mapping[Channel, int],
    elapsed: int,
    *,
    digits: int = 10,
) -> str:
    """Render per-channel utilization of a 2-D mesh as an ASCII heatmap.

    Each node is drawn as ``+``; the character between two nodes is the
    utilization of the *busier direction* of that physical link, bucketed
    into ``0..9`` tenths (``.`` for an unused link). Horizontal links
    appear on node rows, vertical links on the rows between.
    """
    if elapsed <= 0:
        raise SimulationError(f"elapsed must be positive, got {elapsed}")

    def bucket(u: int, v: int) -> str:
        usage = max(transfers.get((u, v), 0), transfers.get((v, u), 0))
        if usage == 0:
            return "."
        frac = min(usage / elapsed, 0.999)
        return str(int(frac * digits))

    lines = [f"link utilization over {elapsed} flit times "
             f"(0-9 = tenths of capacity, . = unused)"]
    for y in range(mesh.height - 1, -1, -1):
        row = []
        for x in range(mesh.width):
            row.append("+")
            if x < mesh.width - 1:
                row.append(bucket(mesh.node_xy(x, y), mesh.node_xy(x + 1, y)))
        lines.append("".join(row))
        if y > 0:
            vrow = []
            for x in range(mesh.width):
                vrow.append(bucket(mesh.node_xy(x, y), mesh.node_xy(x, y - 1)))
                if x < mesh.width - 1:
                    vrow.append(" ")
            lines.append("".join(vrow))
    return "\n".join(lines)
