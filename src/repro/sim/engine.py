"""Cycle-driven simulation kernel.

SimPy is unavailable offline, and for a model whose natural time base is the
*flit time* (every busy channel moves exactly one flit per time unit) a
cycle-driven kernel is both simpler and faster than a general event queue:
the only true "events" are message releases, which the kernel keeps in a
heap so that fully idle stretches are skipped in O(log n) instead of being
stepped through cycle by cycle.

:class:`SimulationKernel` owns the clock, the pending-release heap, the
idle-skip logic and a progress watchdog (a wormhole network that has
outstanding flits but commits no transfer for a long stretch is deadlocked
or mis-modelled; X-Y routing proves the former impossible, so the watchdog
guards the latter). Subclasses implement :meth:`_has_work` and
:meth:`_step`.

Two optional hooks let an event-driven subclass fast-forward *busy-but-
blocked* stretches, not just idle ones:

* :meth:`_next_event_time` — the earliest future cycle at which the model
  itself can resume progress without a new release (e.g. a pipelined flit
  maturing in a router). The kernel jumps the clock to
  ``min(next release, next internal event)`` whenever :meth:`_has_work`
  is false.
* :meth:`_blocked_work` — ``True`` when flits are outstanding even though
  nothing is currently movable. Fast-forwarded stretches with blocked work
  count toward the watchdog exactly as if they had been stepped cycle by
  cycle, so a wedged network raises :class:`DeadlockError` at the same
  simulated time either way.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from typing import List, Optional, Tuple

from ..errors import DeadlockError, SimulationError
from ..obs.trace import active as _trace_active

__all__ = ["SimulationKernel"]


class SimulationKernel(ABC):
    """Clock + release heap + watchdog; subclass provides the cycle body.

    Parameters
    ----------
    watchdog_cycles:
        Raise :class:`DeadlockError` when this many consecutive cycles pass
        with outstanding work but no committed flit transfer. ``0`` disables
        the watchdog.
    """

    def __init__(self, *, watchdog_cycles: int = 50_000):
        if watchdog_cycles < 0:
            raise SimulationError("watchdog_cycles must be >= 0")
        self.now = 0
        self.watchdog_cycles = watchdog_cycles
        self._pending: List[Tuple[int, int, object]] = []
        self._pending_seq = 0
        self._stall = 0
        #: Cached observability tracer; refreshed at every :meth:`run` so
        #: the per-cycle body never touches the trace module when tracing
        #: is disabled (``None``).
        self._obs = None

    # ------------------------------------------------------------------ #
    # Release heap
    # ------------------------------------------------------------------ #

    def schedule(self, time: int, payload: object) -> None:
        """Schedule a payload (message release) at absolute ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time}; clock is already at {self.now}"
            )
        heapq.heappush(self._pending, (time, self._pending_seq, payload))
        self._pending_seq += 1

    def _pop_due(self, time: int) -> List[object]:
        """Pop every payload scheduled at or before ``time`` (stable order)."""
        due = []
        while self._pending and self._pending[0][0] <= time:
            due.append(heapq.heappop(self._pending)[2])
        return due

    def next_release(self) -> Optional[int]:
        """Return the earliest pending release time, if any."""
        return self._pending[0][0] if self._pending else None

    # ------------------------------------------------------------------ #
    # Cycle protocol
    # ------------------------------------------------------------------ #

    @abstractmethod
    def _has_work(self) -> bool:
        """``True`` when any flit could move this cycle."""

    @abstractmethod
    def _inject(self, payloads: List[object]) -> None:
        """Admit released payloads into the model (start of cycle)."""

    @abstractmethod
    def _step(self) -> int:
        """Advance the model by one flit time; return transfers committed."""

    def _next_event_time(self) -> Optional[int]:
        """Earliest future cycle at which the model can resume progress
        without a new release, or ``None`` when no such internal event is
        scheduled. Default: none (cycle-by-cycle subclasses)."""
        return None

    def _blocked_work(self) -> bool:
        """``True`` when work is outstanding even though :meth:`_has_work`
        is false (flits parked on wait lists). Default: never."""
        return False

    def run(self, until: int) -> None:
        """Advance the simulation up to and including cycle ``until``.

        Releases scheduled at time ``t`` become eligible to move in cycle
        ``t + 1``. Stretches in which nothing can move — fully idle, or
        everything blocked/parked — fast-forward to the next release or
        the next internal event (:meth:`_next_event_time`), whichever is
        earlier. Skipped cycles with blocked work still feed the watchdog,
        so deadlocks raise at the same simulated time as a cycle-by-cycle
        run would.
        """
        if until < self.now:
            raise SimulationError(
                f"cannot run until {until}; clock is already at {self.now}"
            )
        obs = self._obs = _trace_active()
        while self.now < until:
            if not self._has_work():
                nxt = self.next_release()
                internal = self._next_event_time()
                # First cycle in which either event can cause movement: a
                # release at t is injected for cycle t + 1; an internal
                # event at t fires in cycle t itself.
                target = nxt
                if internal is not None:
                    t = internal - 1
                    target = t if target is None else min(target, t)
                end = (
                    until
                    if target is None or target >= until
                    else max(target, self.now)
                )
                skipped = end - self.now
                if skipped and self.watchdog_cycles and self._blocked_work():
                    if self._stall + skipped >= self.watchdog_cycles:
                        self.now += self.watchdog_cycles - self._stall
                        self._stall = self.watchdog_cycles
                        raise DeadlockError(
                            f"no flit moved for {self._stall} cycles at "
                            f"t={self.now} with outstanding traffic — "
                            "deadlock or model error"
                        )
                    self._stall += skipped
                if end >= until:
                    if obs is not None and until > self.now:
                        obs.emit("i", "sim.clock_jump", "sim",
                                 {"t0": self.now, "t1": until})
                    self.now = until
                    break
                if obs is not None and end > self.now:
                    obs.emit("i", "sim.clock_jump", "sim",
                             {"t0": self.now, "t1": end})
                self.now = end
            self.now += 1
            pending = self._pending
            if pending and pending[0][0] < self.now:
                self._inject(self._pop_due(self.now - 1))
            moved = self._step()
            if self.watchdog_cycles:
                if moved == 0 and (self._has_work() or self._blocked_work()):
                    self._stall += 1
                    if self._stall >= self.watchdog_cycles:
                        raise DeadlockError(
                            f"no flit moved for {self._stall} cycles at "
                            f"t={self.now} with outstanding traffic — "
                            "deadlock or model error"
                        )
                else:
                    self._stall = 0
