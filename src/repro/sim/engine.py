"""Cycle-driven simulation kernel.

SimPy is unavailable offline, and for a model whose natural time base is the
*flit time* (every busy channel moves exactly one flit per time unit) a
cycle-driven kernel is both simpler and faster than a general event queue:
the only true "events" are message releases, which the kernel keeps in a
heap so that fully idle stretches are skipped in O(log n) instead of being
stepped through cycle by cycle.

:class:`SimulationKernel` owns the clock, the pending-release heap, the
idle-skip logic and a progress watchdog (a wormhole network that has
outstanding flits but commits no transfer for a long stretch is deadlocked
or mis-modelled; X-Y routing proves the former impossible, so the watchdog
guards the latter). Subclasses implement :meth:`_has_work` and
:meth:`_step`.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from typing import List, Optional, Tuple

from ..errors import DeadlockError, SimulationError

__all__ = ["SimulationKernel"]


class SimulationKernel(ABC):
    """Clock + release heap + watchdog; subclass provides the cycle body.

    Parameters
    ----------
    watchdog_cycles:
        Raise :class:`DeadlockError` when this many consecutive cycles pass
        with outstanding work but no committed flit transfer. ``0`` disables
        the watchdog.
    """

    def __init__(self, *, watchdog_cycles: int = 50_000):
        if watchdog_cycles < 0:
            raise SimulationError("watchdog_cycles must be >= 0")
        self.now = 0
        self.watchdog_cycles = watchdog_cycles
        self._pending: List[Tuple[int, int, object]] = []
        self._pending_seq = 0
        self._stall = 0

    # ------------------------------------------------------------------ #
    # Release heap
    # ------------------------------------------------------------------ #

    def schedule(self, time: int, payload: object) -> None:
        """Schedule a payload (message release) at absolute ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time}; clock is already at {self.now}"
            )
        heapq.heappush(self._pending, (time, self._pending_seq, payload))
        self._pending_seq += 1

    def _pop_due(self, time: int) -> List[object]:
        """Pop every payload scheduled at or before ``time`` (stable order)."""
        due = []
        while self._pending and self._pending[0][0] <= time:
            due.append(heapq.heappop(self._pending)[2])
        return due

    def next_release(self) -> Optional[int]:
        """Return the earliest pending release time, if any."""
        return self._pending[0][0] if self._pending else None

    # ------------------------------------------------------------------ #
    # Cycle protocol
    # ------------------------------------------------------------------ #

    @abstractmethod
    def _has_work(self) -> bool:
        """``True`` when any flit could move this cycle."""

    @abstractmethod
    def _inject(self, payloads: List[object]) -> None:
        """Admit released payloads into the model (start of cycle)."""

    @abstractmethod
    def _step(self) -> int:
        """Advance the model by one flit time; return transfers committed."""

    def run(self, until: int) -> None:
        """Advance the simulation up to and including cycle ``until``.

        Releases scheduled at time ``t`` become eligible to move in cycle
        ``t + 1``. Idle stretches (no buffered flits anywhere) fast-forward
        to the next release.
        """
        if until < self.now:
            raise SimulationError(
                f"cannot run until {until}; clock is already at {self.now}"
            )
        while self.now < until:
            if not self._has_work():
                nxt = self.next_release()
                if nxt is None:
                    # Nothing buffered, nothing pending: jump to the end.
                    self.now = until
                    break
                if nxt >= until:
                    self.now = until
                    break
                # First cycle in which the release can move is nxt + 1.
                self.now = max(self.now, nxt)
            self.now += 1
            self._inject(self._pop_due(self.now - 1))
            moved = self._step()
            if self.watchdog_cycles:
                if moved == 0 and self._has_work():
                    self._stall += 1
                    if self._stall >= self.watchdog_cycles:
                        raise DeadlockError(
                            f"no flit moved for {self._stall} cycles at "
                            f"t={self.now} with outstanding traffic — "
                            "deadlock or model error"
                        )
                else:
                    self._stall = 0
