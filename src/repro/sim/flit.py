"""Messages and their flit-level bookkeeping.

Wormhole switching divides a message into flits; only the header carries
routing state and the rest follow in pipeline. The simulator does not
allocate one Python object per flit — flits of a message are
indistinguishable except for head/tail roles, so each
:class:`~repro.sim.router.VirtualChannel` keeps *counts* of buffered flits
and each :class:`Message` keeps progress counters. This is behaviourally
identical to per-flit objects for the paper's single-flit-time channel model
and orders of magnitude faster in Python (see the HPC guide note in
DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..errors import SimulationError

__all__ = ["Message"]


@dataclass
class Message:
    """One in-flight message instance of a stream.

    Lifetime: created at ``release`` by the periodic source; queued at the
    source node's injection virtual channel; its flits then cross the
    ``path`` channels one per flit time subject to arbitration; finished
    when the tail flit is absorbed at the destination. ``delay()`` is the
    paper's *message transmission delay* — tail absorption minus release,
    which includes source queueing.
    """

    msg_id: int
    stream_id: int
    priority: int
    src: int
    dst: int
    length: int
    release: int
    #: Node path computed at creation (deterministic routing).
    path: Tuple[int, ...]
    #: Per-hop VC class (dateline schemes); empty = all class 0.
    classes: Tuple[int, ...] = ()
    #: Flits absorbed at the destination so far.
    delivered: int = 0
    #: Simulation time the tail flit was absorbed (None while in flight).
    finish: Optional[int] = None
    #: Fast-path cache, filled at injection by the simulator: one
    #: ``(channel id, downstream target)`` pair per path position, where
    #: the id indexes the simulator's channel table and the target is the
    #: VC the hop feeds (or the port's VC pool under ``vc_mode="li"``, or
    #: ``None`` for the final absorbing hop). Derived from
    #: ``path``/``priority``/``classes``, shared by all messages of a
    #: stream, and carries no independent state.
    hop_cache: Optional[Tuple[Tuple[int, object], ...]] = field(
        default=None, repr=False, compare=False
    )
    #: Fast-path cache: the simulator's per-position VC chain for this
    #: message (also indexed by ``msg_id`` in the simulator; kept here to
    #: spare a dict lookup per transfer).
    chain: Optional[list] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise SimulationError(
                f"message {self.msg_id}: length must be positive"
            )
        if len(self.path) < 2 or self.path[0] != self.src or self.path[-1] != self.dst:
            raise SimulationError(
                f"message {self.msg_id}: path {self.path} does not join "
                f"{self.src} -> {self.dst}"
            )
        if self.classes and len(self.classes) != len(self.path) - 1:
            raise SimulationError(
                f"message {self.msg_id}: {len(self.classes)} VC classes for "
                f"{len(self.path) - 1} hops"
            )

    def vc_class(self, position: int) -> int:
        """Return the VC class of the channel leaving ``path[position]``."""
        if not self.classes:
            return 0
        return self.classes[position]

    @property
    def hops(self) -> int:
        """Number of physical channels on the route."""
        return len(self.path) - 1

    @property
    def done(self) -> bool:
        """``True`` once the tail flit has been absorbed."""
        return self.finish is not None

    def delay(self) -> int:
        """Return the measured transmission delay (requires completion)."""
        if self.finish is None:
            raise SimulationError(
                f"message {self.msg_id} has not finished"
            )
        return self.finish - self.release

    def no_load_latency(self) -> int:
        """The paper's network latency ``L = hops + C - 1`` for this message."""
        return self.hops + self.length - 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"finish={self.finish}" if self.done else f"delivered={self.delivered}"
        return (
            f"Message(id={self.msg_id}, stream={self.stream_id}, "
            f"prio={self.priority}, {self.src}->{self.dst}, C={self.length}, "
            f"release={self.release}, {state})"
        )
