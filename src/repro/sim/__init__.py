"""Cycle-accurate flit-level wormhole network simulation.

The paper's evaluation substrate, rebuilt from the text: per-priority
virtual channels, flit-level preemptive priority arbitration of physical
channels, deterministic routing, periodic real-time traffic and warm-up
aware latency statistics.
"""

from .arbiter import (
    ChannelArbiter,
    FCFSArbiter,
    PriorityPreemptiveArbiter,
    RoundRobinArbiter,
)
from .engine import SimulationKernel
from .flit import Message
from .gantt import GanttRecorder, render_gantt
from .network import VC_MODES, WormholeSimulator
from .router import INJECTION_PORT, Router, VirtualChannel
from .snapshot import render_worm_snapshot
from .stats import DelayStats, StatsCollector
from .trace import MessageTrace, TraceRecorder, render_mesh_utilization
from .traffic import (
    PaperWorkload,
    PatternWorkload,
    bit_reversal_pattern,
    hotspot_pattern,
    random_phases,
    transpose_pattern,
    zero_phases,
)

__all__ = [
    "SimulationKernel",
    "Message",
    "VirtualChannel",
    "Router",
    "INJECTION_PORT",
    "ChannelArbiter",
    "PriorityPreemptiveArbiter",
    "FCFSArbiter",
    "RoundRobinArbiter",
    "WormholeSimulator",
    "VC_MODES",
    "DelayStats",
    "StatsCollector",
    "PaperWorkload",
    "PatternWorkload",
    "transpose_pattern",
    "bit_reversal_pattern",
    "hotspot_pattern",
    "zero_phases",
    "random_phases",
    "MessageTrace",
    "TraceRecorder",
    "render_mesh_utilization",
    "render_worm_snapshot",
    "GanttRecorder",
    "render_gantt",
]
