"""Router state: virtual channels with message-granularity ownership.

Each router has one input *port* per incoming physical channel plus an
injection port for locally sourced traffic; each port carries ``num_vcs``
virtual channels. A VC buffers flits of **one message at a time**: the
header flit allocates the VC and the VC is released when the tail flit has
passed through. This ownership rule is what keeps wormhole flits of
different messages from interleaving on a channel — a message that loses
arbitration simply keeps its VCs and waits, while higher-priority traffic
flows through *other* VCs of the same physical channel (the paper's
preemption mechanism).

VC modes (selected by :class:`~repro.sim.network.WormholeSimulator`):

``per_priority``
    one VC per priority level per port; a message may only use the VC of
    its own priority (the paper's section 3 emulation of flit-level
    preemption);
``single``
    classical wormhole switching: one VC per port, so a physical channel is
    monopolised until the tail passes — exhibits the priority inversion of
    Fig. 2;
``li``
    Li & Mutka's scheme: a message of priority ``p`` may acquire any free VC
    with index ``<= p-1`` (it *requests downward*), raising the chance that
    a high-priority message finds a free VC.

Buffer capacity is per VC in flits. Injection VCs are unbounded (the source
node holds the whole message in local memory) and additionally FIFO-queue
whole messages awaiting their turn.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..errors import SimulationError
from .flit import Message

__all__ = ["VirtualChannel", "Router", "INJECTION_PORT"]

#: Port id of the local injection port (real ports use the upstream node id).
INJECTION_PORT = -1


class VirtualChannel:
    """One virtual channel: a small flit FIFO owned by at most one message."""

    __slots__ = (
        "node",
        "port",
        "index",
        "capacity",
        "is_injection",
        "owner",
        "count",
        "received",
        "sent",
        "position",
        "queue",
        "ready",
    )

    def __init__(self, node: int, port: int, index: int, capacity: Optional[int]):
        self.node = node
        self.port = port
        self.index = index
        #: Plain attribute (not a property): read on every hot-loop pass.
        self.is_injection = port == INJECTION_PORT
        #: Max buffered flits; ``None`` = unbounded (injection VCs).
        self.capacity = capacity
        self.owner: Optional[Message] = None
        #: Flits currently buffered.
        self.count = 0
        #: Owner flits that have entered this VC so far.
        self.received = 0
        #: Owner flits that have left this VC so far.
        self.sent = 0
        #: Index of ``node`` in the owner's path (route progress here).
        self.position = 0
        #: Waiting messages (injection VCs only).
        self.queue: Deque[Message] = deque()
        #: Earliest cycle each buffered flit may be forwarded (FIFO order;
        #: models router pipeline depth — empty when hop_delay is 1).
        self.ready: Deque[int] = deque()

    # ------------------------------------------------------------------ #

    @property
    def free(self) -> bool:
        """``True`` when a new header may allocate this VC."""
        return self.owner is None

    def has_space(self) -> bool:
        """``True`` when one more flit fits (pre-cycle occupancy check)."""
        return self.capacity is None or self.count < self.capacity

    # ------------------------------------------------------------------ #
    # State transitions (called by the simulator's commit phase)
    # ------------------------------------------------------------------ #

    def allocate(self, msg: Message, position: int) -> None:
        """Give the VC to ``msg`` whose path index here is ``position``."""
        if self.owner is not None:
            raise SimulationError(
                f"VC {self!r} is owned by message {self.owner.msg_id}; "
                f"cannot allocate to {msg.msg_id}"
            )
        self.owner = msg
        self.position = position
        self.count = 0
        self.received = 0
        self.sent = 0
        self.ready.clear()

    def push_flit(self, ready_at: Optional[int] = None) -> None:
        """Buffer one incoming flit of the owner.

        ``ready_at`` (router pipeline modelling) is the earliest cycle the
        flit may be forwarded; omit it for the unit-delay model.
        """
        if self.owner is None:
            raise SimulationError(f"flit pushed into unowned VC {self!r}")
        if not self.has_space():
            raise SimulationError(f"flit pushed into full VC {self!r}")
        self.count += 1
        self.received += 1
        if ready_at is not None:
            self.ready.append(ready_at)
        if self.received > self.owner.length:
            raise SimulationError(
                f"VC {self!r} received more flits than message "
                f"{self.owner.msg_id} has"
            )

    def head_ready(self, now: int) -> bool:
        """May the oldest buffered flit be forwarded in cycle ``now``?"""
        return not self.ready or self.ready[0] <= now

    def pop_flit(self) -> Message:
        """Send one buffered flit downstream; release the VC after the tail.

        Returns the owner whose flit was sent. For injection VCs, the next
        queued message is promoted immediately after release.
        """
        msg = self.owner
        if msg is None or self.count <= 0:
            raise SimulationError(f"flit popped from empty VC {self!r}")
        self.count -= 1
        self.sent += 1
        if self.ready:
            self.ready.popleft()
        if self.sent == msg.length:
            self.owner = None
            self.count = 0
            self.received = 0
            self.sent = 0
            self.ready.clear()
            if self.queue:
                self._promote()
        return msg

    def force_release(self) -> None:
        """Discard the owner and all buffered flits (preemption kill).

        Used by the ``preempt_kill`` switching mode: the victim worm's
        flits are dropped and the VC freed immediately. Unlike
        :meth:`pop_flit`'s natural release, queued injection messages are
        *not* auto-promoted — the caller decides what happens next.
        """
        self.owner = None
        self.count = 0
        self.received = 0
        self.sent = 0
        self.ready.clear()

    def promote_queued(self) -> Optional[Message]:
        """Promote the next queued injection message, if any."""
        if not self.is_injection:
            raise SimulationError(
                f"cannot promote on network VC {self!r}"
            )
        if self.owner is None and self.queue:
            self._promote()
            return self.owner
        return None

    # ------------------------------------------------------------------ #
    # Injection queue
    # ------------------------------------------------------------------ #

    def enqueue_message(self, msg: Message) -> None:
        """Queue a freshly released message at this injection VC."""
        if not self.is_injection:
            raise SimulationError(
                f"cannot enqueue a message at network VC {self!r}"
            )
        self.queue.append(msg)
        if self.owner is None:
            self._promote()

    def _promote(self) -> None:
        msg = self.queue.popleft()
        self.allocate(msg, position=0)
        # The whole message is available in source memory at once.
        self.count = msg.length
        self.received = msg.length

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        own = self.owner.msg_id if self.owner else None
        return (
            f"VC(node={self.node}, port={self.port}, idx={self.index}, "
            f"owner={own}, count={self.count})"
        )


class Router:
    """Per-node container of input ports and their virtual channels."""

    __slots__ = ("node", "num_vcs", "ports")

    def __init__(
        self,
        node: int,
        upstream_nodes: Tuple[int, ...],
        num_vcs: int,
        vc_capacity: int,
    ):
        if num_vcs < 1:
            raise SimulationError(f"num_vcs must be >= 1, got {num_vcs}")
        if vc_capacity < 1:
            raise SimulationError(
                f"vc_capacity must be >= 1, got {vc_capacity}"
            )
        self.node = node
        self.num_vcs = num_vcs
        self.ports: Dict[int, List[VirtualChannel]] = {}
        for up in upstream_nodes:
            self.ports[up] = [
                VirtualChannel(node, up, i, vc_capacity)
                for i in range(num_vcs)
            ]
        self.ports[INJECTION_PORT] = [
            VirtualChannel(node, INJECTION_PORT, i, None)
            for i in range(num_vcs)
        ]

    def vc(self, port: int, index: int) -> VirtualChannel:
        """Return the VC at ``(port, index)``."""
        try:
            return self.ports[port][index]
        except (KeyError, IndexError):
            raise SimulationError(
                f"router {self.node} has no VC (port={port}, index={index})"
            ) from None

    def free_vc_indices(self, port: int, max_index: int) -> List[int]:
        """Return free VC indices ``<= max_index`` on ``port``, descending.

        Used by the Li-style VC-allocation rule (request any VC numbered at
        or below the message priority, preferring the highest).
        """
        vcs = self.ports.get(port)
        if vcs is None:
            raise SimulationError(
                f"router {self.node} has no port {port}"
            )
        return [
            i for i in range(min(max_index, self.num_vcs - 1), -1, -1)
            if vcs[i].free
        ]

    def all_vcs(self) -> List[VirtualChannel]:
        """Return every VC of this router (all ports)."""
        return [vc for vcs in self.ports.values() for vc in vcs]
