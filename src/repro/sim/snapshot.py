"""Worm-state snapshots: what is in flight right now, and where.

When a simulation behaves unexpectedly (a watchdog fires, a stream
starves), the question is *where are the worms?* —
:func:`render_worm_snapshot` prints, for each in-flight message, its
source-queue backlog, the VCs it currently occupies (with buffered flit
counts), and the delivery progress at the destination:

    t=37, 2 worm(s) in flight
    M5 <- stream 1 (P2) 12 flits (1,1)->(5,1): src[inj 4f] (2,1)[2f] (3,1)[1f] | delivered 5/12
    M9 <- stream 0 (P1) 30 flits (0,1)->(6,1): src[inj 28f, queue 1 msg] | delivered 0/30

Purely an observability tool; it reads the simulator's state without
mutating it.
"""

from __future__ import annotations

from typing import List

from ..topology.mesh import Mesh2D
from .network import WormholeSimulator

__all__ = ["render_worm_snapshot"]


def _node_name(sim: WormholeSimulator, node: int) -> str:
    if isinstance(sim.topology, Mesh2D):
        x, y = sim.topology.xy(node)
        return f"({x},{y})"
    return f"n{node}"


def render_worm_snapshot(sim: WormholeSimulator) -> str:
    """Render every in-flight message's occupancy as one line each."""
    in_flight = sorted(sim._messages.values(), key=lambda m: m.msg_id)
    lines = [f"t={sim.now}, {len(in_flight)} worm(s) in flight"]
    if not in_flight:
        return "\n".join(lines)
    for msg in in_flight:
        chain = sim._chains.get(msg.msg_id)
        segments: List[str] = []
        if chain is not None:
            for vc in chain:
                if vc is None or vc.owner is not msg:
                    continue
                if vc.is_injection:
                    extra = (
                        f", queue {len(vc.queue)} msg" if vc.queue else ""
                    )
                    segments.append(f"src[inj {vc.count}f{extra}]")
                elif vc.count > 0:
                    segments.append(
                        f"{_node_name(sim, vc.node)}[{vc.count}f]"
                    )
                else:
                    segments.append(f"{_node_name(sim, vc.node)}[-]")
        occupancy = " ".join(segments) if segments else "(between VCs)"
        lines.append(
            f"M{msg.msg_id} <- stream {msg.stream_id} (P{msg.priority}) "
            f"{msg.length} flits "
            f"{_node_name(sim, msg.src)}->{_node_name(sim, msg.dst)}: "
            f"{occupancy} | delivered {msg.delivered}/{msg.length}"
        )
    return "\n".join(lines)
