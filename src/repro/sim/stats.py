"""Latency statistics collection.

The paper's tables report, per priority level, the ratio between the
calculated delay upper bound and the *actual* (simulated) message
transmission delay, measured over a 30000-flit-time run with the first 2000
flit times discarded as start-up transient. :class:`StatsCollector` gathers
per-stream delay samples with exactly that warm-up rule (a message counts
iff it was *released* at or after the warm-up boundary) and aggregates per
stream and per priority level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import SimulationError
from .flit import Message

__all__ = ["DelayStats", "StatsCollector"]


@dataclass(frozen=True)
class DelayStats:
    """Summary statistics of a set of delay samples."""

    count: int
    mean: float
    maximum: int
    minimum: int
    std: float

    @classmethod
    def from_samples(cls, samples: List[int]) -> "DelayStats":
        if not samples:
            raise SimulationError("no delay samples to summarise")
        arr = np.asarray(samples, dtype=np.int64)
        return cls(
            count=int(arr.size),
            mean=float(arr.mean()),
            maximum=int(arr.max()),
            minimum=int(arr.min()),
            std=float(arr.std()),
        )


class StatsCollector:
    """Collects per-stream transmission-delay samples during a run."""

    def __init__(self, warmup: int = 0):
        if warmup < 0:
            raise SimulationError(f"warmup must be >= 0, got {warmup}")
        self.warmup = warmup
        self._samples: Dict[int, List[int]] = {}
        self._dropped = 0
        #: stream id -> priority (recorded from finished messages).
        self._priority: Dict[int, int] = {}
        #: Messages released but not finished by the end of the run.
        self.unfinished: int = 0

    # ------------------------------------------------------------------ #

    def record(self, msg: Message) -> None:
        """Record a finished message (ignores warm-up releases)."""
        if msg.finish is None:
            raise SimulationError(
                f"cannot record unfinished message {msg.msg_id}"
            )
        self._priority.setdefault(msg.stream_id, msg.priority)
        if msg.release < self.warmup:
            self._dropped += 1
            return
        self._samples.setdefault(msg.stream_id, []).append(msg.delay())

    # ------------------------------------------------------------------ #

    @property
    def dropped(self) -> int:
        """Finished messages discarded because they were warm-up traffic."""
        return self._dropped

    def stream_ids(self) -> Tuple[int, ...]:
        """Stream ids with at least one recorded sample, ascending."""
        return tuple(sorted(self._samples))

    def samples(self, stream_id: int) -> Tuple[int, ...]:
        """Raw delay samples of one stream."""
        return tuple(self._samples.get(stream_id, ()))

    def stream_stats(self, stream_id: int) -> DelayStats:
        """Summary for one stream (raises if it produced no samples)."""
        samples = self._samples.get(stream_id)
        if not samples:
            raise SimulationError(
                f"stream {stream_id} finished no messages after warm-up"
            )
        return DelayStats.from_samples(samples)

    def mean_delay(self, stream_id: int) -> float:
        """Average transmission delay of one stream."""
        return self.stream_stats(stream_id).mean

    def max_delay(self, stream_id: int) -> int:
        """Maximum observed transmission delay of one stream."""
        return self.stream_stats(stream_id).maximum

    def all_stream_stats(self) -> Dict[int, DelayStats]:
        """Summaries for every stream that produced samples."""
        return {i: self.stream_stats(i) for i in self.stream_ids()}

    def priority_stats(self) -> Dict[int, DelayStats]:
        """Summaries pooled per priority level (the tables' grouping)."""
        pooled: Dict[int, List[int]] = {}
        for sid, samples in self._samples.items():
            pooled.setdefault(self._priority[sid], []).extend(samples)
        return {
            p: DelayStats.from_samples(s) for p, s in sorted(pooled.items())
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        total = sum(len(v) for v in self._samples.values())
        return (
            f"StatsCollector(streams={len(self._samples)}, samples={total}, "
            f"warmup_dropped={self._dropped}, unfinished={self.unfinished})"
        )
