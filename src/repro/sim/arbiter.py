"""Physical-channel arbitration policies.

Each flit time, every directed channel with competing virtual channels picks
one VC to forward a single flit. The policy *is* the priority-handling
scheme of the paper:

* :class:`PriorityPreemptiveArbiter` — the paper's method: the channel goes
  to the highest-priority competing message **every flit time**, so a newly
  arrived high-priority message steals bandwidth from a lower-priority one
  mid-transmission (flit-level preemption via per-priority VCs; section 3).
* :class:`FCFSArbiter` — first-come-first-served among competing VCs,
  breaking ties by arrival order at the channel; models a priority-oblivious
  router and is the fairness baseline.
* :class:`RoundRobinArbiter` — rotating priority, the classic
  starvation-free but priority-oblivious policy.

Non-preemptive *classical* wormhole switching (the Fig. 2 priority-inversion
demonstration) is not an arbiter variant but a VC-mode: with a single VC per
input port, a channel is monopolised by the current message until its tail
passes, regardless of arbitration policy — see
:class:`~repro.sim.network.WormholeSimulator`'s ``vc_mode``.

Arbiters see ``(vc, message)`` candidate pairs and must be deterministic:
given the same candidate multiset they return the same winner, which keeps
simulations reproducible bit-for-bit under a fixed seed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Sequence, Tuple, TYPE_CHECKING

from ..errors import SimulationError
from ..topology.base import Channel
from .flit import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .router import VirtualChannel

__all__ = [
    "ChannelArbiter",
    "PriorityPreemptiveArbiter",
    "FCFSArbiter",
    "RoundRobinArbiter",
]

Candidate = Tuple["VirtualChannel", Message]


def _preemptive_key(c: Candidate) -> Tuple[int, int, int]:
    m = c[1]
    return (m.priority, -m.stream_id, -m.msg_id)


def _fcfs_key(c: Candidate) -> Tuple[int, int, int]:
    m = c[1]
    return (m.release, m.stream_id, m.msg_id)


def _rotation_key(c: Candidate) -> Tuple[int, int]:
    m = c[1]
    return (m.stream_id, m.msg_id)


class ChannelArbiter(ABC):
    """Selects, per channel and per flit time, the VC that forwards a flit."""

    @abstractmethod
    def select(
        self, channel: Channel, candidates: Sequence[Candidate], now: int
    ) -> Candidate:
        """Return the winning candidate (``candidates`` is non-empty)."""

    def reset(self) -> None:
        """Clear any per-run state (called when a simulation starts)."""


class PriorityPreemptiveArbiter(ChannelArbiter):
    """The paper's policy: strict priority, re-evaluated every flit time.

    Ties (equal priority) are broken by stream id then message id, which is
    deterministic and corresponds to a fixed hardware tie-break line. Note
    that equal-priority messages can never interleave on one VC anyway — VC
    ownership (:class:`~repro.sim.router.VirtualChannel`) serialises them —
    so the tie-break only decides which *input port* drains first.
    """

    def select(
        self, channel: Channel, candidates: Sequence[Candidate], now: int
    ) -> Candidate:
        return max(candidates, key=_preemptive_key)


class FCFSArbiter(ChannelArbiter):
    """First-come-first-served: the candidate whose message was released
    earliest wins (ties by stream then message id). Priority-oblivious."""

    def select(
        self, channel: Channel, candidates: Sequence[Candidate], now: int
    ) -> Candidate:
        return min(candidates, key=_fcfs_key)


class RoundRobinArbiter(ChannelArbiter):
    """Rotating-priority arbitration, per channel.

    Candidates are ordered by ``(priority-VC index, stream id)`` and the
    winner is the first candidate strictly after the previous winner in the
    rotation; starvation-free, priority-oblivious.
    """

    def __init__(self) -> None:
        self._last: Dict[Channel, Tuple[int, int]] = {}

    def reset(self) -> None:
        self._last.clear()

    def select(
        self, channel: Channel, candidates: Sequence[Candidate], now: int
    ) -> Candidate:
        ordered = sorted(candidates, key=_rotation_key)
        last = self._last.get(channel)
        winner = ordered[0]
        if last is not None:
            for c in ordered:
                if (c[1].stream_id, c[1].msg_id) > last:
                    winner = c
                    break
        self._last[channel] = (winner[1].stream_id, winner[1].msg_id)
        return winner
