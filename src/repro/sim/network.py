"""The cycle-accurate flit-level wormhole network simulator.

This is the evaluation substrate the paper used but did not publish: a
network of routers (one per topology node) exchanging one flit per busy
channel per flit time, with per-priority virtual channels and a pluggable
physical-channel arbiter. The paper's priority-handling method corresponds
to ``vc_mode="per_priority"`` + :class:`~repro.sim.arbiter.PriorityPreemptiveArbiter`
(the default); classical wormhole switching is ``vc_mode="single"``.

Model rules (one *cycle* = one flit time; see DESIGN.md section 5):

1. Messages are released by periodic sources (:mod:`repro.sim.traffic`) and
   queue at the source router's injection VC of their priority class.
2. Every cycle, each directed channel ``(u, v)`` considers the VCs of router
   ``u`` holding a buffered flit whose owner's next hop is ``v`` and whose
   downstream VC at ``v`` can take a flit (free for headers, same-owner with
   space for body flits). The arbiter picks one; that VC forwards one flit.
3. A header flit allocates the downstream VC (per the VC mode); the tail
   flit releases each VC it drains from. Flits of distinct messages never
   interleave within a VC.
4. Flits arriving at their destination router are absorbed immediately
   (ejection is not a bottleneck); the absorption cycle of the tail flit is
   the message finish time. A lone ``C``-flit message over ``h`` hops
   therefore measures exactly ``h + C - 1``, the paper's network latency.

Buffer capacity defaults to 2 flits per VC: the simulator checks credits
against *pre-cycle* occupancy (no intra-cycle flow-through), so a depth of 1
would insert a bubble every other cycle and break the paper's latency model,
while depth 2 sustains full pipelining. This is a documented modelling
choice, equivalent to single-flit buffers with flow-through crediting.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.streams import MessageStream, StreamSet
from ..errors import SimulationError
from ..topology.base import Channel, Topology
from ..topology.routing import RoutingAlgorithm
from .arbiter import ChannelArbiter, PriorityPreemptiveArbiter
from .engine import SimulationKernel
from .flit import Message
from .gantt import GanttRecorder
from .router import INJECTION_PORT, Router, VirtualChannel
from .stats import StatsCollector
from .trace import TraceRecorder

__all__ = ["WormholeSimulator", "VC_MODES"]

#: Supported virtual-channel organisations.
#:
#: ``per_priority`` — the paper's scheme (one VC per priority level);
#: ``single``       — classical wormhole switching (priority inversion);
#: ``li``           — Li & Mutka's request-downward VC allocation;
#: ``preempt_kill`` — an approximation of Song et al.'s hardware
#:                    preemption with a single VC: when a higher-priority
#:                    header finds the VC held by a lower-priority worm,
#:                    the worm is killed (its in-flight flits discarded,
#:                    the message retransmitted from the source with its
#:                    original release time). High-priority arrival
#:                    behaviour approaches the per-priority scheme at the
#:                    cost of wasted low-priority work — the trade the
#:                    paper's section 3 discusses.
VC_MODES = ("per_priority", "single", "li", "preempt_kill")


class WormholeSimulator(SimulationKernel):
    """Flit-level wormhole network simulation over a routed topology.

    Parameters
    ----------
    topology, routing:
        The network substrate. Routing must be deterministic.
    streams:
        The message streams that will inject traffic. Priorities are ranked
        densely to VC indices (highest priority -> highest VC index).
    arbiter:
        Physical-channel arbitration policy; default is the paper's
        :class:`PriorityPreemptiveArbiter`.
    vc_mode:
        ``"per_priority"`` (paper), ``"single"`` (classical wormhole) or
        ``"li"`` (Li & Mutka's request-downward VC scheme).
    vc_capacity:
        Flit buffer depth per network VC (default 2; see module docstring).
    warmup:
        Messages released before this time are simulated but excluded from
        statistics (the paper discards a 2000-flit-time start-up).
    watchdog_cycles:
        Forwarded to :class:`~repro.sim.engine.SimulationKernel`.
    """

    def __init__(
        self,
        topology: Topology,
        routing: RoutingAlgorithm,
        streams: StreamSet,
        *,
        arbiter: Optional[ChannelArbiter] = None,
        vc_mode: str = "per_priority",
        vc_capacity: int = 2,
        hop_delay: int = 1,
        warmup: int = 0,
        watchdog_cycles: int = 50_000,
        trace: Optional["TraceRecorder"] = None,
        gantt: Optional["GanttRecorder"] = None,
    ):
        super().__init__(watchdog_cycles=watchdog_cycles)
        if vc_mode not in VC_MODES:
            raise SimulationError(
                f"unknown vc_mode {vc_mode!r}; expected one of {VC_MODES}"
            )
        if len(streams) == 0:
            raise SimulationError("cannot simulate an empty stream set")
        if hop_delay < 1:
            raise SimulationError(f"hop_delay must be >= 1, got {hop_delay}")
        self.topology = topology
        self.routing = routing
        self.streams = streams
        self.vc_mode = vc_mode
        self.vc_capacity = vc_capacity
        #: Router pipeline depth: flit times from a flit's arrival at a
        #: router to its earliest possible departure (1 = the paper's
        #: unit-delay model; r gives no-load latency r*h + C - 1, matching
        #: :class:`repro.core.latency.PipelinedLatency`).
        self.hop_delay = hop_delay
        self.arbiter = arbiter or PriorityPreemptiveArbiter()
        self.arbiter.reset()
        self.stats = StatsCollector(warmup=warmup)
        self.trace = trace
        self.gantt = gantt
        #: Committed flit transfers per directed channel (for utilization).
        self.channel_transfers: Dict[Channel, int] = {}

        for s in streams:
            topology.validate_node(s.src)
            topology.validate_node(s.dst)

        # Dense priority ranking: VC index = rank of the stream's priority,
        # scaled by the routing function's VC-class count (torus datelines).
        distinct = sorted({s.priority for s in streams})
        self._prio_rank: Dict[int, int] = {p: i for i, p in enumerate(distinct)}
        self.num_vc_classes = getattr(routing, "num_vc_classes", 1)
        if self.num_vc_classes > 1 and vc_mode != "per_priority":
            raise SimulationError(
                f"routing needs {self.num_vc_classes} VC classes (dateline "
                f"scheme); only vc_mode='per_priority' supports that"
            )
        if vc_mode in ("single", "preempt_kill"):
            self.num_vcs = 1
        else:
            self.num_vcs = len(distinct) * self.num_vc_classes

        # Routers: one input port per incoming channel + injection.
        self._routers: Dict[int, Router] = {}
        upstream: Dict[int, List[int]] = {n: [] for n in topology.nodes()}
        for u, v in topology.channels():
            upstream[v].append(u)
        for n in topology.nodes():
            self._routers[n] = Router(
                n, tuple(upstream[n]), self.num_vcs, vc_capacity
            )

        #: VCs holding at least one buffered flit.
        self._active: Set[VirtualChannel] = set()
        #: msg_id -> per-path-position VC chain (index 0 = injection VC).
        self._chains: Dict[int, List[Optional[VirtualChannel]]] = {}
        self._next_msg_id = 0
        self._in_flight: Set[int] = set()
        #: In-flight messages by id (needed to kill and retransmit).
        self._messages: Dict[int, Message] = {}
        #: Victims selected this cycle under ``preempt_kill``.
        self._kill_pending: Set[int] = set()
        #: Messages killed and re-queued (``preempt_kill`` mode).
        self.retransmissions = 0
        #: Total committed flit transfers (includes absorptions).
        self.total_transfers = 0

    # ------------------------------------------------------------------ #
    # Injection
    # ------------------------------------------------------------------ #

    def _vc_index_for(self, priority: int, vc_class: int = 0) -> int:
        if self.num_vcs == 1:
            return 0
        return self._prio_rank[priority] * self.num_vc_classes + vc_class

    def release_message(self, stream: MessageStream, time: int) -> Message:
        """Schedule one message of ``stream`` for release at ``time``.

        Returns the created message (its ``finish`` is filled in when the
        simulation absorbs its tail flit).
        """
        path = self.routing.route(stream.src, stream.dst)
        classes = (
            self.routing.route_classes(stream.src, stream.dst)
            if self.num_vc_classes > 1 else ()
        )
        msg = Message(
            msg_id=self._next_msg_id,
            stream_id=stream.stream_id,
            priority=stream.priority,
            src=stream.src,
            dst=stream.dst,
            length=stream.length,
            release=time,
            path=path,
            classes=classes,
        )
        self._next_msg_id += 1
        self.schedule(time, msg)
        if self.trace is not None:
            self.trace.on_release(time, msg)
        return msg

    def _inject(self, payloads: List[object]) -> None:
        for msg in payloads:
            assert isinstance(msg, Message)
            vc = self._routers[msg.src].vc(
                INJECTION_PORT, self._vc_index_for(msg.priority)
            )
            vc.enqueue_message(msg)
            self._chains[msg.msg_id] = [None] * len(msg.path)
            if vc.owner is msg:
                self._chains[msg.msg_id][0] = vc
                if self.hop_delay > 1:
                    # Injection pipeline: the header may not leave before
                    # release + hop_delay.
                    vc.ready.append(msg.release + self.hop_delay)
            self._in_flight.add(msg.msg_id)
            self._messages[msg.msg_id] = msg
            if vc.count > 0:
                self._active.add(vc)

    # ------------------------------------------------------------------ #
    # Cycle body
    # ------------------------------------------------------------------ #

    def _has_work(self) -> bool:
        return bool(self._active)

    def _downstream_target(
        self, msg: Message, position: int
    ) -> Optional[VirtualChannel]:
        """Return the downstream VC a flit at ``position`` would enter, or
        ``None`` when no VC is currently available (header blocked)."""
        v = msg.path[position + 1]
        chain = self._chains[msg.msg_id]
        dvc = chain[position + 1]
        if dvc is not None:
            return dvc if dvc.has_space() else None
        router = self._routers[v]
        u = msg.path[position]
        if self.vc_mode == "li":
            free = router.free_vc_indices(u, self._prio_rank[msg.priority])
            if not free:
                return None
            return router.vc(u, free[0])
        vc = router.vc(
            u, self._vc_index_for(msg.priority, msg.vc_class(position))
        )
        if vc.free:
            return vc
        if (
            self.vc_mode == "preempt_kill"
            and vc.owner is not None
            and vc.owner.priority < msg.priority
        ):
            # Song-style hardware preemption: schedule the lower-priority
            # worm for a kill; the header retries once the VC frees.
            self._kill_pending.add(vc.owner.msg_id)
        return None

    def _step(self) -> int:
        # Phase 1: per-channel candidate collection (pre-cycle state only).
        wants: Dict[Channel, List[Tuple[VirtualChannel, Message]]] = {}
        for vc in self._active:
            msg = vc.owner
            if msg is None or vc.count == 0:  # pragma: no cover - defensive
                continue
            if not vc.head_ready(self.now):
                continue
            pos = vc.position
            v = msg.path[pos + 1]
            if v != msg.dst:
                if self._downstream_target(msg, pos) is None:
                    continue
            wants.setdefault((msg.path[pos], v), []).append((vc, msg))

        # Phase 2: arbitrate and commit one flit per contended channel.
        moved = 0
        for channel, candidates in wants.items():
            if len(candidates) == 1:
                vc, msg = candidates[0]
            else:
                vc, msg = self.arbiter.select(channel, candidates, self.now)
            pos = vc.position
            was_first = vc.is_injection and vc.sent == 0
            sender = vc.pop_flit()
            assert sender is msg
            if self.trace is not None and was_first:
                self.trace.on_first_flit(self.now, msg)
            self.channel_transfers[channel] = (
                self.channel_transfers.get(channel, 0) + 1
            )
            if self.gantt is not None:
                self.gantt.on_transfer(self.now, channel, msg)
            if vc.count == 0:
                self._active.discard(vc)
            elif vc.owner is not msg:
                # Tail left and an injection queue promoted a new owner.
                pass
            dst_node = channel[1]
            if dst_node == msg.dst:
                msg.delivered += 1
                if msg.delivered == msg.length:
                    msg.finish = self.now
                    self.stats.record(msg)
                    if self.trace is not None:
                        self.trace.on_finish(self.now, msg)
                    self._in_flight.discard(msg.msg_id)
                    self._messages.pop(msg.msg_id, None)
                    del self._chains[msg.msg_id]
            else:
                chain = self._chains[msg.msg_id]
                dvc = chain[pos + 1]
                if dvc is None:
                    dvc = self._downstream_target(msg, pos)
                    if dvc is None:  # pragma: no cover - defensive
                        raise SimulationError(
                            "downstream VC vanished between phases"
                        )
                    dvc.allocate(msg, pos + 1)
                    chain[pos + 1] = dvc
                dvc.push_flit(
                    self.now + self.hop_delay if self.hop_delay > 1 else None
                )
                self._active.add(dvc)
            # An injection VC that promoted a queued message stays active;
            # record the new owner's chain head.
            if vc.is_injection and vc.owner is not None and vc.owner is not msg:
                promoted = vc.owner
                self._chains[promoted.msg_id][0] = vc
                if self.hop_delay > 1:
                    vc.ready.append(
                        max(promoted.release + self.hop_delay, self.now + 1)
                    )
                self._active.add(vc)
            moved += 1
        self.total_transfers += moved
        if self._kill_pending:
            for victim_id in sorted(self._kill_pending):
                self._kill_message(victim_id)
            self._kill_pending.clear()
        return moved

    def _kill_message(self, msg_id: int) -> None:
        """Kill an in-flight worm and re-queue it from its source.

        All buffered flits are dropped, every VC the worm holds is freed,
        and a fresh copy (same stream, same *original* release time, so the
        measured delay includes the wasted attempt) joins the source's
        injection queue. Partial deliveries are discarded by the receiver.
        """
        victim = self._messages.pop(msg_id, None)
        if victim is None:
            return  # finished in this very cycle
        chain = self._chains.pop(msg_id)
        for vc in chain:
            if vc is None or vc.owner is not victim:
                continue
            vc.force_release()
            self._active.discard(vc)
            if vc.is_injection:
                promoted = vc.promote_queued()
                if promoted is not None:
                    self._chains[promoted.msg_id][0] = vc
                    if self.hop_delay > 1:
                        vc.ready.append(
                            max(promoted.release + self.hop_delay,
                                self.now + 1)
                        )
                    self._active.add(vc)
        self._in_flight.discard(msg_id)
        self.retransmissions += 1

        clone = Message(
            msg_id=self._next_msg_id,
            stream_id=victim.stream_id,
            priority=victim.priority,
            src=victim.src,
            dst=victim.dst,
            length=victim.length,
            release=victim.release,
            path=victim.path,
            classes=victim.classes,
        )
        self._next_msg_id += 1
        if self.trace is not None:
            self.trace.on_release(victim.release, clone)
        inj = self._routers[clone.src].vc(
            INJECTION_PORT, self._vc_index_for(clone.priority)
        )
        inj.enqueue_message(clone)
        self._chains[clone.msg_id] = [None] * len(clone.path)
        if inj.owner is clone:
            self._chains[clone.msg_id][0] = inj
            if self.hop_delay > 1:
                inj.ready.append(self.now + self.hop_delay)
        self._in_flight.add(clone.msg_id)
        self._messages[clone.msg_id] = clone
        if inj.count > 0:
            self._active.add(inj)

    # ------------------------------------------------------------------ #
    # Convenience driver
    # ------------------------------------------------------------------ #

    def simulate_streams(
        self,
        until: int,
        *,
        phases: Optional[Dict[int, int]] = None,
        drain: bool = True,
        drain_limit: int = 1 << 20,
    ) -> StatsCollector:
        """Release periodic traffic for every stream and run the clock.

        Parameters
        ----------
        until:
            Horizon: stream ``i`` releases messages at
            ``phase_i, phase_i + T_i, ...`` strictly below ``until``, and
            the network runs ``until`` cycles.
        phases:
            Per-stream release offsets (default 0 for all — the paper's
            synchronous start; see :mod:`repro.sim.traffic` for randomised
            phases).
        drain:
            Keep running (without new releases) until all in-flight messages
            finish, so late releases still contribute samples.
        drain_limit:
            Hard cap on drain cycles (guards saturated networks).
        """
        phases = phases or {}
        for s in self.streams:
            t = phases.get(s.stream_id, 0)
            if t < 0:
                raise SimulationError(
                    f"stream {s.stream_id}: negative phase {t}"
                )
            while t < until:
                self.release_message(s, t)
                t += s.period
        self.run(until)
        if drain:
            deadline = until + drain_limit
            while self._in_flight and self.now < deadline:
                self.run(min(self.now + 1024, deadline))
        self.stats.unfinished = len(self._in_flight)
        return self.stats

    def link_utilization(self) -> Dict[Channel, float]:
        """Return per-channel utilization (transfers / elapsed flit times).

        Only channels that carried at least one flit appear.
        """
        if self.now <= 0:
            raise SimulationError("no simulated time elapsed yet")
        return {
            ch: n / self.now for ch, n in self.channel_transfers.items()
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WormholeSimulator(nodes={self.topology.num_nodes}, "
            f"streams={len(self.streams)}, vc_mode={self.vc_mode!r}, "
            f"t={self.now})"
        )
