"""The cycle-accurate flit-level wormhole network simulator.

This is the evaluation substrate the paper used but did not publish: a
network of routers (one per topology node) exchanging one flit per busy
channel per flit time, with per-priority virtual channels and a pluggable
physical-channel arbiter. The paper's priority-handling method corresponds
to ``vc_mode="per_priority"`` + :class:`~repro.sim.arbiter.PriorityPreemptiveArbiter`
(the default); classical wormhole switching is ``vc_mode="single"``.

Model rules (one *cycle* = one flit time; see DESIGN.md section 5):

1. Messages are released by periodic sources (:mod:`repro.sim.traffic`) and
   queue at the source router's injection VC of their priority class.
2. Every cycle, each directed channel ``(u, v)`` considers the VCs of router
   ``u`` holding a buffered flit whose owner's next hop is ``v`` and whose
   downstream VC at ``v`` can take a flit (free for headers, same-owner with
   space for body flits). The arbiter picks one; that VC forwards one flit.
3. A header flit allocates the downstream VC (per the VC mode); the tail
   flit releases each VC it drains from. Flits of distinct messages never
   interleave within a VC.
4. Flits arriving at their destination router are absorbed immediately
   (ejection is not a bottleneck); the absorption cycle of the tail flit is
   the message finish time. A lone ``C``-flit message over ``h`` hops
   therefore measures exactly ``h + C - 1``, the paper's network latency.

Buffer capacity defaults to 2 flits per VC: the simulator checks credits
against *pre-cycle* occupancy (no intra-cycle flow-through), so a depth of 1
would insert a bubble every other cycle and break the paper's latency model,
while depth 2 sustains full pipelining. This is a documented modelling
choice, equivalent to single-flit buffers with flow-through crediting.

Execution strategy: the simulator keeps a *movable* set — VCs whose head
flit could plausibly move this cycle — distinct from the set of VCs merely
holding flits. A header that finds its downstream VC occupied (or its
allocated VC full) is parked on a per-VC wait list and woken only when that
VC frees or pops a flit, so blocked and idle VCs cost zero per-cycle work;
per-message channel tuples and downstream VC targets are precomputed at
injection. Cycle-for-cycle results are identical to the straightforward
rescan-everything loop, which remains available as an escape hatch via
``REPRO_SIM_FASTPATH=0`` (or ``fastpath=False``) and is pinned to the fast
path by ``tests/test_fastpath_equivalence.py``.
"""

from __future__ import annotations

import heapq
import os
from collections import Counter
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.streams import MessageStream, StreamSet
from ..errors import SimulationError
from ..topology.base import Channel, Topology
from ..topology.degraded import normalize_link
from ..topology.routing import RoutingAlgorithm
from .arbiter import ChannelArbiter, PriorityPreemptiveArbiter
from .engine import SimulationKernel
from .flit import Message
from .gantt import GanttRecorder
from .router import INJECTION_PORT, Router, VirtualChannel
from .stats import StatsCollector
from .trace import TraceRecorder

__all__ = ["WormholeSimulator", "VC_MODES"]

#: Supported virtual-channel organisations.
#:
#: ``per_priority`` — the paper's scheme (one VC per priority level);
#: ``single``       — classical wormhole switching (priority inversion);
#: ``li``           — Li & Mutka's request-downward VC allocation;
#: ``preempt_kill`` — an approximation of Song et al.'s hardware
#:                    preemption with a single VC: when a higher-priority
#:                    header finds the VC held by a lower-priority worm,
#:                    the worm is killed (its in-flight flits discarded,
#:                    the message retransmitted from the source with its
#:                    original release time). High-priority arrival
#:                    behaviour approaches the per-priority scheme at the
#:                    cost of wasted low-priority work — the trade the
#:                    paper's section 3 discusses.
VC_MODES = ("per_priority", "single", "li", "preempt_kill")


class WormholeSimulator(SimulationKernel):
    """Flit-level wormhole network simulation over a routed topology.

    Parameters
    ----------
    topology, routing:
        The network substrate. Routing must be deterministic.
    streams:
        The message streams that will inject traffic. Priorities are ranked
        densely to VC indices (highest priority -> highest VC index).
    arbiter:
        Physical-channel arbitration policy; default is the paper's
        :class:`PriorityPreemptiveArbiter`.
    vc_mode:
        ``"per_priority"`` (paper), ``"single"`` (classical wormhole) or
        ``"li"`` (Li & Mutka's request-downward VC scheme).
    vc_capacity:
        Flit buffer depth per network VC (default 2; see module docstring).
    warmup:
        Messages released before this time are simulated but excluded from
        statistics (the paper discards a 2000-flit-time start-up).
    watchdog_cycles:
        Forwarded to :class:`~repro.sim.engine.SimulationKernel`.
    fastpath:
        Use the event-driven movable-set cycle body (default). ``False``
        selects the reference rescan-everything loop; ``None`` reads the
        ``REPRO_SIM_FASTPATH`` environment variable (``0`` disables).
        Both paths produce bit-identical statistics.
    """

    def __init__(
        self,
        topology: Topology,
        routing: RoutingAlgorithm,
        streams: StreamSet,
        *,
        arbiter: Optional[ChannelArbiter] = None,
        vc_mode: str = "per_priority",
        vc_capacity: int = 2,
        hop_delay: int = 1,
        warmup: int = 0,
        watchdog_cycles: int = 50_000,
        trace: Optional["TraceRecorder"] = None,
        gantt: Optional["GanttRecorder"] = None,
        fastpath: Optional[bool] = None,
    ):
        super().__init__(watchdog_cycles=watchdog_cycles)
        if vc_mode not in VC_MODES:
            raise SimulationError(
                f"unknown vc_mode {vc_mode!r}; expected one of {VC_MODES}"
            )
        if len(streams) == 0:
            raise SimulationError("cannot simulate an empty stream set")
        if hop_delay < 1:
            raise SimulationError(f"hop_delay must be >= 1, got {hop_delay}")
        self.topology = topology
        self.routing = routing
        self.streams = streams
        self.vc_mode = vc_mode
        self.vc_capacity = vc_capacity
        #: Router pipeline depth: flit times from a flit's arrival at a
        #: router to its earliest possible departure (1 = the paper's
        #: unit-delay model; r gives no-load latency r*h + C - 1, matching
        #: :class:`repro.core.latency.PipelinedLatency`).
        self.hop_delay = hop_delay
        self.arbiter = arbiter or PriorityPreemptiveArbiter()
        self.arbiter.reset()
        self.stats = StatsCollector(warmup=warmup)
        self.trace = trace
        self.gantt = gantt
        if fastpath is None:
            fastpath = os.environ.get("REPRO_SIM_FASTPATH", "1") not in (
                "0", "false", "no", "off",
            )
        #: Whether the event-driven cycle body is in use (see module doc).
        self.fastpath = bool(fastpath)

        #: Directed channels numbered densely *in sorted order*, so that
        #: sorting by channel id and sorting by channel tuple agree (the
        #: commit loop visits channels in this canonical order on both
        #: paths — see _step_fast). Transfer counts live in a flat list
        #: indexed by channel id (int indexing beats tuple hashing in the
        #: hot loop); ``channel_transfers`` re-materialises the public
        #: Counter view on demand.
        self._chan_list: List[Channel] = sorted(topology.channels())
        self._chan_id: Dict[Channel, int] = {
            ch: i for i, ch in enumerate(self._chan_list)
        }
        self._transfer_counts: List[int] = [0] * len(self._chan_list)

        for s in streams:
            topology.validate_node(s.src)
            topology.validate_node(s.dst)

        # Dense priority ranking: VC index = rank of the stream's priority,
        # scaled by the routing function's VC-class count (torus datelines).
        distinct = sorted({s.priority for s in streams})
        self._prio_rank: Dict[int, int] = {p: i for i, p in enumerate(distinct)}
        self.num_vc_classes = getattr(routing, "num_vc_classes", 1)
        if self.num_vc_classes > 1 and vc_mode != "per_priority":
            raise SimulationError(
                f"routing needs {self.num_vc_classes} VC classes (dateline "
                f"scheme); only vc_mode='per_priority' supports that"
            )
        if vc_mode in ("single", "preempt_kill"):
            self.num_vcs = 1
        else:
            self.num_vcs = len(distinct) * self.num_vc_classes

        # Routers: one input port per incoming channel + injection.
        self._routers: Dict[int, Router] = {}
        upstream: Dict[int, List[int]] = {n: [] for n in topology.nodes()}
        for u, v in topology.channels():
            upstream[v].append(u)
        for n in topology.nodes():
            self._routers[n] = Router(
                n, tuple(upstream[n]), self.num_vcs, vc_capacity
            )

        #: VCs holding at least one buffered flit (reference path only;
        #: the fast path tracks `_movable` + wait lists instead).
        self._active: Set[VirtualChannel] = set()
        #: Fast path: VCs whose head flit may move this cycle.
        self._movable: Set[VirtualChannel] = set()
        #: Fast path: upstream VCs waiting for the key VC to be released
        #: (blocked headers; woken by tail pop / kill of the key VC).
        self._wait_free: Dict[VirtualChannel, List[VirtualChannel]] = {}
        #: Fast path: the (unique) upstream VC waiting for the key VC to
        #: regain buffer space (woken by any flit pop from the key VC).
        self._wait_space: Dict[VirtualChannel, VirtualChannel] = {}
        #: Fast path: (ready_time, seq, vc) heap of parked heads that are
        #: waiting out the router pipeline (hop_delay > 1 only).
        self._ready_heap: List[Tuple[int, int, VirtualChannel]] = []
        self._ready_seq = 0
        #: stream_id -> (path, per-position (channel id, downstream
        #: target) pairs), computed once per stream path, attached at
        #: injection. The path key guards against mid-simulation routing
        #: swaps: messages released before a swap keep their old path and
        #: must not share hop info with post-swap releases.
        self._hopinfo: Dict[
            int,
            Tuple[Tuple[int, ...], Tuple[Tuple[int, object], ...]],
        ] = {}
        #: msg_id -> per-path-position VC chain (index 0 = injection VC).
        self._chains: Dict[int, List[Optional[VirtualChannel]]] = {}
        self._next_msg_id = 0
        self._in_flight: Set[int] = set()
        #: In-flight messages by id (needed to kill and retransmit).
        self._messages: Dict[int, Message] = {}
        #: Victims selected this cycle under ``preempt_kill``.
        self._kill_pending: Set[int] = set()
        #: Messages killed and re-queued (``preempt_kill`` mode).
        self.retransmissions = 0
        #: Messages dropped because a physical link on their route was
        #: failed (in flight at :meth:`fail_link` time, or released while
        #: the link was down). Unlike ``preempt_kill`` victims they are
        #: *not* retransmitted — the stream's route is gone until the
        #: routing function is swapped (:meth:`set_routing`).
        self.link_drops = 0
        #: Failed physical links as normalised ``(min, max)`` node pairs.
        self._failed_links: Set[Tuple[int, int]] = set()
        #: Channel ids of both directions of every failed link.
        self._dead_channels: Set[int] = set()
        #: Total committed flit transfers (includes absorptions).
        self.total_transfers = 0
        # Bind the cycle body once; the instance attribute shadows the
        # dispatching class method, sparing a call layer per cycle.
        self._step = self._step_fast if self.fastpath else self._step_slow

    # ------------------------------------------------------------------ #
    # Injection
    # ------------------------------------------------------------------ #

    def _vc_index_for(self, priority: int, vc_class: int = 0) -> int:
        if self.num_vcs == 1:
            return 0
        return self._prio_rank[priority] * self.num_vc_classes + vc_class

    def release_message(self, stream: MessageStream, time: int) -> Message:
        """Schedule one message of ``stream`` for release at ``time``.

        Returns the created message (its ``finish`` is filled in when the
        simulation absorbs its tail flit).
        """
        path = self.routing.route(stream.src, stream.dst)
        classes = (
            self.routing.route_classes(stream.src, stream.dst)
            if self.num_vc_classes > 1 else ()
        )
        msg = Message(
            msg_id=self._next_msg_id,
            stream_id=stream.stream_id,
            priority=stream.priority,
            src=stream.src,
            dst=stream.dst,
            length=stream.length,
            release=time,
            path=path,
            classes=classes,
        )
        self._next_msg_id += 1
        self.schedule(time, msg)
        if self.trace is not None:
            self.trace.on_release(time, msg)
        return msg

    def _hop_info(
        self, msg: Message
    ) -> Tuple[Tuple[int, object], ...]:
        """Per-stream hop cache: for each path position, the id of the
        channel crossed and the downstream VC it feeds (``None`` for the
        absorbing hop; the whole port VC pool under ``vc_mode="li"``,
        whose choice is dynamic)."""
        cached = self._hopinfo.get(msg.stream_id)
        path = msg.path
        if cached is not None and cached[0] == path:
            return cached[1]
        pairs: List[Tuple[int, object]] = []
        for i in range(len(path) - 1):
            u, v = path[i], path[i + 1]
            if v == msg.dst:
                tgt: object = None
            elif self.vc_mode == "li":
                tgt = self._routers[v].ports[u]
            else:
                tgt = self._routers[v].vc(
                    u,
                    self._vc_index_for(msg.priority, msg.vc_class(i)),
                )
            pairs.append((self._chan_id[(u, v)], tgt))
        info = tuple(pairs)
        self._hopinfo[msg.stream_id] = (path, info)
        return info

    def _path_dead(self, path: Sequence[int]) -> bool:
        """Does ``path`` cross any channel of a currently failed link?"""
        chan_id = self._chan_id
        dead = self._dead_channels
        for i in range(len(path) - 1):
            if chan_id[(path[i], path[i + 1])] in dead:
                return True
        return False

    def _inject(self, payloads: List[object]) -> None:
        fast = self.fastpath
        for msg in payloads:
            assert isinstance(msg, Message)
            if self._dead_channels and self._path_dead(msg.path):
                # Released while a link on its (pre-swap) route is down:
                # the message is lost at the source, deterministically.
                self.link_drops += 1
                if self._obs is not None:
                    self._obs.emit("i", "sim.link_drop", "sim", {
                        "t": self.now, "msg": msg.msg_id,
                        "stream": msg.stream_id, "at": "inject",
                    })
                continue
            vc = self._routers[msg.src].vc(
                INJECTION_PORT, self._vc_index_for(msg.priority)
            )
            if fast and msg.hop_cache is None:
                msg.hop_cache = self._hop_info(msg)
            vc.enqueue_message(msg)
            chain: List[Optional[VirtualChannel]] = [None] * len(msg.path)
            msg.chain = chain
            self._chains[msg.msg_id] = chain
            if vc.owner is msg:
                chain[0] = vc
                if self.hop_delay > 1:
                    # Injection pipeline: the header may not leave before
                    # release + hop_delay.
                    vc.ready.append(msg.release + self.hop_delay)
                if fast:
                    # Newly promoted owner: the VC was free before, so it
                    # is tracked nowhere and must (re)enter the movable
                    # set. If another message owns the VC, its state is
                    # unaffected by a queue append.
                    self._movable.add(vc)
            self._in_flight.add(msg.msg_id)
            self._messages[msg.msg_id] = msg
            if not fast and vc.count > 0:
                self._active.add(vc)

    # ------------------------------------------------------------------ #
    # Cycle body
    # ------------------------------------------------------------------ #

    def _has_work(self) -> bool:
        return bool(self._movable if self.fastpath else self._active)

    def _next_event_time(self) -> Optional[int]:
        """Earliest parked head-ready time (fast path, hop_delay > 1).

        Lazily drops entries whose VC was emptied by a kill since parking.
        """
        heap = self._ready_heap
        while heap:
            t, _, vc = heap[0]
            if vc.owner is None or vc.count == 0:
                heapq.heappop(heap)
                continue
            return t
        return None

    def _blocked_work(self) -> bool:
        return bool(self._in_flight)

    def _downstream_target(
        self, msg: Message, position: int
    ) -> Optional[VirtualChannel]:
        """Return the downstream VC a flit at ``position`` would enter, or
        ``None`` when no VC is currently available (header blocked)."""
        v = msg.path[position + 1]
        chain = self._chains[msg.msg_id]
        dvc = chain[position + 1]
        if dvc is not None:
            return dvc if dvc.has_space() else None
        router = self._routers[v]
        u = msg.path[position]
        if self.vc_mode == "li":
            free = router.free_vc_indices(u, self._prio_rank[msg.priority])
            if not free:
                return None
            return router.vc(u, free[0])
        vc = router.vc(
            u, self._vc_index_for(msg.priority, msg.vc_class(position))
        )
        if vc.free:
            return vc
        if (
            self.vc_mode == "preempt_kill"
            and vc.owner is not None
            and vc.owner.priority < msg.priority
        ):
            # Song-style hardware preemption: schedule the lower-priority
            # worm for a kill; the header retries once the VC frees.
            self._kill_pending.add(vc.owner.msg_id)
        return None

    def _step(self) -> int:
        if self.fastpath:
            return self._step_fast()
        return self._step_slow()

    def _step_fast(self) -> int:
        """Event-driven cycle body: identical semantics to
        :meth:`_step_slow`, but only *movable* VCs are examined.

        Phase 1 walks the movable set, parking anything blocked — on the
        downstream VC's wait list (woken when that VC frees or pops) or on
        the head-ready heap (router pipeline). Phase 2 commits one flit per
        contended channel with the pop/push bookkeeping inlined, waking
        parked VCs as the events they wait for occur. Wait entries are
        hints, not state: phase 1 re-validates every woken VC against the
        actual pre-cycle occupancy, so spurious wakes are harmless and
        the two paths stay cycle-for-cycle identical.
        """
        now = self.now
        movable = self._movable
        heap = self._ready_heap
        # Observability: park/arbitration events are buffered and emitted
        # sorted at cycle end — the movable set iterates in id() order,
        # which varies between runs, and traces must not.
        obs = self._obs
        ev = [] if obs is not None else None
        while heap and heap[0][0] <= now:
            vc = heapq.heappop(heap)[2]
            if vc.count and vc.owner is not None:
                movable.add(vc)

        wait_free = self._wait_free
        wait_space = self._wait_space
        chains = self._chains
        li = self.vc_mode == "li"
        kill = self.vc_mode == "preempt_kill"
        last_vc = self.num_vcs - 1
        hop_delay = self.hop_delay
        deep = hop_delay > 1

        # Phase 1: candidate collection against pre-cycle state. A wants
        # entry (keyed by channel id) is a bare VC until a second
        # candidate contends for the channel, at which point it becomes a
        # ``(vc, msg)`` list for the arbiter (owners are stable until the
        # channel commits, so deferred ``.owner`` reads match pre-cycle
        # state).
        wants: Dict[int, object] = {}
        for vc in list(movable):
            if vc.count == 0:
                # Emptied, drained or released since it was woken
                # (release always zeroes the count, so this covers all).
                movable.discard(vc)
                continue
            msg = vc.owner
            if deep:
                ready = vc.ready
                if ready and ready[0] > now:
                    movable.discard(vc)
                    self._ready_seq += 1
                    heapq.heappush(heap, (ready[0], self._ready_seq, vc))
                    continue
            cid, tgt = msg.hop_cache[vc.position]
            if tgt is not None:
                if li:
                    dvc = chains[msg.msg_id][vc.position + 1]
                    if dvc is not None:
                        if dvc.count >= dvc.capacity:
                            movable.discard(vc)
                            wait_space[dvc] = vc
                            if ev is not None:
                                ev.append(("sim.vc_wait", msg.msg_id, {
                                    "msg": msg.msg_id,
                                    "stream": msg.stream_id,
                                    "position": vc.position,
                                    "waiting_for": "space",
                                }))
                            continue
                    else:
                        bound = min(self._prio_rank[msg.priority], last_vc)
                        for i in range(bound, -1, -1):
                            if tgt[i].owner is None:
                                break
                        else:
                            movable.discard(vc)
                            for i in range(bound, -1, -1):
                                wait_free.setdefault(tgt[i], []).append(vc)
                            if ev is not None:
                                ev.append(("sim.vc_wait", msg.msg_id, {
                                    "msg": msg.msg_id,
                                    "stream": msg.stream_id,
                                    "position": vc.position,
                                    "waiting_for": "free",
                                }))
                            continue
                else:
                    towner = tgt.owner
                    if towner is msg:
                        if tgt.count >= tgt.capacity:
                            movable.discard(vc)
                            wait_space[tgt] = vc
                            if ev is not None:
                                ev.append(("sim.vc_wait", msg.msg_id, {
                                    "msg": msg.msg_id,
                                    "stream": msg.stream_id,
                                    "position": vc.position,
                                    "waiting_for": "space",
                                }))
                            continue
                    elif towner is not None:
                        movable.discard(vc)
                        waiters = wait_free.get(tgt)
                        if waiters is None:
                            wait_free[tgt] = [vc]
                        else:
                            waiters.append(vc)
                        if ev is not None:
                            ev.append(("sim.vc_wait", msg.msg_id, {
                                "msg": msg.msg_id,
                                "stream": msg.stream_id,
                                "position": vc.position,
                                "waiting_for": "free",
                                "holder": towner.msg_id,
                            }))
                        if kill and towner.priority < msg.priority:
                            self._kill_pending.add(towner.msg_id)
                        continue
            cur = wants.setdefault(cid, vc)
            if cur is not vc:
                if type(cur) is list:
                    cur.append((vc, msg))
                else:
                    wants[cid] = [(cur, cur.owner), (vc, msg)]

        # Phase 2: arbitrate and commit one flit per contended channel.
        # Commit order is immaterial in every mode but "li": each VC
        # appears in exactly one channel's candidates and downstream
        # targets are keyed by input port, so commits are independent.
        # Under vc_mode="li", however, the allocation re-scan reads the
        # port pool's *current* owners, so a tail release committed
        # earlier in the same cycle can change which VC index a later
        # header picks — there (and only there) channels commit in
        # canonical sorted order, pinning both execution paths (and
        # re-runs under hash randomisation) to identical results.
        # VCs that end the cycle drained (released tails, mid-worm
        # bubbles) are *not* discarded from the movable set here — the
        # count == 0 test at the top of phase 1 reclaims them next cycle,
        # which costs less than the discard/re-add churn of a streaming
        # worm whose buffer empties and refills every cycle.
        moved = 0
        tcounts = self._transfer_counts
        chan_list = self._chan_list
        trace = self.trace
        gantt = self.gantt
        select = self.arbiter.select
        record = self.stats.record
        for cid, cand in sorted(wants.items()) if li else wants.items():
            if type(cand) is list:
                vc, msg = select(chan_list[cid], cand, now)
                if ev is not None:
                    ev.append(("sim.preempt", cid, {
                        "channel": list(chan_list[cid]),
                        "winner": msg.msg_id,
                        "stream": msg.stream_id,
                        "losers": sorted(
                            m.msg_id for _, m in cand if m is not msg
                        ),
                    }))
            else:
                vc = cand
                msg = vc.owner
            pos = vc.position
            if trace is not None and vc.is_injection and vc.sent == 0:
                trace.on_first_flit(now, msg)
            # Inlined VirtualChannel.pop_flit plus wake bookkeeping.
            count = vc.count - 1
            sent = vc.sent + 1
            vc.count = count
            vc.sent = sent
            if deep and vc.ready:
                vc.ready.popleft()
            if sent == msg.length:
                # Tail left: release the VC, wake blocked headers.
                vc.owner = None
                vc.count = 0
                vc.received = 0
                vc.sent = 0
                if deep:
                    vc.ready.clear()
                if wait_free:
                    waiters = wait_free.pop(vc, None)
                    if waiters:
                        movable.update(waiters)
                if wait_space:
                    waiter = wait_space.pop(vc, None)
                    if waiter is not None:
                        movable.add(waiter)
                if vc.queue:
                    # Injection VC (only they queue): promote the next
                    # message; it re-allocates at position 0 — the same
                    # value ``pos`` read above, so the push branch below
                    # is unaffected.
                    vc._promote()
                    promoted = vc.owner
                    promoted.chain[0] = vc
                    if deep:
                        vc.ready.append(
                            max(promoted.release + hop_delay, now + 1)
                        )
                    # vc keeps its movable slot for the promoted owner.
            elif wait_space:
                waiter = wait_space.pop(vc, None)
                if waiter is not None:
                    movable.add(waiter)
            tcounts[cid] += 1
            if gantt is not None:
                gantt.on_transfer(now, chan_list[cid], msg)
            tgt = msg.hop_cache[pos][1]
            if tgt is None:
                # Absorbing hop: the flit arrived at the destination.
                msg.delivered += 1
                if msg.delivered == msg.length:
                    msg.finish = now
                    record(msg)
                    if trace is not None:
                        trace.on_finish(now, msg)
                    self._in_flight.discard(msg.msg_id)
                    self._messages.pop(msg.msg_id, None)
                    del chains[msg.msg_id]
            else:
                chain = msg.chain
                dvc = chain[pos + 1]
                if dvc is None:
                    if li:
                        bound = min(self._prio_rank[msg.priority], last_vc)
                        for i in range(bound, -1, -1):
                            if tgt[i].owner is None:
                                dvc = tgt[i]
                                break
                        if dvc is None:  # pragma: no cover - defensive
                            raise SimulationError(
                                "downstream VC vanished between phases"
                            )
                    else:
                        dvc = tgt
                    dvc.allocate(msg, pos + 1)
                    chain[pos + 1] = dvc
                # Inlined VirtualChannel.push_flit (``received`` is not
                # maintained here: nothing on the fast path reads it and
                # allocate/release reset it).
                dcount = dvc.count
                if dcount == 0:
                    movable.add(dvc)
                dvc.count = dcount + 1
                if deep:
                    dvc.ready.append(now + hop_delay)
            moved += 1
        self.total_transfers += moved
        if ev:
            for name, _, args in sorted(ev, key=lambda e: (e[0], e[1])):
                obs.emit("i", name, "sim", dict(args, t=now))
        if self._kill_pending:
            for victim_id in sorted(self._kill_pending):
                self._kill_message(victim_id)
            self._kill_pending.clear()
        return moved

    def _step_slow(self) -> int:
        # Phase 1: per-channel candidate collection (pre-cycle state only).
        wants: Dict[Channel, List[Tuple[VirtualChannel, Message]]] = {}
        for vc in self._active:
            msg = vc.owner
            if msg is None or vc.count == 0:  # pragma: no cover - defensive
                continue
            if not vc.head_ready(self.now):
                continue
            pos = vc.position
            v = msg.path[pos + 1]
            if v != msg.dst:
                if self._downstream_target(msg, pos) is None:
                    continue
            wants.setdefault((msg.path[pos], v), []).append((vc, msg))

        # Phase 2: arbitrate and commit one flit per contended channel —
        # under vc_mode="li" in canonical (sorted channel) order; see the
        # commit-order note in _step_fast. Both paths must pick the same
        # order there or they can diverge on which VC index a header
        # allocates.
        moved = 0
        commits = (
            sorted(wants.items()) if self.vc_mode == "li" else wants.items()
        )
        for channel, candidates in commits:
            if len(candidates) == 1:
                vc, msg = candidates[0]
            else:
                vc, msg = self.arbiter.select(channel, candidates, self.now)
            pos = vc.position
            was_first = vc.is_injection and vc.sent == 0
            sender = vc.pop_flit()
            assert sender is msg
            if self.trace is not None and was_first:
                self.trace.on_first_flit(self.now, msg)
            self._transfer_counts[self._chan_id[channel]] += 1
            if self.gantt is not None:
                self.gantt.on_transfer(self.now, channel, msg)
            if vc.count == 0:
                self._active.discard(vc)
            elif vc.owner is not msg:
                # Tail left and an injection queue promoted a new owner.
                pass
            dst_node = channel[1]
            if dst_node == msg.dst:
                msg.delivered += 1
                if msg.delivered == msg.length:
                    msg.finish = self.now
                    self.stats.record(msg)
                    if self.trace is not None:
                        self.trace.on_finish(self.now, msg)
                    self._in_flight.discard(msg.msg_id)
                    self._messages.pop(msg.msg_id, None)
                    del self._chains[msg.msg_id]
            else:
                chain = self._chains[msg.msg_id]
                dvc = chain[pos + 1]
                if dvc is None:
                    dvc = self._downstream_target(msg, pos)
                    if dvc is None:  # pragma: no cover - defensive
                        raise SimulationError(
                            "downstream VC vanished between phases"
                        )
                    dvc.allocate(msg, pos + 1)
                    chain[pos + 1] = dvc
                dvc.push_flit(
                    self.now + self.hop_delay if self.hop_delay > 1 else None
                )
                self._active.add(dvc)
            # An injection VC that promoted a queued message stays active;
            # record the new owner's chain head.
            if vc.is_injection and vc.owner is not None and vc.owner is not msg:
                promoted = vc.owner
                self._chains[promoted.msg_id][0] = vc
                if self.hop_delay > 1:
                    vc.ready.append(
                        max(promoted.release + self.hop_delay, self.now + 1)
                    )
                self._active.add(vc)
            moved += 1
        self.total_transfers += moved
        if self._kill_pending:
            for victim_id in sorted(self._kill_pending):
                self._kill_message(victim_id)
            self._kill_pending.clear()
        return moved

    def _discard_message(self, msg_id: int) -> Optional[Message]:
        """Drop an in-flight worm: free every VC it holds (or its slot in
        an injection queue), wake parked waiters, and forget it. No
        retransmission — callers decide what, if anything, happens next.
        Returns the victim, or ``None`` if it already finished.
        """
        victim = self._messages.pop(msg_id, None)
        if victim is None:
            return None
        fast = self.fastpath
        chain = self._chains.pop(msg_id)
        if chain[0] is None:
            # Never promoted: still queued behind the injection VC's
            # current owner. Remove it from that queue.
            inj = self._routers[victim.src].vc(
                INJECTION_PORT, self._vc_index_for(victim.priority)
            )
            try:
                inj.queue.remove(victim)
            except ValueError:  # pragma: no cover - defensive
                pass
        for vc in chain:
            if vc is None or vc.owner is not victim:
                continue
            vc.force_release()
            if fast:
                self._movable.discard(vc)
                # The freed VC may have blocked headers parked on it —
                # this wake is exactly the preemption the kill exists for.
                waiters = self._wait_free.pop(vc, None)
                if waiters:
                    self._movable.update(waiters)
                waiter = self._wait_space.pop(vc, None)
                if waiter is not None:
                    self._movable.add(waiter)
            else:
                self._active.discard(vc)
            if vc.is_injection:
                promoted = vc.promote_queued()
                if promoted is not None:
                    self._chains[promoted.msg_id][0] = vc
                    if self.hop_delay > 1:
                        vc.ready.append(
                            max(promoted.release + self.hop_delay,
                                self.now + 1)
                        )
                    if fast:
                        self._movable.add(vc)
                    else:
                        self._active.add(vc)
        self._in_flight.discard(msg_id)
        return victim

    def _kill_message(self, msg_id: int) -> None:
        """Kill an in-flight worm and re-queue it from its source.

        All buffered flits are dropped, every VC the worm holds is freed,
        and a fresh copy (same stream, same *original* release time, so the
        measured delay includes the wasted attempt) joins the source's
        injection queue. Partial deliveries are discarded by the receiver.
        """
        victim = self._discard_message(msg_id)
        if victim is None:
            return  # finished in this very cycle
        if self._obs is not None:
            self._obs.emit("i", "sim.kill", "sim", {
                "t": self.now, "msg": msg_id, "stream": victim.stream_id,
            })
        fast = self.fastpath
        self.retransmissions += 1

        clone = Message(
            msg_id=self._next_msg_id,
            stream_id=victim.stream_id,
            priority=victim.priority,
            src=victim.src,
            dst=victim.dst,
            length=victim.length,
            release=victim.release,
            path=victim.path,
            classes=victim.classes,
        )
        self._next_msg_id += 1
        if self.trace is not None:
            self.trace.on_release(victim.release, clone)
        inj = self._routers[clone.src].vc(
            INJECTION_PORT, self._vc_index_for(clone.priority)
        )
        if fast:
            clone.hop_cache = victim.hop_cache
        inj.enqueue_message(clone)
        chain: List[Optional[VirtualChannel]] = [None] * len(clone.path)
        clone.chain = chain
        self._chains[clone.msg_id] = chain
        if inj.owner is clone:
            chain[0] = inj
            if self.hop_delay > 1:
                inj.ready.append(self.now + self.hop_delay)
            if fast:
                self._movable.add(inj)
        self._in_flight.add(clone.msg_id)
        self._messages[clone.msg_id] = clone
        if not fast and inj.count > 0:
            self._active.add(inj)

    # ------------------------------------------------------------------ #
    # Link faults
    # ------------------------------------------------------------------ #

    @property
    def failed_links(self) -> frozenset:
        """Currently failed links as normalised ``(min, max)`` pairs."""
        return frozenset(self._failed_links)

    def fail_link(self, u: int, v: int) -> List[int]:
        """Fail the physical link between ``u`` and ``v`` (both directions).

        Every in-flight worm whose route crosses the link is dropped
        deterministically (ascending message id): its buffered flits are
        discarded, the VCs it holds are freed — waking any worms that were
        blocked behind it — and partial deliveries are abandoned by the
        receiver. Messages released while the link is down whose route
        crosses it are lost at the source (see :meth:`_inject`). Neither
        is retransmitted; ``link_drops`` counts both. Returns the dropped
        message ids.
        """
        link = normalize_link(u, v)
        a, b = link
        if (a, b) not in self._chan_id or (b, a) not in self._chan_id:
            raise SimulationError(
                f"no physical link between nodes {a} and {b}"
            )
        if link in self._failed_links:
            raise SimulationError(f"link {link} is already failed")
        self._failed_links.add(link)
        self._dead_channels.add(self._chan_id[(a, b)])
        self._dead_channels.add(self._chan_id[(b, a)])
        victims = [
            msg_id for msg_id in sorted(self._in_flight)
            if self._path_dead(self._messages[msg_id].path)
        ]
        for msg_id in victims:
            self._discard_message(msg_id)
            self.link_drops += 1
        if self._obs is not None:
            self._obs.emit("i", "sim.link_fail", "sim", {
                "t": self.now, "link": [a, b], "dropped": victims,
            })
        return victims

    def restore_link(self, u: int, v: int) -> None:
        """Restore a previously failed link.

        Worms dropped while it was down stay dropped; traffic released
        after the restore crosses the link normally again.
        """
        link = normalize_link(u, v)
        if link not in self._failed_links:
            raise SimulationError(f"link {link} is not failed")
        self._failed_links.discard(link)
        a, b = link
        self._dead_channels.discard(self._chan_id[(a, b)])
        self._dead_channels.discard(self._chan_id[(b, a)])
        if self._obs is not None:
            self._obs.emit("i", "sim.link_restore", "sim", {
                "t": self.now, "link": [a, b],
            })

    def set_routing(self, routing: RoutingAlgorithm) -> None:
        """Swap the routing function mid-simulation.

        Worms already released keep the path computed at their release
        (a worm in flight follows the route its header reserved); only
        future releases route under ``routing``. The replacement must
        need exactly the VC classes the simulator was provisioned with at
        construction — to model reroute-around-failure, construct the
        simulator with a :class:`~repro.topology.FaultAwareRouting` over
        an empty failed set so the detour class exists from the start.
        """
        needed = getattr(routing, "num_vc_classes", 1)
        if needed != self.num_vc_classes:
            raise SimulationError(
                f"replacement routing needs {needed} VC class(es); the "
                f"simulator was provisioned for {self.num_vc_classes}"
            )
        self.routing = routing
        # Per-stream hop caches key on the path they were built for, so
        # stale entries are already harmless; dropping them simply stops
        # dead paths from lingering.
        self._hopinfo.clear()

    # ------------------------------------------------------------------ #
    # Convenience driver
    # ------------------------------------------------------------------ #

    def simulate_streams(
        self,
        until: int,
        *,
        phases: Optional[Dict[int, int]] = None,
        drain: bool = True,
        drain_limit: int = 1 << 20,
    ) -> StatsCollector:
        """Release periodic traffic for every stream and run the clock.

        Parameters
        ----------
        until:
            Horizon: stream ``i`` releases messages at
            ``phase_i, phase_i + T_i, ...`` strictly below ``until``, and
            the network runs ``until`` cycles.
        phases:
            Per-stream release offsets (default 0 for all — the paper's
            synchronous start; see :mod:`repro.sim.traffic` for randomised
            phases).
        drain:
            Keep running (without new releases) until all in-flight messages
            finish, so late releases still contribute samples.
        drain_limit:
            Hard cap on drain cycles (guards saturated networks).
        """
        phases = phases or {}
        for s in self.streams:
            t = phases.get(s.stream_id, 0)
            if t < 0:
                raise SimulationError(
                    f"stream {s.stream_id}: negative phase {t}"
                )
            while t < until:
                self.release_message(s, t)
                t += s.period
        self.run(until)
        if drain:
            deadline = until + drain_limit
            while self._in_flight and self.now < deadline:
                self.run(min(self.now + 1024, deadline))
        self.stats.unfinished = len(self._in_flight)
        return self.stats

    @property
    def channel_transfers(self) -> Counter:
        """Committed flit transfers per directed channel (for utilization).

        Built on demand from the flat per-channel-id counters; channels
        that never carried a flit are omitted (Counter semantics return 0
        for them anyway).
        """
        chan_list = self._chan_list
        return Counter(
            {chan_list[i]: n for i, n in enumerate(self._transfer_counts) if n}
        )

    def link_utilization(self) -> Dict[Channel, float]:
        """Return per-channel utilization (transfers / elapsed flit times).

        Only channels that carried at least one flit appear.
        """
        if self.now <= 0:
            raise SimulationError("no simulated time elapsed yet")
        return {
            ch: n / self.now for ch, n in self.channel_transfers.items()
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WormholeSimulator(nodes={self.topology.num_nodes}, "
            f"streams={len(self.streams)}, vc_mode={self.vc_mode!r}, "
            f"t={self.now})"
        )
