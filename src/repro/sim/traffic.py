"""Workload generation: the paper's simulation traffic model.

Section 5 of the paper fixes the following workload for its tables (numeric
constants reconstructed from the OCR-damaged text; see DESIGN.md):

* 10x10 two-dimensional mesh, X-Y routing;
* each processing node sources **at most one** message stream;
* the destination of each stream is chosen with a spatial uniform
  distribution (any other node, uniformly);
* maximum message size ``C_i`` uniform on ``[10, 40]`` flits;
* minimum inter-generation time ``T_i`` uniform on ``[400, 900]`` flit
  times;
* every stream is periodic; priorities are assigned uniformly over the
  available priority levels ("each message stream has a priority value P_i
  with probability 1/(number of priority levels)");
* runs last 30000 flit times with the first 2000 discarded as start-up.

:class:`PaperWorkload` reproduces that generator with every constant
exposed as a parameter, plus helpers for release phases. All randomness
draws from a seeded :class:`numpy.random.Generator` so experiments are
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..core.streams import MessageStream, StreamSet
from ..errors import SimulationError
from ..topology.base import Topology
from ..topology.hypercube import Hypercube
from ..topology.mesh import Mesh2D

__all__ = [
    "PaperWorkload",
    "PatternWorkload",
    "transpose_pattern",
    "bit_reversal_pattern",
    "hotspot_pattern",
    "zero_phases",
    "random_phases",
]


@dataclass
class PaperWorkload:
    """Random periodic-stream workload generator (paper section 5).

    Parameters mirror the paper's constants; ``priority_levels`` is the
    table parameter (1, 4, 5 or 15 in the paper) and ``num_streams`` is 20
    or 60. Priorities are the integers ``1 .. priority_levels`` with larger
    values meaning higher priority, matching :class:`~repro.core.streams.MessageStream`.
    """

    num_streams: int
    priority_levels: int
    length_range: Tuple[int, int] = (10, 40)
    period_range: Tuple[int, int] = (400, 900)
    #: Deadline assigned to generated streams, as a multiple of the period.
    #: The paper's tables never test deadlines (they compare U against
    #: measured latency), so the conventional D = T is the default.
    deadline_factor: float = 1.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_streams < 1:
            raise SimulationError("num_streams must be >= 1")
        if self.priority_levels < 1:
            raise SimulationError("priority_levels must be >= 1")
        lo, hi = self.length_range
        if not (1 <= lo <= hi):
            raise SimulationError(f"bad length_range {self.length_range}")
        lo, hi = self.period_range
        if not (1 <= lo <= hi):
            raise SimulationError(f"bad period_range {self.period_range}")
        if self.deadline_factor <= 0:
            raise SimulationError("deadline_factor must be positive")

    def generate(self, topology: Topology) -> StreamSet:
        """Draw a stream set over ``topology``.

        Sources are distinct nodes (at most one stream per node, as in the
        paper); each destination is uniform over the other nodes.
        """
        n = topology.num_nodes
        if self.num_streams > n:
            raise SimulationError(
                f"cannot place {self.num_streams} single-source streams on "
                f"{n} nodes"
            )
        rng = np.random.default_rng(self.seed)
        sources = rng.choice(n, size=self.num_streams, replace=False)
        streams = StreamSet()
        for i, src in enumerate(int(s) for s in sources):
            dst = int(rng.integers(0, n - 1))
            if dst >= src:
                dst += 1  # uniform over nodes != src
            length = int(rng.integers(self.length_range[0],
                                      self.length_range[1] + 1))
            period = int(rng.integers(self.period_range[0],
                                      self.period_range[1] + 1))
            priority = int(rng.integers(1, self.priority_levels + 1))
            deadline = max(1, int(round(period * self.deadline_factor)))
            streams.add(
                MessageStream(
                    stream_id=i,
                    src=src,
                    dst=dst,
                    priority=priority,
                    period=period,
                    length=length,
                    deadline=deadline,
                )
            )
        return streams


# ---------------------------------------------------------------------- #
# Structured destination patterns (classic NoC workloads)
# ---------------------------------------------------------------------- #


def transpose_pattern(topology: Topology) -> Dict[int, int]:
    """Matrix-transpose pattern on a square 2-D mesh: ``(x, y) -> (y, x)``.

    Nodes on the diagonal have no partner and are omitted. Transpose
    traffic concentrates load around the diagonal, the classic adversarial
    pattern for dimension-ordered routing.
    """
    if not isinstance(topology, Mesh2D) or topology.width != topology.height:
        raise SimulationError(
            "transpose_pattern needs a square Mesh2D"
        )
    out: Dict[int, int] = {}
    for n in topology.nodes():
        x, y = topology.xy(n)
        if x != y:
            out[n] = topology.node_xy(y, x)
    return out


def bit_reversal_pattern(topology: Topology) -> Dict[int, int]:
    """Bit-reversal pattern on a hypercube (or any power-of-two node set):
    node ``b_{k-1}..b_0`` sends to ``b_0..b_{k-1}``."""
    n = topology.num_nodes
    if n & (n - 1):
        raise SimulationError(
            "bit_reversal_pattern needs a power-of-two node count"
        )
    bits = n.bit_length() - 1
    out: Dict[int, int] = {}
    for src in topology.nodes():
        dst = int(f"{src:0{bits}b}"[::-1], 2) if bits else src
        if dst != src:
            out[src] = dst
    return out


def hotspot_pattern(
    topology: Topology,
    hotspot: int,
    *,
    num_sources: Optional[int] = None,
    seed: Optional[int] = None,
) -> Dict[int, int]:
    """All (or a sample of) nodes send to one hotspot node.

    Models the many-to-one congestion of a shared service (host processor,
    memory controller) — the paper's Fig. 1 host is exactly such a node.
    """
    topology.validate_node(hotspot)
    sources = [n for n in topology.nodes() if n != hotspot]
    if num_sources is not None:
        if not 1 <= num_sources <= len(sources):
            raise SimulationError(
                f"num_sources must be in [1, {len(sources)}]"
            )
        rng = np.random.default_rng(seed)
        picked = rng.choice(len(sources), size=num_sources, replace=False)
        sources = [sources[i] for i in sorted(int(i) for i in picked)]
    return {src: hotspot for src in sources}


@dataclass
class PatternWorkload:
    """Periodic streams over an explicit source->destination pattern.

    Combines a structured destination map (e.g. :func:`transpose_pattern`)
    with the paper's timing parameters. Priorities are assigned uniformly
    over ``1..priority_levels`` like :class:`PaperWorkload`.
    """

    pattern: Dict[int, int]
    priority_levels: int = 1
    length_range: Tuple[int, int] = (10, 40)
    period_range: Tuple[int, int] = (400, 900)
    deadline_factor: float = 1.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.pattern:
            raise SimulationError("empty destination pattern")
        if self.priority_levels < 1:
            raise SimulationError("priority_levels must be >= 1")
        for src, dst in self.pattern.items():
            if src == dst:
                raise SimulationError(
                    f"pattern maps node {src} to itself"
                )

    def generate(self, topology: Topology) -> StreamSet:
        """Draw timing parameters for every pattern pair."""
        rng = np.random.default_rng(self.seed)
        streams = StreamSet()
        for i, src in enumerate(sorted(self.pattern)):
            dst = self.pattern[src]
            topology.validate_node(src)
            topology.validate_node(dst)
            period = int(rng.integers(self.period_range[0],
                                      self.period_range[1] + 1))
            streams.add(MessageStream(
                stream_id=i,
                src=src,
                dst=dst,
                priority=int(rng.integers(1, self.priority_levels + 1)),
                period=period,
                length=int(rng.integers(self.length_range[0],
                                        self.length_range[1] + 1)),
                deadline=max(1, int(round(period * self.deadline_factor))),
            ))
        return streams


def zero_phases(streams: StreamSet) -> Dict[int, int]:
    """All streams released synchronously at time 0 (the analysis's critical
    instant; the paper's simulations start all sources together and discard
    the start-up transient)."""
    return {s.stream_id: 0 for s in streams}


def random_phases(
    streams: StreamSet, seed: Optional[int] = None
) -> Dict[int, int]:
    """Independent uniform release offsets in ``[0, T_i)`` per stream.

    Useful as a robustness check: the measured average latency should not
    depend strongly on the release alignment once the run is long relative
    to the periods.
    """
    rng = np.random.default_rng(seed)
    return {
        s.stream_id: int(rng.integers(0, s.period)) for s in streams
    }
