"""Deterministic fault injection for the channel broker (``repro chaos``).

Layout:

:mod:`repro.faults.plane`
    The fault plane: seeded one-shot faults armed at named sites, the
    four-layer taxonomy (persistence / protocol / engine / link) and the
    :class:`InjectedCrash` simulated-process-death signal.
:mod:`repro.faults.campaign`
    The chaos campaign driver: seeded op schedules, a fault-free oracle
    run, the faulted run with kills/restarts, and the end-state
    bit-identity + zero-acked-lost invariants.

Only the plane is imported eagerly: :mod:`repro.service.persistence`
depends on it, while the campaign depends on the whole service layer —
importing the campaign here would be circular. Campaign symbols are
loaded on first attribute access instead.
"""

from .plane import (
    ENGINE_FAULTS,
    LAYER_OF,
    LINK_FAULTS,
    PERSISTENCE_FAULTS,
    PROTOCOL_FAULTS,
    SITE_JOURNAL_APPEND,
    FaultPlane,
    FaultSpec,
    InjectedCrash,
)

__all__ = [
    "ENGINE_FAULTS",
    "LAYER_OF",
    "LINK_FAULTS",
    "PERSISTENCE_FAULTS",
    "PROTOCOL_FAULTS",
    "SITE_JOURNAL_APPEND",
    "ChaosConfig",
    "ChaosReport",
    "FaultPlane",
    "FaultSpec",
    "InjectedCrash",
    "run_chaos_campaign",
]

_CAMPAIGN_EXPORTS = ("ChaosConfig", "ChaosReport", "run_chaos_campaign")


def __getattr__(name: str):
    if name in _CAMPAIGN_EXPORTS:
        from . import campaign

        return getattr(campaign, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
