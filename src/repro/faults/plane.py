"""Deterministic fault plane: seeded injection at named fault sites.

The plane is the single source of truth for *which* faults fire *where*
during a chaos run (:mod:`repro.faults.campaign`). It is deliberately
dumb: it holds one-shot :class:`FaultSpec`\\ s armed per site, pops them
when the site is visited, and counts everything that fired. All
randomness (which op gets a fault, torn-write cut points) comes from a
single seeded :class:`random.Random`, so a campaign is reproducible from
its printed seed.

Four layers of faults are modelled:

persistence (fired inside :meth:`repro.service.persistence.BrokerState.append`)
    ``torn_write``
        A strict prefix of the journal record reaches the disk, then the
        process dies (:class:`InjectedCrash`). Recovery must skip the
        partial record.
    ``crash_after_append``
        The record is fully written and fsynced, then the process dies
        before the client is acknowledged. The op is durable but the ack
        is lost — the client's retry must be deduplicated by request id.
    ``fsync_error``
        The record is written but ``fsync`` raises ``OSError``. The
        broker must repair (truncate the uncertain record), roll the
        engine back, and degrade to read-only.
    ``disk_full``
        The write itself raises ``ENOSPC`` before any byte lands.
        Same degradation path, nothing to repair.

protocol (executed client-side by the campaign driver)
    ``drop_before_send``
        The connection is torn down before the request leaves.
    ``drop_after_send``
        The request is sent, then the connection is torn down before the
        response is read — the ack may be lost after the server applied
        the op (the idempotency scenario over the wire).
    ``garbage_bytes``
        A line of non-JSON bytes precedes the request.
    ``half_open``
        A second connection pipelines requests and half-closes its write
        side; every queued response must still arrive.
    ``slow_client``
        The request bytes dribble in over several writes (exercises the
        server's partial-line buffering and drain path).

engine (executed by the campaign driver between ops)
    ``cache_storm``
        :meth:`IncrementalAdmissionEngine.invalidate_caches` — every
        derived cache is dropped and rebuilt; verdicts must stay
        bit-identical.

link (executed by the campaign driver as schedule slots)
    ``link_fail``
        A topology link is killed mid-campaign (``fail_link``): affected
        streams are rerouted or evicted, and the failed-link set must
        survive crashes and recovery.
    ``link_restore``
        A previously killed link comes back (``restore_link``); the
        surviving streams are re-analysed under the healed topology.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "ENGINE_FAULTS",
    "FaultPlane",
    "FaultSpec",
    "InjectedCrash",
    "LAYER_OF",
    "LINK_FAULTS",
    "PERSISTENCE_FAULTS",
    "PROTOCOL_FAULTS",
    "SITE_JOURNAL_APPEND",
]

PERSISTENCE_FAULTS = (
    "torn_write",
    "crash_after_append",
    "fsync_error",
    "disk_full",
)
PROTOCOL_FAULTS = (
    "drop_before_send",
    "drop_after_send",
    "garbage_bytes",
    "half_open",
    "slow_client",
)
ENGINE_FAULTS = ("cache_storm",)
LINK_FAULTS = ("link_fail", "link_restore")

#: Fault kind -> layer name.
LAYER_OF: Dict[str, str] = {
    **{k: "persistence" for k in PERSISTENCE_FAULTS},
    **{k: "protocol" for k in PROTOCOL_FAULTS},
    **{k: "engine" for k in ENGINE_FAULTS},
    **{k: "link" for k in LINK_FAULTS},
}

#: The one server-side injection site (consulted by ``BrokerState.append``).
SITE_JOURNAL_APPEND = "journal.append"


class InjectedCrash(BaseException):
    """Simulated process death raised at a fault site.

    Deliberately derives from :class:`BaseException`: the broker wraps its
    request path in ``except Exception`` guards precisely so that no real
    error can kill the service, and a simulated crash must bypass those
    guards the way SIGKILL bypasses application code. Only the chaos
    harness installs a plane, so this never escapes in production use.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault: a kind plus kind-specific payload."""

    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in LAYER_OF:
            raise ValueError(f"unknown fault kind {self.kind!r}")

    @property
    def layer(self) -> str:
        return LAYER_OF[self.kind]


class FaultPlane:
    """Seeded store of armed one-shot faults, plus fired counters.

    Server-side sites (the journal append) call :meth:`take`; whatever is
    armed there fires exactly once. Driver-side faults (protocol, engine)
    are executed by the campaign itself and recorded via :meth:`record`,
    so one object accounts for the whole campaign.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = random.Random(seed)
        self._armed: Dict[str, List[FaultSpec]] = {}
        #: kind -> times fired.
        self.fired: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Arming / firing
    # ------------------------------------------------------------------ #

    def arm(self, site: str, spec: FaultSpec) -> None:
        """Queue a fault to fire at the next visit of ``site``."""
        self._armed.setdefault(site, []).append(spec)

    def disarm(self, site: str) -> int:
        """Discard any unfired faults at ``site``; return how many."""
        return len(self._armed.pop(site, []))

    def armed(self, site: str) -> int:
        """Number of faults currently armed at ``site``."""
        return len(self._armed.get(site, []))

    def take(self, site: str) -> Optional[FaultSpec]:
        """Pop and return the next armed fault at ``site`` (recording it
        as fired), or ``None``."""
        queue = self._armed.get(site)
        if not queue:
            return None
        spec = queue.pop(0)
        self.record(spec.kind)
        return spec

    def record(self, kind: str) -> None:
        """Count one driver-side fault as fired."""
        if kind not in LAYER_OF:
            raise ValueError(f"unknown fault kind {kind!r}")
        self.fired[kind] = self.fired.get(kind, 0) + 1

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #

    def total_fired(self) -> int:
        return sum(self.fired.values())

    def counts_by_layer(self) -> Dict[str, Dict[str, int]]:
        """``{layer: {kind: count}}`` over everything that fired."""
        out: Dict[str, Dict[str, int]] = {
            "persistence": {}, "protocol": {}, "engine": {}, "link": {},
        }
        for kind, n in sorted(self.fired.items()):
            out[LAYER_OF[kind]][kind] = n
        return out

    def layers_covered(self) -> int:
        """How many of the four layers fired at least one fault."""
        return sum(1 for kinds in self.counts_by_layer().values() if kinds)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultPlane(seed={self.seed}, fired={self.total_fired()}, "
            f"layers={self.layers_covered()})"
        )
