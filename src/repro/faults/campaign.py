"""Chaos campaign driver: seeded faults vs a fault-free oracle.

A campaign replays one seeded admit/release schedule twice:

1. **Oracle run** — an in-process broker with no persistence and no
   faults executes the schedule; its end state is fingerprinted.
2. **Chaos run** — the same schedule executes against a persistent
   broker while faults fire at all three layers (see
   :mod:`repro.faults.plane`): journal writes are torn, the process is
   "killed" (:class:`InjectedCrash`) and restarted from disk,
   connections drop mid-request, caches are stormed. The driver behaves
   like a correct client: idempotent request ids and at-least-once
   retries, ``snapshot`` to clear degraded mode.

Afterwards a *fresh* broker recovers from the chaos run's state dir and
the campaign asserts the two invariants the whole subsystem exists for:

* **Bit-identity** — the recovered state's fingerprint (stream specs,
  delay bounds, HP closures, feasibility report, fresh-id high-water
  mark) equals the oracle's. Deterministic analysis means recovery is
  not "approximately right", it is the same state.
* **Zero acked-then-lost** — every operation the driver saw acknowledged
  survives recovery, and nothing survives that was never acknowledged
  (no phantom admissions from replayed retries).

The chaos run is staged: persistence and engine faults fire against an
in-process broker (restarts are then cheap and deterministic), protocol
faults fire over a real unix socket served from a background thread.
Both stages share one live-id list, one fault plane and one state dir,
so the socket stage starts by recovering the in-process stage's state.

Determinism: the schedule, the fault plane and the fault-placement
draws use three independent ``random.Random`` streams derived from the
campaign seed, so backoff jitter (wall-clock only) cannot shift which
op gets which fault. Replaying a seed replays the campaign.
"""

from __future__ import annotations

import asyncio
import json
import random
import socket as socket_module
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..errors import ReproError
from ..service.loadgen import BrokerClient, churn_spec
from ..service.server import BrokerServer
from .plane import (
    PERSISTENCE_FAULTS,
    PROTOCOL_FAULTS,
    SITE_JOURNAL_APPEND,
    FaultPlane,
    FaultSpec,
    InjectedCrash,
)

__all__ = [
    "ChaosConfig",
    "ChaosReport",
    "LinkState",
    "ScheduledOp",
    "build_request",
    "generate_schedule",
    "run_chaos_campaign",
    "run_oracle",
    "state_fingerprint",
]

#: Retry ceiling per op in the in-process stage. Each armed fault is
#: one-shot, so two attempts normally converge; the slack covers a
#: degraded round-trip (snapshot + retry) stacked on a crash.
_MAX_ATTEMPTS = 32


@dataclass(frozen=True)
class ChaosConfig:
    """Everything a campaign needs, derivable from one seed."""

    seed: int = 0
    ops: int = 150
    width: int = 6
    height: int = 6
    target_live: int = 12
    priority_levels: int = 15
    #: Probability an in-process op arms a random persistence fault.
    persistence_rate: float = 0.30
    #: Probability a socket op executes a random protocol fault.
    protocol_rate: float = 0.45
    #: Probability an in-process op is preceded by a cache storm.
    engine_rate: float = 0.18
    #: Probability a socket op is preceded by a server restart.
    restart_rate: float = 0.06
    #: Probability a schedule slot is a link fail/restore event instead
    #: of admit/release churn (0 reproduces pre-link schedules exactly).
    link_rate: float = 0.0
    #: Fraction of the schedule executed over the real socket (stage B).
    socket_fraction: float = 0.4
    #: Client retry backoff (kept tiny: the "server" is on localhost).
    backoff_base: float = 0.005
    backoff_cap: float = 0.1

    def topology_spec(self) -> Dict[str, Any]:
        return {"type": "mesh", "width": self.width, "height": self.height}

    @property
    def nodes(self) -> int:
        return self.width * self.height

    def link_pool(self) -> List[Tuple[int, int]]:
        """Every undirected mesh link as a sorted ``(u, v)`` pair."""
        links = set()
        for y in range(self.height):
            for x in range(self.width):
                u = y * self.width + x
                if x + 1 < self.width:
                    links.add((u, u + 1))
                if y + 1 < self.height:
                    links.add((u, u + self.width))
        return sorted(links)


@dataclass(frozen=True)
class ScheduledOp:
    """One pre-drawn schedule slot.

    All randomness is materialised at generation time (``bias`` picks
    admit vs release, ``pick`` selects the released stream, ``spec`` is
    the candidate stream), so the oracle and the chaos run derive the
    *same* request from the same live-id list — no RNG is consumed
    during execution, where retries would desynchronise it.
    """

    index: int
    rid: str
    bias: float
    pick: float
    spec: Dict[str, int]
    #: When true the slot is a link fail/restore event; ``bias`` then
    #: flips fail-vs-restore and ``pick`` selects the link.
    link_op: bool = False


class LinkState:
    """Mutable up/down link bookkeeping shared by a run's op builder.

    Both campaign runs (oracle and chaos) hold their own copy, and both
    resolve the same pre-drawn slot randomness against it, so they issue
    the same link events in the same order.
    """

    def __init__(self, pool: List[Tuple[int, int]]):
        self.up: List[Tuple[int, int]] = sorted(
            tuple(sorted(l)) for l in pool
        )
        self.down: List[Tuple[int, int]] = []

    def apply(self, op: str, link: Tuple[int, int]) -> None:
        link = tuple(sorted(link))
        if op == "fail_link":
            self.up.remove(link)
            self.down.append(link)
        else:
            self.down.remove(link)
            self.up.append(link)
            self.up.sort()


def generate_schedule(cfg: ChaosConfig) -> List[ScheduledOp]:
    """Materialise the campaign's op schedule from ``cfg.seed``.

    With ``cfg.link_rate == 0`` no extra randomness is consumed, so
    schedules are bit-identical to pre-link versions of this module.
    """
    rng = random.Random(cfg.seed)
    schedule = []
    for i in range(cfg.ops):
        link_op = cfg.link_rate > 0 and rng.random() < cfg.link_rate
        schedule.append(ScheduledOp(
            index=i,
            rid=f"c{cfg.seed}-{i}",
            bias=rng.random(),
            pick=rng.random(),
            spec=churn_spec(rng, cfg.nodes,
                            priority_levels=cfg.priority_levels),
            link_op=link_op,
        ))
    return schedule


def build_request(
    entry: ScheduledOp,
    live: List[int],
    *,
    target_live: int,
    links: Optional[LinkState] = None,
) -> Dict[str, Any]:
    """The protocol request this slot performs given the live-id list.

    Same churn policy as :func:`repro.service.loadgen.run_load`: below
    ``target_live`` mostly admit, above it mostly release. Link slots
    (``entry.link_op`` with a :class:`LinkState`) fail a live link when
    few are down and restore one when three are, reusing the slot's
    pre-drawn ``bias``/``pick`` floats so no RNG runs at execution time.
    """
    if entry.link_op and links is not None and (links.up or links.down):
        if not links.down:
            fail = True
        elif len(links.down) >= 3 or not links.up:
            fail = False
        else:
            fail = entry.bias < 0.5
        pool = links.up if fail else links.down
        link = pool[int(entry.pick * len(pool)) % len(pool)]
        op = "fail_link" if fail else "restore_link"
        return {"op": op, "rid": entry.rid, "link": list(link)}
    admit = (len(live) < target_live
             if entry.bias < 0.8 else len(live) >= target_live)
    if admit or not live:
        return {"op": "admit", "rid": entry.rid, "streams": [entry.spec]}
    sid = live[int(entry.pick * len(live)) % len(live)]
    return {"op": "release", "rid": entry.rid, "ids": [sid]}


def _apply_outcome(
    request: Dict[str, Any],
    response: Dict[str, Any],
    live: List[int],
    outcomes: List[Dict[str, Any]],
    links: Optional[LinkState] = None,
) -> None:
    """Fold one acknowledged op into the live list and the acked log."""
    if request["op"] == "admit":
        admitted = bool(response.get("admitted"))
        ids = [int(i) for i in response.get("ids", [])] if admitted else []
        live.extend(ids)
        outcomes.append({"op": "admit", "admitted": admitted, "ids": ids})
    elif request["op"] == "release":
        ids = [int(i) for i in request["ids"]]
        for sid in ids:
            live.remove(sid)
        outcomes.append({"op": "release", "ids": ids})
    else:  # fail_link / restore_link
        link = tuple(int(n) for n in request["link"])
        gone = sorted(
            {int(i) for i in response.get("evicted", [])}
            | {int(i) for i in response.get("disconnected", [])}
        )
        for sid in gone:
            live.remove(sid)
        if links is not None:
            links.apply(request["op"], link)
        outcomes.append({
            "op": request["op"], "link": list(link), "evicted": gone,
        })


# ---------------------------------------------------------------------- #
# Fingerprinting + oracle
# ---------------------------------------------------------------------- #


def state_fingerprint(server: BrokerServer) -> Tuple[str, Dict[str, Any]]:
    """``(sha256, spec)`` of everything recovery promises to preserve.

    Covers the admitted stream specs, each stream's delay bound /
    feasibility / slack / HP closure, the full feasibility report and
    the fresh-id high-water mark. Built through the public protocol ops
    so it fingerprints what clients can observe. Accepts a
    :class:`BrokerServer` or a bare :class:`~repro.service.host.EngineHost`
    (the fleet fingerprints hosts directly).
    """
    host = getattr(server, "host", server)
    return host.fingerprint()


def run_oracle(
    cfg: ChaosConfig, schedule: List[ScheduledOp]
) -> Tuple[str, List[Dict[str, Any]]]:
    """Execute the schedule fault-free; return ``(sha, acked log)``."""
    server = BrokerServer(cfg.topology_spec())
    live: List[int] = []
    outcomes: List[Dict[str, Any]] = []
    links = LinkState(cfg.link_pool()) if cfg.link_rate > 0 else None
    for entry in schedule:
        request = build_request(
            entry, live, target_live=cfg.target_live, links=links
        )
        response = server.handle_request(request)
        if not response.get("ok"):  # pragma: no cover - oracle is clean
            raise ReproError(f"oracle op {entry.index} failed: {response}")
        _apply_outcome(request, response, live, outcomes, links)
    sha, _ = state_fingerprint(server)
    return sha, outcomes


# ---------------------------------------------------------------------- #
# Stage A: in-process (persistence + engine faults, kills + restarts)
# ---------------------------------------------------------------------- #


@dataclass
class _RunState:
    """Mutable carry-over between the two chaos stages."""

    live: List[int] = field(default_factory=list)
    outcomes: List[Dict[str, Any]] = field(default_factory=list)
    links: Optional[LinkState] = None
    restarts: int = 0
    degraded_recoveries: int = 0
    duplicate_acks: int = 0


def _stage_inproc(
    cfg: ChaosConfig,
    schedule: List[ScheduledOp],
    state_dir: Path,
    plane: FaultPlane,
    driver_rng: random.Random,
    run: _RunState,
) -> None:
    """Run ``schedule`` against an in-process persistent broker.

    Persistence faults are armed at the journal-append site before the
    op; :class:`InjectedCrash` is the simulated kill — the server object
    is dropped and a new one recovers from the state dir, then the op is
    retried under the same rid. Degraded responses are cleared with a
    ``snapshot`` op, exactly as a supervising client would.
    """
    server = BrokerServer(
        cfg.topology_spec(), state_dir=state_dir, fault_plane=plane
    )
    try:
        for entry in schedule:
            if driver_rng.random() < cfg.engine_rate:
                server.engine.invalidate_caches()
                plane.record("cache_storm")
            if driver_rng.random() < cfg.persistence_rate:
                kind = PERSISTENCE_FAULTS[
                    driver_rng.randrange(len(PERSISTENCE_FAULTS))
                ]
                plane.arm(SITE_JOURNAL_APPEND, FaultSpec(kind))
            request = build_request(
                entry, run.live, target_live=cfg.target_live,
                links=run.links,
            )
            for _ in range(_MAX_ATTEMPTS):
                try:
                    response = server.handle_request(request)
                except InjectedCrash:
                    run.restarts += 1
                    server.state.close()
                    server = BrokerServer(
                        cfg.topology_spec(),
                        state_dir=state_dir,
                        fault_plane=plane,
                    )
                    continue
                if response.get("ok"):
                    break
                if response.get("code") == "degraded":
                    run.degraded_recoveries += 1
                    snap = server.handle_request({"op": "snapshot"})
                    if not snap.get("ok"):  # pragma: no cover - one-shot
                        raise ReproError(
                            f"snapshot failed to clear degraded: {snap}"
                        )
                    continue
                raise ReproError(
                    f"chaos op {entry.index} failed hard: {response}"
                )
            else:  # pragma: no cover - defensive
                raise ReproError(
                    f"chaos op {entry.index} did not converge in "
                    f"{_MAX_ATTEMPTS} attempts"
                )
            # A rejected admit never reached the journal; drop the
            # armed-but-unfired fault so accounting only counts faults
            # that actually executed.
            plane.disarm(SITE_JOURNAL_APPEND)
            if response.get("duplicate"):
                run.duplicate_acks += 1
            if request["op"] in ("fail_link", "restore_link"):
                plane.record("link_fail" if request["op"] == "fail_link"
                             else "link_restore")
            _apply_outcome(
                request, response, run.live, run.outcomes, run.links
            )
    finally:
        if server.state is not None:
            server.state.close()


# ---------------------------------------------------------------------- #
# Stage B: real socket (protocol faults, server restarts)
# ---------------------------------------------------------------------- #


class _ServerThread:
    """A persistent broker serving a unix socket from a daemon thread."""

    def __init__(
        self,
        topology_spec: Dict[str, Any],
        socket_path: Union[str, Path],
        state_dir: Path,
    ):
        self._topology_spec = topology_spec
        self._socket_path = Path(socket_path)
        self._state_dir = state_dir
        self._ready = threading.Event()
        self._exc: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.server: Optional[BrokerServer] = None
        self._thread = threading.Thread(
            target=self._run, name="chaos-broker", daemon=True
        )

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - surfaced in stop
            self._exc = exc
        finally:
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.server = BrokerServer(
            self._topology_spec, state_dir=self._state_dir
        )
        await self.server.start_unix(self._socket_path)
        self._ready.set()
        await self.server.serve_forever()

    def start(self) -> "_ServerThread":
        self._socket_path.unlink(missing_ok=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):  # pragma: no cover
            raise ReproError("chaos broker thread did not come up")
        if self._exc is not None:
            raise ReproError(f"chaos broker thread died: {self._exc!r}")
        return self

    def stop(self) -> None:
        if self._loop is not None and self.server is not None:
            try:
                self._loop.call_soon_threadsafe(self.server.request_shutdown)
            except RuntimeError:  # pragma: no cover - loop already gone
                pass
        self._thread.join(timeout=30)
        if self._thread.is_alive():  # pragma: no cover - defensive
            raise ReproError("chaos broker thread did not stop")
        if self._exc is not None:  # pragma: no cover - defensive
            raise ReproError(f"chaos broker thread died: {self._exc!r}")


def _half_open_probe(socket_path: Path) -> None:
    """Pipeline two requests, half-close the write side, demand both
    responses (then EOF) — the server must flush before closing."""
    conn = socket_module.socket(
        socket_module.AF_UNIX, socket_module.SOCK_STREAM
    )
    try:
        conn.settimeout(10)
        conn.connect(str(socket_path))
        fh = conn.makefile("rwb")
        fh.write(b'{"op":"ping","id":1}\n{"op":"report","id":2}\n')
        fh.flush()
        conn.shutdown(socket_module.SHUT_WR)
        for want in (1, 2):
            line = fh.readline()
            if not line:
                raise ReproError(
                    "half-open pipeline lost a queued response"
                )
            response = json.loads(line.decode("utf-8"))
            if not response.get("ok") or response.get("id") != want:
                raise ReproError(
                    f"half-open response mismatch: {response}"
                )
        if fh.readline():  # pragma: no cover - defensive
            raise ReproError("half-open connection served extra data")
    finally:
        conn.close()


def _slow_request(
    client: BrokerClient, request: Dict[str, Any]
) -> Dict[str, Any]:
    """Dribble one request over three writes; read the one response."""
    client._seq += 1
    payload = (
        json.dumps({**request, "id": client._seq}, separators=(",", ":"))
        + "\n"
    ).encode("utf-8")
    third = max(1, len(payload) // 3)
    for piece in (payload[:third], payload[third:2 * third],
                  payload[2 * third:]):
        if piece:
            client._fh.write(piece)
            client._fh.flush()
            time.sleep(0.002)
    line = client._fh.readline()
    if not line:
        raise ReproError("connection closed during a slow write")
    response = json.loads(line.decode("utf-8"))
    if not response.get("ok"):
        raise ReproError(f"slow-client op failed: {response}")
    return response


def _socket_op(
    client: BrokerClient,
    request: Dict[str, Any],
    fault: Optional[str],
    plane: FaultPlane,
    socket_path: Path,
    cfg: ChaosConfig,
    backoff_rng: random.Random,
) -> Dict[str, Any]:
    """Execute one schedule op over the socket, under one protocol fault."""
    op = request["op"]
    rid = request["rid"]
    fields = {k: v for k, v in request.items() if k not in ("op", "rid")}
    if fault == "slow_client":
        plane.record(fault)
        return _slow_request(client, request)
    if fault == "drop_before_send":
        plane.record(fault)
        client.close()
    elif fault == "drop_after_send":
        plane.record(fault)
        payload = (
            json.dumps({"op": op, "rid": rid, **fields},
                       separators=(",", ":")) + "\n"
        ).encode("utf-8")
        try:
            client._fh.write(payload)
            client._fh.flush()
        except (OSError, ValueError):  # pragma: no cover - race with peer
            pass
        client.close()
    elif fault == "garbage_bytes":
        plane.record(fault)
        client._fh.write(b"\xff\x00 this is not json {]\n")
        client._fh.flush()
        line = client._fh.readline()
        error = json.loads(line.decode("utf-8"))
        if error.get("ok"):  # pragma: no cover - defensive
            raise ReproError("garbage line was accepted by the broker")
    elif fault == "half_open":
        plane.record(fault)
        _half_open_probe(socket_path)
    response = client.request_with_retry(
        op,
        rid=rid,
        backoff_base=cfg.backoff_base,
        backoff_cap=cfg.backoff_cap,
        rng=backoff_rng,
        **fields,
    )
    if not response.get("ok"):
        raise ReproError(
            f"socket op {op!r} (rid {rid!r}) failed: {response}"
        )
    return response


def _stage_socket(
    cfg: ChaosConfig,
    schedule: List[ScheduledOp],
    state_dir: Path,
    socket_path: Path,
    plane: FaultPlane,
    driver_rng: random.Random,
    backoff_rng: random.Random,
    run: _RunState,
) -> None:
    """Run ``schedule`` over a real unix socket with protocol faults."""
    if not schedule:
        return
    thread = _ServerThread(
        cfg.topology_spec(), socket_path, state_dir
    ).start()
    client = BrokerClient.wait_for_unix(socket_path, timeout=10)
    try:
        for entry in schedule:
            if driver_rng.random() < cfg.restart_rate:
                run.restarts += 1
                client.close()
                thread.stop()
                thread = _ServerThread(
                    cfg.topology_spec(), socket_path, state_dir
                ).start()
                client = BrokerClient.wait_for_unix(socket_path, timeout=10)
            fault = None
            if driver_rng.random() < cfg.protocol_rate:
                fault = PROTOCOL_FAULTS[
                    driver_rng.randrange(len(PROTOCOL_FAULTS))
                ]
            request = build_request(
                entry, run.live, target_live=cfg.target_live,
                links=run.links,
            )
            response = _socket_op(
                client, request, fault, plane, socket_path, cfg,
                backoff_rng,
            )
            if response.get("duplicate"):
                run.duplicate_acks += 1
            if request["op"] in ("fail_link", "restore_link"):
                plane.record("link_fail" if request["op"] == "fail_link"
                             else "link_restore")
            _apply_outcome(
                request, response, run.live, run.outcomes, run.links
            )
    finally:
        client.close()
        thread.stop()


# ---------------------------------------------------------------------- #
# Campaign
# ---------------------------------------------------------------------- #


@dataclass
class ChaosReport:
    """Outcome of one campaign (``repro chaos`` prints it as JSON)."""

    seed: int
    ops: int
    committed: int
    faults_total: int
    faults_by_layer: Dict[str, Dict[str, int]]
    layers_covered: int
    restarts: int
    degraded_recoveries: int
    duplicate_acks: int
    outcome_mismatches: int
    oracle_sha: str
    recovered_sha: str
    bit_identical: bool
    acked_then_lost: List[int]
    phantom_ids: List[int]
    live_at_end: int
    seconds: float

    @property
    def ok(self) -> bool:
        """Did the chaos run preserve every invariant it must?"""
        return (
            self.bit_identical
            and not self.acked_then_lost
            and not self.phantom_ids
            and self.outcome_mismatches == 0
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "ops": self.ops,
            "committed": self.committed,
            "faults": {
                "total": self.faults_total,
                "layers_covered": self.layers_covered,
                "by_layer": self.faults_by_layer,
            },
            "restarts": self.restarts,
            "degraded_recoveries": self.degraded_recoveries,
            "duplicate_acks": self.duplicate_acks,
            "outcome_mismatches": self.outcome_mismatches,
            "oracle_sha": self.oracle_sha,
            "recovered_sha": self.recovered_sha,
            "bit_identical": self.bit_identical,
            "acked_then_lost": self.acked_then_lost,
            "phantom_ids": self.phantom_ids,
            "live_at_end": self.live_at_end,
            "seconds": round(self.seconds, 3),
            "ok": self.ok,
        }

    def summary(self) -> str:
        verdict = "OK" if self.ok else "FAILED"
        return (
            f"chaos seed={self.seed}: {self.ops} ops, "
            f"{self.faults_total} faults over {self.layers_covered} "
            f"layers, {self.restarts} restarts, "
            f"{self.degraded_recoveries} degraded recoveries, "
            f"{self.duplicate_acks} duplicate acks -> "
            f"recovery {'bit-identical' if self.bit_identical else 'DIVERGED'}, "
            f"{len(self.acked_then_lost)} acked-then-lost "
            f"[{verdict}] ({self.seconds:.1f}s)"
        )


def run_chaos_campaign(
    cfg: ChaosConfig,
    state_dir: Optional[Union[str, Path]] = None,
) -> ChaosReport:
    """Run one full campaign; everything derives from ``cfg.seed``."""
    t0 = time.perf_counter()
    schedule = generate_schedule(cfg)
    oracle_sha, oracle_outcomes = run_oracle(cfg, schedule)

    plane = FaultPlane(cfg.seed + 1)
    # Fault placement is drawn from its own stream so that nothing the
    # faults themselves consume (torn-write cut points come from
    # ``plane.rng``) can shift which op gets which fault.
    driver_rng = random.Random(cfg.seed + 2)
    backoff_rng = random.Random(cfg.seed + 3)  # wall-clock jitter only
    run = _RunState(
        links=LinkState(cfg.link_pool()) if cfg.link_rate > 0 else None
    )
    split = cfg.ops - int(cfg.ops * cfg.socket_fraction)

    tmp: Optional[tempfile.TemporaryDirectory] = None
    if state_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        state_dir = tmp.name
    state_path = Path(state_dir)
    try:
        _stage_inproc(
            cfg, schedule[:split], state_path, plane, driver_rng, run
        )
        _stage_socket(
            cfg, schedule[split:], state_path, state_path / "broker.sock",
            plane, driver_rng, backoff_rng, run,
        )

        # The verdicts: a fresh, fault-free broker recovers from the
        # chaos run's disk and must land on the oracle's exact state.
        final = BrokerServer(cfg.topology_spec(), state_dir=state_path)
        try:
            recovered_sha, recovered_spec = state_fingerprint(final)
        finally:
            final.state.close()
    finally:
        if tmp is not None:
            tmp.cleanup()

    expected_live: set = set()
    for outcome in run.outcomes:
        if outcome["op"] == "admit" and outcome["admitted"]:
            expected_live.update(outcome["ids"])
        elif outcome["op"] == "release":
            expected_live.difference_update(outcome["ids"])
        elif outcome["op"] in ("fail_link", "restore_link"):
            expected_live.difference_update(outcome["evicted"])
    recovered_ids = {int(sid) for sid in recovered_spec["streams"]}
    mismatches = sum(
        1 for got, want in zip(run.outcomes, oracle_outcomes)
        if got != want
    ) + abs(len(run.outcomes) - len(oracle_outcomes))

    return ChaosReport(
        seed=cfg.seed,
        ops=cfg.ops,
        committed=len(run.outcomes),
        faults_total=plane.total_fired(),
        faults_by_layer=plane.counts_by_layer(),
        layers_covered=plane.layers_covered(),
        restarts=run.restarts,
        degraded_recoveries=run.degraded_recoveries,
        duplicate_acks=run.duplicate_acks,
        outcome_mismatches=mismatches,
        oracle_sha=oracle_sha,
        recovered_sha=recovered_sha,
        bit_identical=recovered_sha == oracle_sha,
        acked_then_lost=sorted(expected_live - recovered_ids),
        phantom_ids=sorted(recovered_ids - expected_live),
        live_at_end=len(run.live),
        seconds=time.perf_counter() - t0,
    )
