"""Hypercube topology.

The paper's system model names hypercubes alongside meshes as target
interconnects; e-cube (dimension-ordered) routing on a hypercube is the
classical deadlock-free deterministic routing function, so the feasibility
analysis applies unchanged.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from ..errors import TopologyError
from .base import Topology

__all__ = ["Hypercube"]


class Hypercube(Topology):
    """An n-dimensional binary hypercube with ``2**n`` nodes.

    A node's coordinates are its address bits, LSB first, so coordinate ``i``
    is bit ``i`` of the node id. Two nodes are adjacent iff their ids differ
    in exactly one bit.
    """

    def __init__(self, dimension: int):
        dimension = int(dimension)
        if dimension < 0:
            raise TopologyError(f"hypercube dimension must be >= 0, got {dimension}")
        if dimension > 20:
            raise TopologyError(
                f"hypercube dimension {dimension} is unreasonably large (>2^20 nodes)"
            )
        self.dimension = dimension
        self.num_nodes = 1 << dimension

    def neighbors(self, node: int) -> Tuple[int, ...]:
        self.validate_node(node)
        return tuple(node ^ (1 << i) for i in range(self.dimension))

    def coords(self, node: int) -> Tuple[int, ...]:
        self.validate_node(node)
        return tuple((node >> i) & 1 for i in range(self.dimension))

    def node_at(self, coords: Iterable[int]) -> int:
        coords = tuple(int(c) for c in coords)
        if len(coords) != self.dimension:
            raise TopologyError(
                f"expected {self.dimension} coordinates, got {len(coords)}"
            )
        node = 0
        for i, bit in enumerate(coords):
            if bit not in (0, 1):
                raise TopologyError(f"hypercube coordinates are bits, got {bit}")
            node |= bit << i
        return node

    def hop_distance(self, src: int, dst: int) -> int:
        """Return the Hamming distance between the two node addresses."""
        self.validate_node(src)
        self.validate_node(dst)
        return (src ^ dst).bit_count()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Hypercube(dimension={self.dimension})"
