"""Deterministic routing algorithms and deadlock-freedom checking.

The feasibility analysis requires that "the routing path of each message
stream is statically determined by using a deterministic routing algorithm
such as X-Y routing for meshes" and that "deadlock situations never occur".
This module supplies:

* :class:`XYRouting` — the paper's X-Y routing for 2-D meshes (correct the x
  coordinate first, then y);
* :class:`DimensionOrderRouting` — the n-dimensional generalisation for
  meshes (X-Y is the 2-D case);
* :class:`ECubeRouting` — dimension-ordered routing for hypercubes;
* :class:`TorusDimensionOrderRouting` — minimal dimension-ordered routing on
  tori (chooses the shorter wrap direction; *not* deadlock-free without
  dateline VCs — the checker reports this);
* :class:`UpDownRouting` — BFS-rooted up*/down* routing on *arbitrary*
  connected graphs (the classical fault-tolerant scheme: every legal path
  is a sequence of "up" channels followed by "down" channels, which rules
  out dependency cycles on any topology, including irregular degraded
  ones);
* :class:`TableRouting` — arbitrary per-pair route tables, loadable from
  JSON, for externally computed routing functions;
* :class:`FaultAwareRouting` — a composite that keeps the base routing's
  route wherever it avoids a set of failed links and falls back to
  up*/down* detours on the degraded graph elsewhere, spending one extra
  VC class so the combined channel-dependency graph stays acyclic;
* :func:`channel_dependency_graph` / :func:`is_deadlock_free` — Dally &
  Seitz's channel-dependency-cycle test, used to validate that a
  topology/routing pair admits no wormhole deadlock.

Routes are node paths; :meth:`RoutingAlgorithm.route_channels` converts a
path into the sequence of *directed* channels it occupies, which is what the
HP-set construction in :mod:`repro.core.hpset` intersects.
"""

from __future__ import annotations

import hashlib
import json
from abc import ABC, abstractmethod
from collections import deque
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import networkx as nx

from ..errors import RoutingError
from .base import Channel, Topology
from .degraded import DegradedTopology
from .hypercube import Hypercube
from .mesh import Mesh, Mesh2D
from .torus import Torus

__all__ = [
    "RoutingAlgorithm",
    "DimensionOrderRouting",
    "XYRouting",
    "ECubeRouting",
    "TorusDimensionOrderRouting",
    "UpDownRouting",
    "TableRouting",
    "FaultAwareRouting",
    "channel_dependency_graph",
    "is_deadlock_free",
]


class RoutingAlgorithm(ABC):
    """A deterministic (oblivious, single-path) routing function.

    Instances are bound to a :class:`~repro.topology.base.Topology` and map a
    (source, destination) pair to a unique node path. Results are memoised:
    the analysis and the simulator both ask for the same routes repeatedly.

    Routing functions additionally assign each channel use a **virtual
    channel class** (:meth:`route_classes`). Mesh and hypercube routing
    need only one class (their channel-dependency graphs are already
    acyclic); torus routing uses two *dateline* classes per dimension to
    break the wrap-around cycles. The simulator provisions
    ``priorities x num_vc_classes`` VCs per port, and the deadlock check
    runs on (channel, class) pairs.
    """

    #: Number of VC classes the routing function needs (1 = none).
    num_vc_classes: int = 1

    def __init__(self, topology: Topology):
        self.topology = topology
        self._route_cache: Dict[Tuple[int, int], Tuple[int, ...]] = {}

    # ------------------------------------------------------------------ #

    @abstractmethod
    def _compute_route(self, src: int, dst: int) -> Tuple[int, ...]:
        """Return the node path from ``src`` to ``dst`` (inclusive)."""

    def route(self, src: int, dst: int) -> Tuple[int, ...]:
        """Return the node path ``(src, ..., dst)`` for the pair.

        The path always starts at ``src`` and ends at ``dst``; for
        ``src == dst`` it is the single-node path ``(src,)``.
        """
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        self.topology.validate_node(src)
        self.topology.validate_node(dst)
        path = self._compute_route(src, dst)
        self._validate_path(src, dst, path)
        self._route_cache[key] = path
        return path

    def route_channels(self, src: int, dst: int) -> Tuple[Channel, ...]:
        """Return the directed channels occupied by the route."""
        path = self.route(src, dst)
        return tuple(zip(path[:-1], path[1:]))

    def route_classes(self, src: int, dst: int) -> Tuple[int, ...]:
        """Return the VC class of each channel use on the route.

        Aligned with :meth:`route_channels`; every class is in
        ``[0, num_vc_classes)``. The default (single-class) implementation
        returns all zeros.
        """
        return (0,) * self.hop_count(src, dst)

    def next_hop(self, current: int, dst: int) -> int:
        """Return the next node after ``current`` on the route to ``dst``.

        This is the form of the routing function a router evaluates when a
        header flit arrives. Deterministic routing guarantees the suffix of a
        route is itself the route from the intermediate node, so this is
        simply the second node of ``route(current, dst)``.
        """
        if current == dst:
            raise RoutingError(f"node {current} is already the destination")
        return self.route(current, dst)[1]

    def hop_count(self, src: int, dst: int) -> int:
        """Return the number of channels (hops) on the route."""
        return len(self.route(src, dst)) - 1

    def signature(self) -> Tuple:
        """Return an identity key for the routing *function*.

        Two routing instances with equal signatures bound to topologies
        with equal signatures produce identical routes and VC classes
        for every pair — the contract the shared route table of
        :mod:`repro.topology.route_table` memoises under. The default
        (the class name) is correct for parameter-free algorithms;
        parameterised routings (a chosen up/down root, a loaded table, a
        failed-link set) must fold their parameters in.
        """
        return (type(self).__name__,)

    # ------------------------------------------------------------------ #

    def _validate_path(
        self, src: int, dst: int, path: Sequence[int]
    ) -> None:
        if len(path) == 0 or path[0] != src or path[-1] != dst:
            raise RoutingError(
                f"route for ({src}, {dst}) has bad endpoints: {path!r}"
            )
        for u, v in zip(path[:-1], path[1:]):
            if not self.topology.has_channel(u, v):
                raise RoutingError(
                    f"route for ({src}, {dst}) uses nonexistent channel "
                    f"({u}, {v})"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.topology!r})"


class DimensionOrderRouting(RoutingAlgorithm):
    """Dimension-ordered routing on a mesh: correct dimension 0 fully, then
    dimension 1, and so on. Deadlock-free on meshes (the classical result
    proved via the acyclic channel-dependency graph, which
    :func:`is_deadlock_free` verifies mechanically)."""

    def __init__(self, topology: Mesh):
        if not isinstance(topology, Mesh):
            raise RoutingError(
                "DimensionOrderRouting requires a Mesh topology, got "
                f"{type(topology).__name__}"
            )
        if isinstance(topology, Torus):
            raise RoutingError(
                "use TorusDimensionOrderRouting for torus topologies"
            )
        super().__init__(topology)

    def _compute_route(self, src: int, dst: int) -> Tuple[int, ...]:
        mesh: Mesh = self.topology  # type: ignore[assignment]
        cur = list(mesh.coords(src))
        target = mesh.coords(dst)
        path = [src]
        for dim in range(len(mesh.dims)):
            step = 1 if target[dim] > cur[dim] else -1
            while cur[dim] != target[dim]:
                cur[dim] += step
                path.append(mesh.node_at(cur))
        return tuple(path)


class XYRouting(DimensionOrderRouting):
    """X-Y routing on a 2-D mesh: the paper's routing function.

    A message first travels along the x dimension to the destination column,
    then along y. This is exactly 2-D dimension-ordered routing; the subclass
    exists to match the paper's terminology and to insist on a 2-D mesh.
    """

    def __init__(self, topology: Mesh2D):
        if not isinstance(topology, Mesh2D):
            raise RoutingError(
                f"XYRouting requires a Mesh2D, got {type(topology).__name__}"
            )
        super().__init__(topology)


class ECubeRouting(RoutingAlgorithm):
    """E-cube routing on a hypercube: resolve differing address bits from the
    least significant to the most significant. Deadlock-free."""

    def __init__(self, topology: Hypercube):
        if not isinstance(topology, Hypercube):
            raise RoutingError(
                f"ECubeRouting requires a Hypercube, got {type(topology).__name__}"
            )
        super().__init__(topology)

    def _compute_route(self, src: int, dst: int) -> Tuple[int, ...]:
        path = [src]
        cur = src
        diff = src ^ dst
        bit = 0
        while diff:
            if diff & 1:
                cur ^= 1 << bit
                path.append(cur)
            diff >>= 1
            bit += 1
        return tuple(path)


class TorusDimensionOrderRouting(RoutingAlgorithm):
    """Minimal dimension-ordered routing on a torus with dateline VCs.

    In each dimension the shorter of the two directions is taken (ties go
    to the positive direction). Wrap-around channels create cyclic raw
    channel dependencies, so the routing function assigns two **dateline**
    VC classes per dimension: a route travels in class 0 until it crosses
    the dimension's wrap link, then switches to class 1 for the rest of
    that dimension (and resets on entering the next dimension). The
    (channel, class) dependency graph is acyclic — verified mechanically by
    :func:`is_deadlock_free` — and the simulator provisions the extra VCs
    automatically from :attr:`num_vc_classes`.
    """

    num_vc_classes = 2

    def __init__(self, topology: Torus):
        if not isinstance(topology, Torus):
            raise RoutingError(
                f"TorusDimensionOrderRouting requires a Torus, got "
                f"{type(topology).__name__}"
            )
        super().__init__(topology)
        self._class_cache: Dict[Tuple[int, int], Tuple[int, ...]] = {}

    def _steps(self, src: int, dst: int):
        """Yield (dim, step, hops) per dimension needing correction."""
        torus: Torus = self.topology  # type: ignore[assignment]
        cur = list(torus.coords(src))
        target = torus.coords(dst)
        for dim, extent in enumerate(torus.dims):
            delta = (target[dim] - cur[dim]) % extent
            if delta == 0:
                continue
            if delta <= extent - delta:
                yield dim, 1, delta, cur[dim]
            else:
                yield dim, -1, extent - delta, cur[dim]
            cur[dim] = target[dim]

    def _compute_route(self, src: int, dst: int) -> Tuple[int, ...]:
        torus: Torus = self.topology  # type: ignore[assignment]
        cur = list(torus.coords(src))
        path = [src]
        for dim, step, hops, _start in self._steps(src, dst):
            extent = torus.dims[dim]
            for _ in range(hops):
                cur[dim] = (cur[dim] + step) % extent
                path.append(torus.node_at(cur))
        return tuple(path)

    def route_classes(self, src: int, dst: int) -> Tuple[int, ...]:
        key = (src, dst)
        cached = self._class_cache.get(key)
        if cached is not None:
            return cached
        torus: Torus = self.topology  # type: ignore[assignment]
        classes: List[int] = []
        for dim, step, hops, start in self._steps(src, dst):
            extent = torus.dims[dim]
            coord = start
            crossed = False
            for _ in range(hops):
                nxt = (coord + step) % extent
                # The wrap link: extent-1 -> 0 going +, or 0 -> extent-1
                # going -.
                if (step == 1 and coord == extent - 1) or (
                    step == -1 and coord == 0
                ):
                    crossed = True
                classes.append(1 if crossed else 0)
                coord = nxt
        out = tuple(classes)
        if len(out) != self.hop_count(src, dst):  # pragma: no cover
            raise RoutingError("class/route length mismatch")
        self._class_cache[key] = out
        return out


class UpDownRouting(RoutingAlgorithm):
    """BFS-rooted up*/down* routing on arbitrary (possibly irregular)
    topologies.

    A BFS forest from a deterministic root assigns every node the rank
    ``(BFS level, node id)`` — unique, so every channel is strictly "up"
    (towards a lower rank) or "down". A legal route is zero or more up
    channels followed by zero or more down channels; the route chosen is
    the *shortest* legal one, tie-broken by expanding neighbours in
    ascending id order, so routes are deterministic. The classical
    argument applies on any graph: a dependency from a down channel to an
    up channel is impossible, and within each class the rank strictly
    orders the channels, so the channel-dependency graph is acyclic
    (verified mechanically by :func:`is_deadlock_free`). This is the
    detour routing used after link failures, where the degraded graph is
    irregular and dimension-ordered schemes no longer apply.

    Parameters
    ----------
    topology:
        Any topology with symmetric links (every concrete topology in
        this package, including :class:`~repro.topology.degraded.
        DegradedTopology` views).
    root:
        BFS root node. Defaults to the smallest node id of each
        connected component (so forests on disconnected graphs are still
        deterministic); a given root applies to its own component only.
    """

    def __init__(self, topology: Topology, root: Optional[int] = None):
        super().__init__(topology)
        if root is not None:
            topology.validate_node(root)
        self.root = root
        self._level: Dict[int, int] = {}
        self._build_forest()

    def _build_forest(self) -> None:
        """BFS levels per connected component, smallest-id roots first."""
        seen = self._level
        roots = []
        if self.root is not None:
            roots.append(self.root)
        roots.extend(self.topology.nodes())
        for start in roots:
            if start in seen:
                continue
            seen[start] = 0
            frontier = deque([start])
            while frontier:
                node = frontier.popleft()
                for nbr in sorted(self.topology.neighbors(node)):
                    if nbr not in seen:
                        seen[nbr] = seen[node] + 1
                        frontier.append(nbr)

    def rank(self, node: int) -> Tuple[int, int]:
        """The node's (BFS level, id) rank; lower ranks are nearer roots."""
        return (self._level[node], node)

    def is_up(self, u: int, v: int) -> bool:
        """``True`` iff the channel ``u -> v`` heads towards lower rank."""
        return self.rank(v) < self.rank(u)

    def _compute_route(self, src: int, dst: int) -> Tuple[int, ...]:
        if src == dst:
            return (src,)
        # BFS over (node, down_started): up channels are only legal
        # before the first down channel. FIFO order + sorted neighbour
        # expansion makes the first arrival the deterministic shortest
        # legal path.
        start = (src, False)
        parents: Dict[Tuple[int, bool], Tuple[int, bool]] = {start: start}
        frontier = deque([start])
        goal: Optional[Tuple[int, bool]] = None
        while frontier and goal is None:
            state = frontier.popleft()
            node, down_started = state
            for nbr in sorted(self.topology.neighbors(node)):
                if self.is_up(node, nbr):
                    if down_started:
                        continue
                    nxt = (nbr, False)
                else:
                    nxt = (nbr, True)
                if nxt in parents:
                    continue
                parents[nxt] = state
                if nbr == dst:
                    goal = nxt
                    break
                frontier.append(nxt)
        if goal is None:
            raise RoutingError(
                f"no up/down route from {src} to {dst} "
                f"(nodes disconnected on {type(self.topology).__name__})"
            )
        path = []
        state = goal
        while parents[state] != state:
            path.append(state[0])
            state = parents[state]
        path.append(src)
        return tuple(reversed(path))

    def signature(self) -> Tuple:
        return ("UpDownRouting", self.root)


class TableRouting(RoutingAlgorithm):
    """Arbitrary per-pair route tables (the gem5-garnet style).

    Routes come from an explicit ``(src, dst) -> path`` mapping instead
    of an algorithm — the form externally computed routing functions
    (SAT-solved, up/down tables from a management plane, hand-written
    regression cases) arrive in. Pairs absent from the table raise a
    :class:`~repro.errors.RoutingError` naming the pair, and every route
    is validated against the topology on first use exactly like the
    algorithmic routings. Tables round-trip through JSON
    (:meth:`from_json` / :meth:`to_json`) and can be dumped from any
    existing routing with :meth:`from_routing` — including regenerating
    an up/down table after a link failure.
    """

    def __init__(
        self,
        topology: Topology,
        routes: Mapping[Tuple[int, int], Sequence[int]],
        *,
        classes: Optional[Mapping[Tuple[int, int], Sequence[int]]] = None,
        num_vc_classes: int = 1,
    ):
        super().__init__(topology)
        if int(num_vc_classes) < 1:
            raise RoutingError(
                f"num_vc_classes must be >= 1, got {num_vc_classes}"
            )
        self.num_vc_classes = int(num_vc_classes)
        self._routes: Dict[Tuple[int, int], Tuple[int, ...]] = {
            (int(s), int(d)): tuple(int(n) for n in path)
            for (s, d), path in routes.items()
        }
        self._classes: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        for (s, d), cls in (classes or {}).items():
            key = (int(s), int(d))
            out = tuple(int(c) for c in cls)
            if key not in self._routes:
                raise RoutingError(
                    f"classes given for pair {key} with no route"
                )
            if len(out) != len(self._routes[key]) - 1:
                raise RoutingError(
                    f"classes for pair {key} have {len(out)} entries, "
                    f"route has {len(self._routes[key]) - 1} hops"
                )
            if any(not 0 <= c < self.num_vc_classes for c in out):
                raise RoutingError(
                    f"classes for pair {key} exceed num_vc_classes="
                    f"{self.num_vc_classes}: {out}"
                )
            self._classes[key] = out
        self._signature: Optional[Tuple] = None

    def _compute_route(self, src: int, dst: int) -> Tuple[int, ...]:
        if src == dst:
            return (src,)
        path = self._routes.get((src, dst))
        if path is None:
            raise RoutingError(
                f"route table has no entry for pair ({src}, {dst}); "
                "the destination is unreachable under this table"
            )
        return path

    def route_classes(self, src: int, dst: int) -> Tuple[int, ...]:
        cls = self._classes.get((src, dst))
        if cls is not None:
            return cls
        return (0,) * self.hop_count(src, dst)

    def pairs(self) -> List[Tuple[int, int]]:
        """The (src, dst) pairs the table has routes for, sorted."""
        return sorted(self._routes)

    # ------------------------------------------------------------------ #
    # Construction / serialisation
    # ------------------------------------------------------------------ #

    @classmethod
    def from_routing(cls, routing: RoutingAlgorithm) -> "TableRouting":
        """Dump a routing function into an explicit all-pairs table.

        Pairs the source routing cannot route (disconnected under a
        degraded topology) are simply absent from the table — lookups
        for them raise the same ``RoutingError`` an absent JSON entry
        would.
        """
        routes: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        classes: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        n = routing.topology.num_nodes
        for src in range(n):
            for dst in range(n):
                if src == dst:
                    continue
                try:
                    routes[(src, dst)] = routing.route(src, dst)
                except RoutingError:
                    continue
                classes[(src, dst)] = routing.route_classes(src, dst)
        return cls(
            routing.topology,
            routes,
            classes=classes,
            num_vc_classes=getattr(routing, "num_vc_classes", 1),
        )

    def to_spec(self) -> Dict:
        """The JSON-serialisable table form (see :meth:`from_spec`)."""
        return {
            "num_vc_classes": self.num_vc_classes,
            "routes": [
                {
                    "src": s,
                    "dst": d,
                    "path": list(self._routes[(s, d)]),
                    **(
                        {"classes": list(self._classes[(s, d)])}
                        if (s, d) in self._classes
                        and any(self._classes[(s, d)])
                        else {}
                    ),
                }
                for s, d in sorted(self._routes)
            ],
        }

    @classmethod
    def from_spec(cls, topology: Topology, spec: Mapping) -> "TableRouting":
        """Build a table from its JSON object form."""
        entries = spec.get("routes")
        if not isinstance(entries, list):
            raise RoutingError("table spec needs a 'routes' list")
        routes: Dict[Tuple[int, int], List[int]] = {}
        classes: Dict[Tuple[int, int], List[int]] = {}
        for entry in entries:
            try:
                key = (int(entry["src"]), int(entry["dst"]))
                path = [int(n) for n in entry["path"]]
            except (KeyError, TypeError, ValueError) as exc:
                raise RoutingError(
                    f"bad route table entry {entry!r}: {exc}"
                ) from None
            if key in routes:
                raise RoutingError(f"duplicate route table entry for {key}")
            routes[key] = path
            if "classes" in entry:
                classes[key] = [int(c) for c in entry["classes"]]
        return cls(
            topology,
            routes,
            classes=classes,
            num_vc_classes=int(spec.get("num_vc_classes", 1)),
        )

    def to_json(self) -> str:
        """Serialise the table to canonical JSON text."""
        return json.dumps(self.to_spec(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(
        cls, topology: Topology, text: Union[str, bytes]
    ) -> "TableRouting":
        """Parse a table from JSON text (see :meth:`to_json`)."""
        try:
            spec = json.loads(text)
        except json.JSONDecodeError as exc:
            raise RoutingError(f"route table is not valid JSON: {exc}")
        if not isinstance(spec, dict):
            raise RoutingError("route table JSON must be an object")
        return cls.from_spec(topology, spec)

    def signature(self) -> Tuple:
        if self._signature is None:
            digest = hashlib.sha256(self.to_json().encode()).hexdigest()
            self._signature = ("TableRouting", digest)
        return self._signature


class FaultAwareRouting(RoutingAlgorithm):
    """Preserve-the-base-route routing over a set of failed links.

    The composite the reroute-and-readmit protocol runs on: every pair
    whose *base* route survives the failed links keeps it unchanged
    (streams not touching a dead link keep their exact channel sets and
    VC classes, which is what makes incremental re-admission equal a
    from-scratch analysis bit for bit), and every other pair detours via
    :class:`UpDownRouting` on the degraded graph.

    Deadlock freedom is by construction *and* checked mechanically:
    detoured routes live entirely in one extra VC class
    (``base.num_vc_classes``), so the (channel, class) dependency graph
    is the disjoint union of the base routing's graph (acyclic, on the
    surviving subset of its routes) and the up/down graph (acyclic on
    any topology) — no edge ever crosses the two layers because each
    route uses exactly one scheme.
    """

    def __init__(
        self,
        base: RoutingAlgorithm,
        failed_links: Iterable[Sequence[int]] = (),
    ):
        if isinstance(base, FaultAwareRouting):
            raise RoutingError(
                "FaultAwareRouting wraps a concrete base routing; build "
                "a new instance from the base instead of nesting"
            )
        degraded = DegradedTopology(base.topology, failed_links)
        super().__init__(degraded)
        self.base = base
        self.detour = UpDownRouting(degraded)
        self.num_vc_classes = base.num_vc_classes + 1
        self._uses_base_cache: Dict[Tuple[int, int], bool] = {}

    @property
    def failed_links(self) -> frozenset:
        return self.topology.failed_links  # type: ignore[attr-defined]

    def uses_base(self, src: int, dst: int) -> bool:
        """``True`` iff the pair keeps its base route (no dead links)."""
        key = (src, dst)
        cached = self._uses_base_cache.get(key)
        if cached is None:
            try:
                path = self.base.route(src, dst)
            except RoutingError:
                cached = False
            else:
                alive = self.topology.link_alive  # type: ignore
                cached = all(
                    alive(u, v) for u, v in zip(path[:-1], path[1:])
                )
            self._uses_base_cache[key] = cached
        return cached

    def _compute_route(self, src: int, dst: int) -> Tuple[int, ...]:
        if src == dst:
            return (src,)
        if self.uses_base(src, dst):
            return self.base.route(src, dst)
        try:
            return self.detour.route(src, dst)
        except RoutingError:
            raise RoutingError(
                f"no route from {src} to {dst}: the failed links "
                f"{sorted(self.failed_links)} disconnect the pair"
            ) from None

    def route_classes(self, src: int, dst: int) -> Tuple[int, ...]:
        if self.uses_base(src, dst):
            return self.base.route_classes(src, dst)
        return (self.base.num_vc_classes,) * self.hop_count(src, dst)

    def signature(self) -> Tuple:
        return (
            "FaultAwareRouting",
            self.base.signature(),
            tuple(sorted(self.failed_links)),
        )


# ---------------------------------------------------------------------- #
# Deadlock-freedom (channel dependency graph)
# ---------------------------------------------------------------------- #


def channel_dependency_graph(
    routing: RoutingAlgorithm, *, use_classes: bool = False
) -> "nx.DiGraph":
    """Build the channel-dependency graph of a routing function.

    With ``use_classes=False`` nodes are directed channels and there is an
    edge ``c1 -> c2`` iff some route uses ``c2`` immediately after ``c1``
    (Dally & Seitz's raw graph). With ``use_classes=True`` nodes are
    ``(channel, vc_class)`` pairs — the graph a VC-class scheme such as
    torus datelines must render acyclic. The construction enumerates all
    source/destination pairs, which is exact for deterministic routing;
    pairs the routing cannot serve at all (partial tables, pairs
    disconnected by failed links) contribute no dependencies and are
    skipped.
    """
    g = nx.DiGraph()
    if not use_classes:
        g.add_nodes_from(routing.topology.channels())
    n = routing.topology.num_nodes
    for src in range(n):
        for dst in range(n):
            if src == dst:
                continue
            try:
                chans = routing.route_channels(src, dst)
            except RoutingError:
                continue
            if use_classes:
                classes = routing.route_classes(src, dst)
                nodes = list(zip(chans, classes))
            else:
                nodes = list(chans)
            g.add_nodes_from(nodes)
            for c1, c2 in zip(nodes[:-1], nodes[1:]):
                g.add_edge(c1, c2)
    return g


def is_deadlock_free(routing: RoutingAlgorithm) -> bool:
    """Return ``True`` iff the routing function admits no dependency cycle
    over (channel, VC class) pairs — and therefore no wormhole deadlock
    given one buffer class per VC class (the simulator's provisioning)."""
    return nx.is_directed_acyclic_graph(
        channel_dependency_graph(routing, use_classes=True)
    )
