"""Deterministic routing algorithms and deadlock-freedom checking.

The feasibility analysis requires that "the routing path of each message
stream is statically determined by using a deterministic routing algorithm
such as X-Y routing for meshes" and that "deadlock situations never occur".
This module supplies:

* :class:`XYRouting` — the paper's X-Y routing for 2-D meshes (correct the x
  coordinate first, then y);
* :class:`DimensionOrderRouting` — the n-dimensional generalisation for
  meshes (X-Y is the 2-D case);
* :class:`ECubeRouting` — dimension-ordered routing for hypercubes;
* :class:`TorusDimensionOrderRouting` — minimal dimension-ordered routing on
  tori (chooses the shorter wrap direction; *not* deadlock-free without
  dateline VCs — the checker reports this);
* :func:`channel_dependency_graph` / :func:`is_deadlock_free` — Dally &
  Seitz's channel-dependency-cycle test, used to validate that a
  topology/routing pair admits no wormhole deadlock.

Routes are node paths; :meth:`RoutingAlgorithm.route_channels` converts a
path into the sequence of *directed* channels it occupies, which is what the
HP-set construction in :mod:`repro.core.hpset` intersects.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Sequence, Tuple

import networkx as nx

from ..errors import RoutingError
from .base import Channel, Topology
from .hypercube import Hypercube
from .mesh import Mesh, Mesh2D
from .torus import Torus

__all__ = [
    "RoutingAlgorithm",
    "DimensionOrderRouting",
    "XYRouting",
    "ECubeRouting",
    "TorusDimensionOrderRouting",
    "channel_dependency_graph",
    "is_deadlock_free",
]


class RoutingAlgorithm(ABC):
    """A deterministic (oblivious, single-path) routing function.

    Instances are bound to a :class:`~repro.topology.base.Topology` and map a
    (source, destination) pair to a unique node path. Results are memoised:
    the analysis and the simulator both ask for the same routes repeatedly.

    Routing functions additionally assign each channel use a **virtual
    channel class** (:meth:`route_classes`). Mesh and hypercube routing
    need only one class (their channel-dependency graphs are already
    acyclic); torus routing uses two *dateline* classes per dimension to
    break the wrap-around cycles. The simulator provisions
    ``priorities x num_vc_classes`` VCs per port, and the deadlock check
    runs on (channel, class) pairs.
    """

    #: Number of VC classes the routing function needs (1 = none).
    num_vc_classes: int = 1

    def __init__(self, topology: Topology):
        self.topology = topology
        self._route_cache: Dict[Tuple[int, int], Tuple[int, ...]] = {}

    # ------------------------------------------------------------------ #

    @abstractmethod
    def _compute_route(self, src: int, dst: int) -> Tuple[int, ...]:
        """Return the node path from ``src`` to ``dst`` (inclusive)."""

    def route(self, src: int, dst: int) -> Tuple[int, ...]:
        """Return the node path ``(src, ..., dst)`` for the pair.

        The path always starts at ``src`` and ends at ``dst``; for
        ``src == dst`` it is the single-node path ``(src,)``.
        """
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        self.topology.validate_node(src)
        self.topology.validate_node(dst)
        path = self._compute_route(src, dst)
        self._validate_path(src, dst, path)
        self._route_cache[key] = path
        return path

    def route_channels(self, src: int, dst: int) -> Tuple[Channel, ...]:
        """Return the directed channels occupied by the route."""
        path = self.route(src, dst)
        return tuple(zip(path[:-1], path[1:]))

    def route_classes(self, src: int, dst: int) -> Tuple[int, ...]:
        """Return the VC class of each channel use on the route.

        Aligned with :meth:`route_channels`; every class is in
        ``[0, num_vc_classes)``. The default (single-class) implementation
        returns all zeros.
        """
        return (0,) * self.hop_count(src, dst)

    def next_hop(self, current: int, dst: int) -> int:
        """Return the next node after ``current`` on the route to ``dst``.

        This is the form of the routing function a router evaluates when a
        header flit arrives. Deterministic routing guarantees the suffix of a
        route is itself the route from the intermediate node, so this is
        simply the second node of ``route(current, dst)``.
        """
        if current == dst:
            raise RoutingError(f"node {current} is already the destination")
        return self.route(current, dst)[1]

    def hop_count(self, src: int, dst: int) -> int:
        """Return the number of channels (hops) on the route."""
        return len(self.route(src, dst)) - 1

    # ------------------------------------------------------------------ #

    def _validate_path(
        self, src: int, dst: int, path: Sequence[int]
    ) -> None:
        if len(path) == 0 or path[0] != src or path[-1] != dst:
            raise RoutingError(
                f"route for ({src}, {dst}) has bad endpoints: {path!r}"
            )
        for u, v in zip(path[:-1], path[1:]):
            if not self.topology.has_channel(u, v):
                raise RoutingError(
                    f"route for ({src}, {dst}) uses nonexistent channel "
                    f"({u}, {v})"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.topology!r})"


class DimensionOrderRouting(RoutingAlgorithm):
    """Dimension-ordered routing on a mesh: correct dimension 0 fully, then
    dimension 1, and so on. Deadlock-free on meshes (the classical result
    proved via the acyclic channel-dependency graph, which
    :func:`is_deadlock_free` verifies mechanically)."""

    def __init__(self, topology: Mesh):
        if not isinstance(topology, Mesh):
            raise RoutingError(
                "DimensionOrderRouting requires a Mesh topology, got "
                f"{type(topology).__name__}"
            )
        if isinstance(topology, Torus):
            raise RoutingError(
                "use TorusDimensionOrderRouting for torus topologies"
            )
        super().__init__(topology)

    def _compute_route(self, src: int, dst: int) -> Tuple[int, ...]:
        mesh: Mesh = self.topology  # type: ignore[assignment]
        cur = list(mesh.coords(src))
        target = mesh.coords(dst)
        path = [src]
        for dim in range(len(mesh.dims)):
            step = 1 if target[dim] > cur[dim] else -1
            while cur[dim] != target[dim]:
                cur[dim] += step
                path.append(mesh.node_at(cur))
        return tuple(path)


class XYRouting(DimensionOrderRouting):
    """X-Y routing on a 2-D mesh: the paper's routing function.

    A message first travels along the x dimension to the destination column,
    then along y. This is exactly 2-D dimension-ordered routing; the subclass
    exists to match the paper's terminology and to insist on a 2-D mesh.
    """

    def __init__(self, topology: Mesh2D):
        if not isinstance(topology, Mesh2D):
            raise RoutingError(
                f"XYRouting requires a Mesh2D, got {type(topology).__name__}"
            )
        super().__init__(topology)


class ECubeRouting(RoutingAlgorithm):
    """E-cube routing on a hypercube: resolve differing address bits from the
    least significant to the most significant. Deadlock-free."""

    def __init__(self, topology: Hypercube):
        if not isinstance(topology, Hypercube):
            raise RoutingError(
                f"ECubeRouting requires a Hypercube, got {type(topology).__name__}"
            )
        super().__init__(topology)

    def _compute_route(self, src: int, dst: int) -> Tuple[int, ...]:
        path = [src]
        cur = src
        diff = src ^ dst
        bit = 0
        while diff:
            if diff & 1:
                cur ^= 1 << bit
                path.append(cur)
            diff >>= 1
            bit += 1
        return tuple(path)


class TorusDimensionOrderRouting(RoutingAlgorithm):
    """Minimal dimension-ordered routing on a torus with dateline VCs.

    In each dimension the shorter of the two directions is taken (ties go
    to the positive direction). Wrap-around channels create cyclic raw
    channel dependencies, so the routing function assigns two **dateline**
    VC classes per dimension: a route travels in class 0 until it crosses
    the dimension's wrap link, then switches to class 1 for the rest of
    that dimension (and resets on entering the next dimension). The
    (channel, class) dependency graph is acyclic — verified mechanically by
    :func:`is_deadlock_free` — and the simulator provisions the extra VCs
    automatically from :attr:`num_vc_classes`.
    """

    num_vc_classes = 2

    def __init__(self, topology: Torus):
        if not isinstance(topology, Torus):
            raise RoutingError(
                f"TorusDimensionOrderRouting requires a Torus, got "
                f"{type(topology).__name__}"
            )
        super().__init__(topology)
        self._class_cache: Dict[Tuple[int, int], Tuple[int, ...]] = {}

    def _steps(self, src: int, dst: int):
        """Yield (dim, step, hops) per dimension needing correction."""
        torus: Torus = self.topology  # type: ignore[assignment]
        cur = list(torus.coords(src))
        target = torus.coords(dst)
        for dim, extent in enumerate(torus.dims):
            delta = (target[dim] - cur[dim]) % extent
            if delta == 0:
                continue
            if delta <= extent - delta:
                yield dim, 1, delta, cur[dim]
            else:
                yield dim, -1, extent - delta, cur[dim]
            cur[dim] = target[dim]

    def _compute_route(self, src: int, dst: int) -> Tuple[int, ...]:
        torus: Torus = self.topology  # type: ignore[assignment]
        cur = list(torus.coords(src))
        path = [src]
        for dim, step, hops, _start in self._steps(src, dst):
            extent = torus.dims[dim]
            for _ in range(hops):
                cur[dim] = (cur[dim] + step) % extent
                path.append(torus.node_at(cur))
        return tuple(path)

    def route_classes(self, src: int, dst: int) -> Tuple[int, ...]:
        key = (src, dst)
        cached = self._class_cache.get(key)
        if cached is not None:
            return cached
        torus: Torus = self.topology  # type: ignore[assignment]
        classes: List[int] = []
        for dim, step, hops, start in self._steps(src, dst):
            extent = torus.dims[dim]
            coord = start
            crossed = False
            for _ in range(hops):
                nxt = (coord + step) % extent
                # The wrap link: extent-1 -> 0 going +, or 0 -> extent-1
                # going -.
                if (step == 1 and coord == extent - 1) or (
                    step == -1 and coord == 0
                ):
                    crossed = True
                classes.append(1 if crossed else 0)
                coord = nxt
        out = tuple(classes)
        if len(out) != self.hop_count(src, dst):  # pragma: no cover
            raise RoutingError("class/route length mismatch")
        self._class_cache[key] = out
        return out


# ---------------------------------------------------------------------- #
# Deadlock-freedom (channel dependency graph)
# ---------------------------------------------------------------------- #


def channel_dependency_graph(
    routing: RoutingAlgorithm, *, use_classes: bool = False
) -> "nx.DiGraph":
    """Build the channel-dependency graph of a routing function.

    With ``use_classes=False`` nodes are directed channels and there is an
    edge ``c1 -> c2`` iff some route uses ``c2`` immediately after ``c1``
    (Dally & Seitz's raw graph). With ``use_classes=True`` nodes are
    ``(channel, vc_class)`` pairs — the graph a VC-class scheme such as
    torus datelines must render acyclic. The construction enumerates all
    source/destination pairs, which is exact for deterministic routing.
    """
    g = nx.DiGraph()
    if not use_classes:
        g.add_nodes_from(routing.topology.channels())
    n = routing.topology.num_nodes
    for src in range(n):
        for dst in range(n):
            if src == dst:
                continue
            chans = routing.route_channels(src, dst)
            if use_classes:
                classes = routing.route_classes(src, dst)
                nodes = list(zip(chans, classes))
            else:
                nodes = list(chans)
            g.add_nodes_from(nodes)
            for c1, c2 in zip(nodes[:-1], nodes[1:]):
                g.add_edge(c1, c2)
    return g


def is_deadlock_free(routing: RoutingAlgorithm) -> bool:
    """Return ``True`` iff the routing function admits no dependency cycle
    over (channel, VC class) pairs — and therefore no wormhole deadlock
    given one buffer class per VC class (the simulator's provisioning)."""
    return nx.is_directed_acyclic_graph(
        channel_dependency_graph(routing, use_classes=True)
    )
