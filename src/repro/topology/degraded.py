"""A topology view with a set of failed physical links removed.

Link faults are modelled at the *physical link* granularity: failing the
link between ``u`` and ``v`` removes both directed channels ``(u, v)``
and ``(v, u)`` (wormhole channels are unidirectional, but a cut cable
takes both directions with it). :class:`DegradedTopology` wraps a base
topology and filters its adjacency, so every consumer — routing,
deadlock checking, the simulator's channel inventory — sees the degraded
network through the ordinary :class:`~repro.topology.base.Topology`
interface without the base object changing underneath it.

The view is immutable: failing or restoring another link builds a *new*
``DegradedTopology``. That keeps route caches and shared route tables
honest (they key on :meth:`signature`, which covers the failed-link
set) and makes the reroute-and-readmit path in the service layer a pure
function of (base network, failed links).
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

from ..errors import TopologyError
from .base import Topology

__all__ = ["DegradedTopology", "normalize_link"]

#: An undirected physical link, normalised as ``(min(u, v), max(u, v))``.
Link = Tuple[int, int]


def normalize_link(u: int, v: int) -> Link:
    """Return the canonical undirected form of the link ``u -- v``."""
    u, v = int(u), int(v)
    if u == v:
        raise TopologyError(f"link endpoints must differ, got ({u}, {v})")
    return (u, v) if u < v else (v, u)


class DegradedTopology(Topology):
    """``base`` minus a set of failed (undirected) physical links.

    Parameters
    ----------
    base:
        The intact topology. Never mutated.
    failed_links:
        Undirected links to remove, each an ``(u, v)`` pair in either
        order. Every link must exist in ``base``; failing a link twice
        is a caller bug and raises.
    """

    def __init__(
        self, base: Topology, failed_links: Iterable[Sequence[int]] = ()
    ):
        if isinstance(base, DegradedTopology):
            # Flatten: a degraded view of a degraded view keys its
            # signature on the *union*, so equality stays structural.
            failed_links = list(failed_links) + [
                list(link) for link in base.failed_links
            ]
            base = base.base
        self.base = base
        self.num_nodes = base.num_nodes
        failed = set()
        for link in failed_links:
            u, v = link
            norm = normalize_link(u, v)
            if norm in failed:
                raise TopologyError(
                    f"link {norm} listed as failed more than once"
                )
            if not base.has_channel(norm[0], norm[1]):
                raise TopologyError(
                    f"cannot fail nonexistent link {norm} "
                    f"on {type(base).__name__}"
                )
            failed.add(norm)
        self.failed_links: frozenset = frozenset(failed)
        self._neighbors: Dict[int, Tuple[int, ...]] = {}

    # ------------------------------------------------------------------ #

    def neighbors(self, node: int) -> Sequence[int]:
        cached = self._neighbors.get(node)
        if cached is None:
            cached = tuple(
                v for v in self.base.neighbors(node)
                if normalize_link(node, v) not in self.failed_links
            )
            self._neighbors[node] = cached
        return cached

    def coords(self, node: int) -> Tuple[int, ...]:
        return self.base.coords(node)

    def node_at(self, coords: Iterable[int]) -> int:
        return self.base.node_at(coords)

    def signature(self) -> Tuple:
        return (
            "DegradedTopology",
            self.base.signature(),
            tuple(sorted(self.failed_links)),
        )

    # ------------------------------------------------------------------ #

    def link_alive(self, u: int, v: int) -> bool:
        """``True`` iff the physical link ``u -- v`` is not failed."""
        return normalize_link(u, v) not in self.failed_links

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DegradedTopology({self.base!r}, "
            f"failed={sorted(self.failed_links)})"
        )
