"""Memoised all-pairs route tables, shared across engine instances.

Routes are pure functions of (routing class, topology structure): the
same deterministic routing algorithm on structurally identical
topologies produces identical paths forever. The admission engine asks
for the *channel set* of a route on every attach — and with tens of
(src, dst) pairs recurring across the lifetime of a broker (and across
the several engines a process may host: servers, benchmarks, replicas),
per-engine caches rediscover the same frozensets over and over
(BENCH_PR3 recorded 127 misses against 1 hit).

:func:`shared_route_table` keys a process-wide table on
``(routing class name, topology.signature())`` so every engine bound to
an equivalent network shares one lazily-filled all-pairs map. The table
*survives* ``invalidate_caches`` storms by recompute-on-demand: clearing
it is always safe (entries are derived data, never a source of truth)
and the next lookup repopulates from the routing function.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from .base import Channel
from .routing import RoutingAlgorithm

__all__ = ["RouteTable", "shared_route_table", "clear_shared_route_tables"]


class RouteTable:
    """Lazy all-pairs ``(src, dst) -> frozenset(channels)`` memo.

    Bound to one routing function; entries are computed on first lookup
    and immutable afterwards. ``clear()`` drops every entry (the
    chaos-campaign storm path) — correctness never depends on the table
    being warm.
    """

    __slots__ = ("routing", "_channels")

    def __init__(self, routing: RoutingAlgorithm):
        self.routing = routing
        self._channels: Dict[Tuple[int, int], FrozenSet[Channel]] = {}

    def lookup(
        self, src: int, dst: int
    ) -> Tuple[FrozenSet[Channel], bool]:
        """Return ``(channel set, was_cached)`` for the pair."""
        key = (src, dst)
        chans = self._channels.get(key)
        if chans is not None:
            return chans, True
        chans = frozenset(self.routing.route_channels(src, dst))
        self._channels[key] = chans
        return chans, False

    def channels(self, src: int, dst: int) -> FrozenSet[Channel]:
        """Return the directed channel set of the route for the pair."""
        return self.lookup(src, dst)[0]

    def clear(self) -> None:
        """Drop every memoised pair (recomputed on demand)."""
        self._channels.clear()

    def __len__(self) -> int:
        return len(self._channels)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RouteTable({type(self.routing).__name__}, "
            f"pairs={len(self._channels)})"
        )


_SHARED: Dict[Tuple, RouteTable] = {}


def shared_route_table(routing: RoutingAlgorithm) -> RouteTable:
    """Return the process-wide route table for the routing function.

    Keyed on ``(routing signature, topology signature)``: two engines
    over structurally identical networks with equivalent routing
    functions get the *same* table object, so one engine's lookups warm
    the other's. Parameterised routings (loaded tables, failed-link
    sets) fold their parameters into
    :meth:`~repro.topology.routing.RoutingAlgorithm.signature`, so two
    brokers degraded by *different* link failures never share a table.
    """
    key = (routing.signature(), routing.topology.signature())
    table = _SHARED.get(key)
    if table is None:
        table = RouteTable(routing)
        _SHARED[key] = table
    return table


def clear_shared_route_tables() -> None:
    """Drop every shared table entirely (tests and benchmarks)."""
    _SHARED.clear()
