"""k-ary n-cube (torus) topology.

The paper's scheme is not tied to meshes: any topology with a deterministic
deadlock-free routing function works, because the analysis only consumes the
set of directed channels each stream's route occupies. The torus is provided
as the most common alternative substrate; with it we use dimension-ordered
routing over *dateline-split* virtual channel classes in hardware — in this
reproduction the simulator models one flat VC set per priority, so torus
routing is restricted to the minimal direction and the deadlock check in
:mod:`repro.topology.routing` reports whether the combination is safe.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import TopologyError
from .mesh import Mesh

__all__ = ["Torus"]


class Torus(Mesh):
    """A k-ary n-cube: a mesh with wrap-around channels in every dimension.

    Dimensions of extent 1 or 2 do not receive duplicate wrap links (in a
    2-extent dimension the "wrap" would coincide with the mesh link).
    """

    def __init__(self, dims: Sequence[int]):
        super().__init__(dims)
        self._neighbor_cache: Dict[int, Tuple[int, ...]] = {}

    def neighbors(self, node: int) -> Tuple[int, ...]:
        cached = self._neighbor_cache.get(node)
        if cached is not None:
            return cached
        self.validate_node(node)
        coords = self.coords(node)
        result: List[int] = []
        for dim, (c, extent, stride) in enumerate(
            zip(coords, self.dims, self._strides)
        ):
            if extent == 1:
                continue
            down = node - stride if c > 0 else node + (extent - 1) * stride
            up = node + stride if c < extent - 1 else node - (extent - 1) * stride
            if down not in result:
                result.append(down)
            if up not in result and up != down:
                result.append(up)
        out = tuple(result)
        self._neighbor_cache[node] = out
        return out

    def hop_distance(self, src: int, dst: int) -> int:
        """Return the minimal hop count, taking wrap-around into account."""
        sc, dc = self.coords(src), self.coords(dst)
        total = 0
        for a, b, extent in zip(sc, dc, self.dims):
            d = abs(a - b)
            total += min(d, extent - d)
        return total
