"""Abstract interconnection-network topologies.

The paper targets "general point-to-point real-time multicomputer systems"
(Fig. 1): a set of processing nodes joined by *directed* physical channels.
The evaluation uses a 10x10 two-dimensional mesh, but the model section also
names hypercubes, so the topology layer is kept generic.

A topology here is a static directed graph:

* **nodes** are dense integer identifiers ``0 .. num_nodes-1``;
* **channels** are ordered pairs ``(u, v)`` of adjacent nodes, one per
  direction of each physical link (wormhole channels are unidirectional —
  each direction is arbitrated independently);
* concrete subclasses additionally expose a coordinate system
  (:meth:`Topology.coords` / :meth:`Topology.node_at`) used by
  dimension-ordered routing algorithms.

The class is deliberately small: routing lives in
:mod:`repro.topology.routing` and the cycle-accurate channel model lives in
:mod:`repro.sim.router` — the topology only answers *what exists and what is
adjacent to what*.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Iterator, Sequence, Tuple

import networkx as nx

from ..errors import TopologyError

__all__ = ["Channel", "Topology"]

#: A directed physical channel, identified by its (upstream, downstream) nodes.
Channel = Tuple[int, int]


class Topology(ABC):
    """Base class for static point-to-point interconnection topologies.

    Subclasses must populate :attr:`num_nodes` and implement
    :meth:`neighbors`, :meth:`coords` and :meth:`node_at`.
    """

    #: Total number of processing nodes in the network.
    num_nodes: int

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #

    def nodes(self) -> range:
        """Return the node identifiers as a :class:`range`."""
        return range(self.num_nodes)

    @abstractmethod
    def neighbors(self, node: int) -> Sequence[int]:
        """Return the nodes adjacent to ``node`` (order is deterministic)."""

    def signature(self) -> Tuple:
        """Return a structural identity key for the topology.

        Two topologies with equal signatures have identical node sets,
        channel sets and coordinate systems, so any deterministic routing
        function of the same class produces identical routes on them —
        the key the shared route table of
        :mod:`repro.topology.route_table` memoises under. The default
        ``(class name, num_nodes)`` is sufficient for topologies fully
        determined by their node count (e.g. hypercubes); subclasses
        with extra shape parameters must override (meshes key on their
        dimension extents).
        """
        return (type(self).__name__, self.num_nodes)

    def channels(self) -> Iterator[Channel]:
        """Yield every directed channel ``(u, v)`` in the network."""
        for u in self.nodes():
            for v in self.neighbors(u):
                yield (u, v)

    def num_channels(self) -> int:
        """Return the number of directed channels."""
        return sum(1 for _ in self.channels())

    def has_channel(self, u: int, v: int) -> bool:
        """Return ``True`` iff a directed channel ``u -> v`` exists."""
        self.validate_node(u)
        return v in self.neighbors(u)

    # ------------------------------------------------------------------ #
    # Coordinates
    # ------------------------------------------------------------------ #

    @abstractmethod
    def coords(self, node: int) -> Tuple[int, ...]:
        """Return the coordinate tuple of ``node``."""

    @abstractmethod
    def node_at(self, coords: Iterable[int]) -> int:
        """Return the node id at coordinate tuple ``coords``."""

    # ------------------------------------------------------------------ #
    # Validation and conversion
    # ------------------------------------------------------------------ #

    def validate_node(self, node: int) -> int:
        """Return ``node`` if valid, else raise :class:`TopologyError`."""
        if not isinstance(node, (int,)) or isinstance(node, bool):
            raise TopologyError(f"node id must be an int, got {node!r}")
        if not 0 <= node < self.num_nodes:
            raise TopologyError(
                f"node {node} out of range [0, {self.num_nodes})"
            )
        return node

    def to_networkx(self) -> "nx.DiGraph":
        """Return the topology as a :class:`networkx.DiGraph`.

        Nodes carry a ``coords`` attribute; the graph is a snapshot — mutating
        it does not affect the topology.
        """
        g = nx.DiGraph()
        for n in self.nodes():
            g.add_node(n, coords=self.coords(n))
        g.add_edges_from(self.channels())
        return g

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #

    def degree(self, node: int) -> int:
        """Return the out-degree (= in-degree for our symmetric links)."""
        return len(self.neighbors(node))

    def __contains__(self, node: object) -> bool:
        return isinstance(node, int) and 0 <= node < self.num_nodes

    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(num_nodes={self.num_nodes})"
