"""k-ary n-dimensional mesh topologies.

The paper's evaluation network is a 10x10 two-dimensional mesh with X-Y
routing (deadlock-free dimension-ordered routing). :class:`Mesh` implements
the general k-ary n-mesh; :class:`Mesh2D` is the convenience subclass used
throughout the reproduction and by the paper's worked example in section 4.4.

Coordinate convention
---------------------
A node's coordinate tuple is ``(x0, x1, ..., x_{n-1})`` with ``x0`` the
fastest-varying ("x") dimension, matching the paper's ``(x, y)`` pairs: node
``(x, y)`` of a ``width x height`` mesh has id ``y * width + x``. Channels
connect nodes that differ by exactly one in exactly one coordinate; meshes
have no wrap-around links (see :mod:`repro.topology.torus` for those).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import TopologyError
from .base import Topology

__all__ = ["Mesh", "Mesh2D"]


class Mesh(Topology):
    """A k-ary n-dimensional mesh with per-dimension extents.

    Parameters
    ----------
    dims:
        Extent of each dimension, e.g. ``(10, 10)`` for the paper's network.
        Every extent must be a positive integer and the mesh must contain at
        least one node.
    """

    def __init__(self, dims: Sequence[int]):
        dims = tuple(int(d) for d in dims)
        if len(dims) == 0:
            raise TopologyError("mesh needs at least one dimension")
        if any(d <= 0 for d in dims):
            raise TopologyError(f"all mesh extents must be positive, got {dims}")
        self.dims: Tuple[int, ...] = dims
        self.num_nodes = 1
        for d in dims:
            self.num_nodes *= d
        # Strides for mixed-radix node-id <-> coordinate conversion.
        self._strides: Tuple[int, ...] = tuple(
            self._stride(i) for i in range(len(dims))
        )
        self._neighbor_cache: Dict[int, Tuple[int, ...]] = {}

    def _stride(self, dim: int) -> int:
        s = 1
        for d in self.dims[:dim]:
            s *= d
        return s

    def signature(self) -> Tuple:
        # num_nodes alone is ambiguous for meshes (3x4 vs 4x3): key on
        # the ordered extents. Torus inherits this — the class name in
        # the key separates wrap-around from plain meshes.
        return (type(self).__name__, self.dims)

    # ------------------------------------------------------------------ #
    # Coordinates
    # ------------------------------------------------------------------ #

    def coords(self, node: int) -> Tuple[int, ...]:
        self.validate_node(node)
        out: List[int] = []
        for extent in self.dims:
            out.append(node % extent)
            node //= extent
        return tuple(out)

    def node_at(self, coords: Iterable[int]) -> int:
        coords = tuple(int(c) for c in coords)
        if len(coords) != len(self.dims):
            raise TopologyError(
                f"expected {len(self.dims)} coordinates, got {len(coords)}"
            )
        node = 0
        for c, extent, stride in zip(coords, self.dims, self._strides):
            if not 0 <= c < extent:
                raise TopologyError(
                    f"coordinate {c} out of range [0, {extent}) in {coords}"
                )
            node += c * stride
        return node

    # ------------------------------------------------------------------ #
    # Adjacency
    # ------------------------------------------------------------------ #

    def neighbors(self, node: int) -> Tuple[int, ...]:
        cached = self._neighbor_cache.get(node)
        if cached is not None:
            return cached
        self.validate_node(node)
        coords = self.coords(node)
        result: List[int] = []
        for dim, (c, extent, stride) in enumerate(
            zip(coords, self.dims, self._strides)
        ):
            if c > 0:
                result.append(node - stride)
            if c < extent - 1:
                result.append(node + stride)
        out = tuple(result)
        self._neighbor_cache[node] = out
        return out

    def hop_distance(self, src: int, dst: int) -> int:
        """Return the minimal hop count between two nodes (Manhattan)."""
        sc, dc = self.coords(src), self.coords(dst)
        return sum(abs(a - b) for a, b in zip(sc, dc))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(dims={self.dims})"


class Mesh2D(Mesh):
    """Two-dimensional mesh, the topology of the paper's evaluation.

    ``Mesh2D(10, 10)`` reproduces the paper's 10x10 network; ``node_xy`` /
    ``xy`` translate between the paper's ``(x, y)`` pairs and node ids.
    """

    def __init__(self, width: int, height: int | None = None):
        if height is None:
            height = width
        super().__init__((width, height))

    @property
    def width(self) -> int:
        """Extent of the x dimension."""
        return self.dims[0]

    @property
    def height(self) -> int:
        """Extent of the y dimension."""
        return self.dims[1]

    def node_xy(self, x: int, y: int) -> int:
        """Return the node id at ``(x, y)`` (paper coordinate order)."""
        return self.node_at((x, y))

    def xy(self, node: int) -> Tuple[int, int]:
        """Return the ``(x, y)`` coordinates of ``node``."""
        c = self.coords(node)
        return (c[0], c[1])
