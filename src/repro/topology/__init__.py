"""Interconnection-network topologies and deterministic routing.

This subpackage is the static substrate of the reproduction: it answers
"which directed channels exist" and "which channels does a (source,
destination) route occupy". Everything the feasibility analysis needs from
the network reduces to those two questions.
"""

from .base import Channel, Topology
from .degraded import DegradedTopology, normalize_link
from .hypercube import Hypercube
from .mesh import Mesh, Mesh2D
from .routing import (
    DimensionOrderRouting,
    ECubeRouting,
    FaultAwareRouting,
    RoutingAlgorithm,
    TableRouting,
    TorusDimensionOrderRouting,
    UpDownRouting,
    XYRouting,
    channel_dependency_graph,
    is_deadlock_free,
)
from .route_table import (
    RouteTable,
    clear_shared_route_tables,
    shared_route_table,
)
from .torus import Torus

__all__ = [
    "RouteTable",
    "shared_route_table",
    "clear_shared_route_tables",
    "Channel",
    "Topology",
    "DegradedTopology",
    "normalize_link",
    "Mesh",
    "Mesh2D",
    "Torus",
    "Hypercube",
    "RoutingAlgorithm",
    "DimensionOrderRouting",
    "XYRouting",
    "ECubeRouting",
    "TorusDimensionOrderRouting",
    "UpDownRouting",
    "TableRouting",
    "FaultAwareRouting",
    "channel_dependency_graph",
    "is_deadlock_free",
]
