"""Event-driven store-and-forward packet network simulator.

Early multi-hop networks (the paper's section 3 opening) buffer the whole
packet at every intermediate node: a packet transmission occupies one link
for ``C`` flit times, after which the complete packet sits in the next
node's buffer and competes for the next link. Contention is therefore a
per-link *queueing* problem, which is what makes the real-time-channel
analyses compositional — and what costs store-and-forward its latency:
``h * C`` unloaded versus wormhole's ``h + C - 1``.

Unlike the flit-level wormhole simulator (cycle-driven, because every busy
channel moves every cycle), store-and-forward state only changes at packet
boundaries, so this simulator is event-driven: a heap of (packet arrival,
link free) events, O(log n) per packet-hop.

Per-link scheduling policies (non-preemptive — a started transmission
always completes):

``"priority"``
    static priority by stream priority (ties: FIFO) — the policy matched
    by :func:`repro.rtchannel.schedulability.holistic_bounds`;
``"fifo"``
    arrival order;
``"edf"``
    earliest absolute deadline (release + stream deadline) first.

Buffers are unbounded (classical store-and-forward with ample node
memory); messages and statistics reuse the wormhole simulator's types so
results are directly comparable.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from ..core.streams import MessageStream, StreamSet
from ..errors import SimulationError
from ..sim.flit import Message
from ..sim.stats import StatsCollector
from ..topology.base import Channel, Topology
from ..topology.routing import RoutingAlgorithm

__all__ = ["StoreAndForwardSimulator", "SAF_SCHEDULERS"]

#: Supported per-link scheduling policies.
SAF_SCHEDULERS = ("priority", "fifo", "edf")


class _Link:
    """One directed link: a non-preemptive server with a waiting queue."""

    __slots__ = ("channel", "busy_until", "queue")

    def __init__(self, channel: Channel):
        self.channel = channel
        self.busy_until = 0
        #: Waiting packets as (msg, position, enqueue_time, seq).
        self.queue: List[Tuple[Message, int, int, int]] = []


class StoreAndForwardSimulator:
    """Store-and-forward packet simulation over a routed topology.

    Parameters mirror :class:`~repro.sim.network.WormholeSimulator` where
    applicable; ``scheduler`` picks the per-link policy.
    """

    def __init__(
        self,
        topology: Topology,
        routing: RoutingAlgorithm,
        streams: StreamSet,
        *,
        scheduler: str = "priority",
        warmup: int = 0,
    ):
        if scheduler not in SAF_SCHEDULERS:
            raise SimulationError(
                f"unknown scheduler {scheduler!r}; expected one of "
                f"{SAF_SCHEDULERS}"
            )
        if len(streams) == 0:
            raise SimulationError("cannot simulate an empty stream set")
        self.topology = topology
        self.routing = routing
        self.streams = streams
        self.scheduler = scheduler
        self.stats = StatsCollector(warmup=warmup)
        self.now = 0
        self._links: Dict[Channel, _Link] = {}
        self._events: List[Tuple[int, int, int, object]] = []
        self._seq = 0
        self._next_msg_id = 0
        self._in_flight = 0
        #: Per-message absolute deadline (EDF key).
        self._abs_deadline: Dict[int, int] = {}
        for s in streams:
            topology.validate_node(s.src)
            topology.validate_node(s.dst)

    # ------------------------------------------------------------------ #
    # Event plumbing
    # ------------------------------------------------------------------ #

    def _push(self, time: int, kind: int, payload: object) -> None:
        heapq.heappush(self._events, (time, self._seq, kind, payload))
        self._seq += 1

    def _link(self, channel: Channel) -> _Link:
        link = self._links.get(channel)
        if link is None:
            link = _Link(channel)
            self._links[channel] = link
        return link

    # ------------------------------------------------------------------ #
    # Model
    # ------------------------------------------------------------------ #

    def release_message(self, stream: MessageStream, time: int) -> Message:
        """Schedule one packet of ``stream`` at absolute ``time``."""
        path = self.routing.route(stream.src, stream.dst)
        msg = Message(
            msg_id=self._next_msg_id,
            stream_id=stream.stream_id,
            priority=stream.priority,
            src=stream.src,
            dst=stream.dst,
            length=stream.length,
            release=time,
            path=path,
        )
        self._next_msg_id += 1
        self._abs_deadline[msg.msg_id] = time + stream.deadline
        self._in_flight += 1
        # kind 0 = packet arrival at path position (payload: (msg, pos)).
        self._push(time, 0, (msg, 0))
        return msg

    def _queue_key(self, item: Tuple[Message, int, int, int]):
        msg, _pos, enq, seq = item
        if self.scheduler == "priority":
            return (-msg.priority, enq, seq)
        if self.scheduler == "edf":
            return (self._abs_deadline[msg.msg_id], enq, seq)
        return (enq, seq)

    def _arrive(self, msg: Message, position: int, time: int) -> None:
        node = msg.path[position]
        if node == msg.dst:
            msg.delivered = msg.length
            msg.finish = time
            self.stats.record(msg)
            self._abs_deadline.pop(msg.msg_id, None)
            self._in_flight -= 1
            return
        channel = (node, msg.path[position + 1])
        link = self._link(channel)
        link.queue.append((msg, position, time, self._seq))
        self._seq += 1
        # Defer the scheduling decision to a same-timestamp event so every
        # packet arriving at this instant is in the queue before the link
        # picks — otherwise arrival processing order would leak into the
        # arbitration.
        self._push(time, 1, channel)

    def _serve(self, link: _Link, time: int) -> None:
        if link.busy_until > time or not link.queue:
            return
        item = min(link.queue, key=self._queue_key)
        link.queue.remove(item)
        msg, position, _enq, _seq = item
        done = time + msg.length
        link.busy_until = done
        self._push(done, 0, (msg, position + 1))
        # kind 1 = link becomes free (payload: channel).
        self._push(done, 1, link.channel)

    def run(self, until: int) -> None:
        """Process events up to and including time ``until``."""
        if until < self.now:
            raise SimulationError(
                f"cannot run until {until}; clock is at {self.now}"
            )
        while self._events and self._events[0][0] <= until:
            time, _seq, kind, payload = heapq.heappop(self._events)
            self.now = time
            if kind == 0:
                msg, position = payload  # type: ignore[misc]
                self._arrive(msg, position, time)
            else:
                self._serve(self._link(payload), time)  # type: ignore[arg-type]
        self.now = max(self.now, until)

    def simulate_streams(
        self,
        until: int,
        *,
        phases: Optional[Dict[int, int]] = None,
        drain: bool = True,
        drain_limit: int = 1 << 20,
    ) -> StatsCollector:
        """Release periodic traffic below ``until`` and run (plus drain)."""
        phases = phases or {}
        for s in self.streams:
            t = phases.get(s.stream_id, 0)
            if t < 0:
                raise SimulationError(
                    f"stream {s.stream_id}: negative phase {t}"
                )
            while t < until:
                self.release_message(s, t)
                t += s.period
        self.run(until)
        if drain:
            deadline = until + drain_limit
            while self._in_flight and self._events \
                    and self._events[0][0] <= deadline:
                self.run(min(self._events[0][0], deadline))
        self.stats.unfinished = self._in_flight
        return self.stats

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StoreAndForwardSimulator(nodes={self.topology.num_nodes}, "
            f"streams={len(self.streams)}, scheduler={self.scheduler!r}, "
            f"t={self.now})"
        )
