"""Store-and-forward real-time channels: the related-work substrate.

The paper's introduction contrasts wormhole switching with the *real-time
channel* line of work on packet-switched multi-hop networks (Ferrari &
Verma's channel establishment; Kandlur, Shin & Ferrari's schedulability
conditions; Zheng & Shin's exact conditions). This subpackage implements
that world so the comparison the paper implies can actually be run:

* :mod:`.saf_network` — an event-driven store-and-forward packet
  simulator: a packet occupies one link at a time for its full
  transmission time and is buffered whole at every hop (per-link
  non-preemptive scheduling: static priority, FIFO or EDF);
* :mod:`.schedulability` — holistic end-to-end delay bounds: classical
  non-preemptive static-priority response-time analysis per link with
  release-jitter propagation along the route.

The headline comparison (``benchmarks/bench_rtchannel.py``): wormhole
no-load latency is ``h + C - 1`` against store-and-forward's ``h * C`` —
the motivation for wormhole switching — while per-link scheduling gives
the real-time-channel world its compositional analysis.
"""

from .saf_network import SAF_SCHEDULERS, StoreAndForwardSimulator
from .schedulability import (
    HolisticResult,
    LinkResponse,
    holistic_bounds,
)

__all__ = [
    "StoreAndForwardSimulator",
    "SAF_SCHEDULERS",
    "HolisticResult",
    "LinkResponse",
    "holistic_bounds",
]
