"""Holistic end-to-end delay bounds for store-and-forward channels.

The real-time-channel line of work (Ferrari & Verma; Kandlur, Shin &
Ferrari) guarantees end-to-end deadlines compositionally: each link is a
non-preemptive uniprocessor, a per-link worst-case response time is
computed, and per-link results compose along the route. We implement the
classical *holistic* form (response-time analysis with release-jitter
propagation, after Tindell & Clark):

Per link ``l`` and stream ``i`` (priorities: larger = more important):

1. blocking ``B = max C_j`` over lower-priority streams on ``l`` (a
   started packet transmission cannot be preempted);
2. the start-delay fixed point
   ``s = B + sum_{j in hp(i,l)} (floor((s + J_j,l) / T_j) + 1) * C_j``
   where ``J_{j,l}`` is stream ``j``'s release jitter at ``l``;
3. the link response ``R_{i,l} = s + C_i``;
4. jitter propagation: ``J_{i, next link} = sum of responses so far minus
   the best case (C_i per link)``.

Passes repeat until every jitter is stable (jitters grow monotonically, so
the iteration converges or overflows the divergence cap). The end-to-end
bound is the sum of per-link responses. Equal-priority streams are treated
as mutually higher-priority (each can delay the other), keeping the bound
sound for the tie-breaking FIFO arbitration of the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..core.streams import MessageStream, StreamSet
from ..errors import AnalysisError
from ..topology.base import Channel
from ..topology.routing import RoutingAlgorithm

__all__ = ["LinkResponse", "HolisticResult", "holistic_bounds"]


@dataclass(frozen=True)
class LinkResponse:
    """Worst-case response of one stream at one link of its route."""

    channel: Channel
    blocking: int
    start_delay: int
    response: int
    jitter_in: int


@dataclass(frozen=True)
class HolisticResult:
    """End-to-end outcome for one stream."""

    stream_id: int
    #: Sum of per-link responses; ``-1`` when the iteration diverged.
    bound: int
    links: Tuple[LinkResponse, ...]
    converged: bool

    @property
    def feasible_within(self) -> Optional[int]:
        """The bound when it exists, else ``None``."""
        return self.bound if self.bound > 0 else None


def _link_response(
    stream: MessageStream,
    channel: Channel,
    members: Mapping[Channel, List[MessageStream]],
    jitter: Mapping[Tuple[int, Channel], int],
    jitter_in: int,
    *,
    max_bound: int,
) -> Optional[LinkResponse]:
    """Solve the non-preemptive start-delay fixed point at one link."""
    here = members[channel]
    hp = [m for m in here
          if m.stream_id != stream.stream_id
          and m.priority >= stream.priority]
    lp = [m for m in here
          if m.stream_id != stream.stream_id
          and m.priority < stream.priority]
    blocking = max((m.length for m in lp), default=0)
    s = blocking
    while True:
        interference = sum(
            ((s + jitter.get((m.stream_id, channel), 0)) // m.period + 1)
            * m.length
            for m in hp
        )
        nxt = blocking + interference
        if nxt == s:
            break
        if nxt > max_bound:
            return None
        s = nxt
    return LinkResponse(
        channel=channel,
        blocking=blocking,
        start_delay=s,
        response=s + stream.length,
        jitter_in=jitter_in,
    )


def holistic_bounds(
    streams: StreamSet,
    routing: RoutingAlgorithm,
    *,
    max_passes: int = 64,
    max_bound: int = 1 << 22,
) -> Dict[int, HolisticResult]:
    """Compute holistic end-to-end bounds for every stream.

    Returns per-stream results; a diverged stream (per-link demand at or
    above capacity, or jitters that never settle within ``max_passes``)
    reports ``bound == -1``.
    """
    if len(streams) == 0:
        raise AnalysisError("empty stream set")
    routes: Dict[int, Tuple[Channel, ...]] = {
        s.stream_id: routing.route_channels(s.src, s.dst) for s in streams
    }
    members: Dict[Channel, List[MessageStream]] = {}
    for s in streams:
        for ch in routes[s.stream_id]:
            members.setdefault(ch, []).append(s)

    #: (stream_id, channel) -> release jitter at that link.
    jitter: Dict[Tuple[int, Channel], int] = {}
    results: Dict[int, HolisticResult] = {}
    diverged: set[int] = set()

    for _ in range(max_passes):
        changed = False
        for s in streams:
            if s.stream_id in diverged:
                continue
            links: List[LinkResponse] = []
            acc_jitter = 0
            ok = True
            for ch in routes[s.stream_id]:
                new_j = acc_jitter
                old_j = jitter.get((s.stream_id, ch), 0)
                if new_j > old_j:
                    jitter[(s.stream_id, ch)] = new_j
                    changed = True
                resp = _link_response(
                    s, ch, members, jitter, new_j, max_bound=max_bound
                )
                if resp is None:
                    ok = False
                    break
                links.append(resp)
                acc_jitter += resp.response - s.length
            if not ok:
                diverged.add(s.stream_id)
                results[s.stream_id] = HolisticResult(
                    s.stream_id, -1, (), False
                )
                continue
            bound = sum(l.response for l in links)
            if bound > max_bound:
                diverged.add(s.stream_id)
                results[s.stream_id] = HolisticResult(
                    s.stream_id, -1, (), False
                )
                continue
            results[s.stream_id] = HolisticResult(
                s.stream_id, bound, tuple(links), True
            )
        if not changed:
            break
    else:
        # Jitters still moving after max_passes: flag everything still
        # marked converged=True as non-converged (bounds kept as computed,
        # which is optimistic — callers must check the flag).
        results = {
            sid: HolisticResult(r.stream_id, r.bound, r.links, False)
            if sid not in diverged else r
            for sid, r in results.items()
        }
    return results
