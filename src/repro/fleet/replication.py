"""Journal-shipping replication: warm standbys and explicit failover.

The broker journal (PR 3/5) is a deterministic replay log: every record
was appended only after the primary's engine accepted the op, and the
analysis has no hidden state, so replaying snapshot + journal rebuilds
the engine bit-identically. Replication is therefore *shipping the
journal*: a :class:`ShardStandby` bootstraps from the primary's
snapshot, then tails the journal file by byte offset and applies new
records to a warm in-memory engine.

The tailer never writes to the primary's files (recovery's torn-tail
truncate-repair is the primary's job; a standby racing it mid-append
could corrupt a live journal). A partial trailing record — no newline
yet, or bytes that don't parse — is simply not consumed; the next poll
retries from the same offset. Compaction shows up as the journal file
shrinking below the tail offset: the standby reloads the fresh snapshot
and restarts from offset zero.

Failover (:meth:`ShardStandby.promote`) is deliberately paranoid: the
standby catches up to the journal tip, a *fresh* host recovers from the
on-disk state the failed primary left behind, and the two SHA-256 state
fingerprints must be identical before the disk-recovered host is handed
to the fleet as the new primary. A mismatch means replication diverged
from recovery and promotion refuses.

Single-writer assumption: promotion happens only after the primary is
dead. Two hosts appending to one journal is outside the model.
"""

from __future__ import annotations

import hashlib
import json
import logging
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..errors import ReproError
from ..service.host import EngineHost
from .shards import Fleet

__all__ = ["JournalTailer", "ShardStandby", "StandbyPool"]

logger = logging.getLogger(__name__)


class JournalTailer:
    """Read committed journal records from a byte offset, read-only.

    Yields only complete, newline-terminated, well-formed records; a
    torn tail (crash mid-append) or a record still being written stays
    unconsumed until a later poll sees its newline. Detects compaction
    (file shrank below the offset) and reports it instead of guessing.
    """

    def __init__(self, journal_path: Union[str, Path]):
        self.path = Path(journal_path)
        self.offset = 0
        self._prefix_sha = hashlib.sha256(b"").hexdigest()

    def poll(self) -> Tuple[bool, List[Dict[str, Any]]]:
        """Return ``(compacted, new_ops)`` since the last poll.

        ``compacted`` means the journal was truncated since the last
        poll (the primary snapshotted); the caller must reload the
        snapshot and call :meth:`reset` before polling again. Detected
        two ways: the file shrank below the tail offset, or — when new
        appends already grew it back past the offset — the consumed
        prefix's SHA-256 no longer matches what was consumed (the bytes
        at ``[0, offset)`` are different records now). Without the
        second check a standby that polls rarely would silently resume
        mid-record in a *new* journal.
        """
        if not self.path.exists():
            return (self.offset > 0), []
        data = self.path.read_bytes()
        if len(data) < self.offset or (
            self.offset
            and hashlib.sha256(data[:self.offset]).hexdigest()
            != self._prefix_sha
        ):
            return True, []
        ops: List[Dict[str, Any]] = []
        pos = self.offset
        while True:
            nl = data.find(b"\n", pos)
            if nl == -1:
                break
            chunk = data[pos:nl].strip()
            if chunk:
                try:
                    op = json.loads(chunk.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    # A corrupt *interior* record cannot be skipped
                    # safely; stop here and let promotion's fingerprint
                    # check (against recovery, which raises on it) fail
                    # loudly rather than diverge silently.
                    break
                if isinstance(op, dict):
                    ops.append(op)
            pos = nl + 1
        self.offset = pos
        self._prefix_sha = hashlib.sha256(data[:pos]).hexdigest()
        return False, ops

    def reset(self) -> None:
        self.offset = 0
        self._prefix_sha = hashlib.sha256(b"").hexdigest()


class ShardStandby:
    """Warm replica of one shard: snapshot bootstrap + journal tail.

    The replica engine runs without persistence of its own — its state
    dir *is* the primary's, read-only. ``catch_up()`` is cheap enough to
    call on every poll tick; promotion calls it one final time before
    the fingerprint comparison.
    """

    def __init__(
        self,
        state_dir: Union[str, Path],
        topology_spec: Dict[str, Any],
        *,
        incremental: Optional[bool] = None,
    ):
        self.state_dir = Path(state_dir)
        self.topology_spec = dict(topology_spec)
        self.incremental = incremental
        self.host = EngineHost(self.topology_spec, incremental=incremental)
        self.tailer = JournalTailer(self.state_dir / "journal.jsonl")
        self.ops_applied = 0
        self.reloads = 0
        self._bootstrap()

    def _bootstrap(self) -> None:
        """(Re)build the replica from the primary's current snapshot."""
        self.host = EngineHost(
            self.topology_spec, incremental=self.incremental
        )
        self.tailer.reset()
        snapshot_path = self.state_dir / "snapshot.json"
        if not snapshot_path.exists():
            self._snapshot_sha = None
            return
        raw = snapshot_path.read_bytes()
        self._snapshot_sha = hashlib.sha256(raw).hexdigest()
        spec = json.loads(raw.decode("utf-8"))
        topo = spec.get("topology")
        if topo != self.topology_spec:
            raise ReproError(
                f"standby snapshot topology {topo} does not match the "
                f"shard topology {self.topology_spec}"
            )
        if spec.get("next_id") is not None:
            self.host.engine.advance_next_id(int(spec["next_id"]))
        applied = spec.get("applied")
        if isinstance(applied, dict):
            self.host._applied.update(
                {str(rid): dict(v) for rid, v in applied.items()}
            )
        entries = list(spec.get("streams", []))
        if entries:
            self.host.load_snapshot(entries)
        self.reloads += 1

    def catch_up(self) -> int:
        """Apply every record committed since the last call.

        Returns the number of ops applied. Reload-on-compaction loops
        until a poll makes progress without detecting a truncate.
        """
        applied = 0
        for _ in range(8):  # a compaction per iteration; 8 is paranoia
            # At offset zero neither the shrink check nor the consumed-
            # prefix SHA can see a truncation (nothing was consumed yet)
            # — a compaction after the bootstrap's snapshot read would
            # silently replay post-compact ops on a pre-compact
            # snapshot. The snapshot file's own hash closes that
            # window; it must be checked *before* the poll consumes.
            if (
                self.tailer.offset == 0
                and self._snapshot_sha != self._current_snapshot_sha()
            ):
                self._bootstrap()
                continue
            compacted, ops = self.tailer.poll()
            if compacted:
                self._bootstrap()
                continue
            for op in ops:
                self.host.apply_journal_op(op)
            applied += len(ops)
            self.ops_applied += len(ops)
            return applied
        raise ReproError(  # pragma: no cover - requires a compact storm
            f"standby for {self.state_dir} could not catch up: the "
            "primary compacts faster than the standby polls"
        )

    def _current_snapshot_sha(self) -> Optional[str]:
        snapshot_path = self.state_dir / "snapshot.json"
        if not snapshot_path.exists():
            return None
        return hashlib.sha256(snapshot_path.read_bytes()).hexdigest()

    def fingerprint(self) -> Tuple[str, Dict[str, Any]]:
        return self.host.fingerprint()

    def promote(self) -> EngineHost:
        """Fail over: return a disk-recovered host, verified against the
        caught-up replica.

        The promoted primary comes from a fresh recovery of the shard's
        state directory (it needs the journal file handle and must see
        exactly what a restart would), and its SHA-256 fingerprint must
        equal the replica's — proving journal shipping lost nothing the
        disk kept, and vice versa.
        """
        self.catch_up()
        replica_sha, replica_spec = self.host.fingerprint()
        promoted = EngineHost(
            self.topology_spec,
            state_dir=self.state_dir,
            incremental=self.incremental,
        )
        disk_sha, disk_spec = promoted.fingerprint()
        if disk_sha != replica_sha:  # pragma: no cover - the assertion
            promoted.close()
            raise ReproError(
                f"failover fingerprint mismatch for {self.state_dir}: "
                f"replica {replica_sha} vs disk {disk_sha} "
                f"(replica {len(replica_spec['streams'])} streams, "
                f"disk {len(disk_spec['streams'])})"
            )
        logger.info(
            "promoted standby for %s (%d streams, sha %s)",
            self.state_dir, len(disk_spec["streams"]), disk_sha[:12],
        )
        return promoted


class StandbyPool:
    """One warm standby per (tenant, shard) of a persistent fleet."""

    def __init__(self, fleet: Fleet, *, incremental: Optional[bool] = None):
        if fleet.state_dir is None:
            raise ReproError(
                "journal-shipping replication needs a persistent fleet "
                "(state_dir)"
            )
        self.fleet = fleet
        self.incremental = incremental
        self.standbys: Dict[Tuple[str, int], ShardStandby] = {}
        for tname, tf in fleet.tenants.items():
            for i in range(len(tf.hosts)):
                self.standbys[(tname, i)] = ShardStandby(
                    tf.state_dir / f"shard-{i}",
                    tf.topology_spec,
                    incremental=incremental,
                )

    def catch_up(self) -> int:
        """Poll every standby; returns total ops shipped this tick."""
        return sum(sb.catch_up() for sb in self.standbys.values())

    def promote(self, tenant: str, shard: int) -> EngineHost:
        """Fail the (dead) primary over to its standby.

        Swaps the verified disk-recovered host into the fleet and
        re-bootstraps the standby slot against the same directory, so
        the new primary is immediately replicated again.
        """
        key = (tenant, shard)
        if key not in self.standbys:
            raise ReproError(f"no standby for tenant {tenant!r} shard {shard}")
        tf = self.fleet.tenants[tenant]
        # The primary must be dead before its successor opens the
        # journal: detach closes an in-process host (idempotent, no-op
        # after a real crash) and evicts a worker-hosted shard from its
        # child process, so no worker respawn ever reopens this journal.
        tf.detach_shard(shard)
        promoted = self.standbys[key].promote()
        tf.replace_host(shard, promoted)
        self.standbys[key] = ShardStandby(
            tf.state_dir / f"shard-{shard}",
            tf.topology_spec,
            incremental=self.incremental,
        )
        return promoted
