"""Fleet chaos campaign: crashes, primary kills and failovers vs oracles.

The single-broker campaign (:mod:`repro.faults.campaign`) proves the
broker's recovery story; this module proves the *fleet's*: sharded
placement, cross-shard migration, journal-shipping standbys and
promotion must preserve the same two invariants under the same faults —

* **Bit-identity** — after the campaign, every tenant's fleet state
  (and a fresh fleet recovered from its disks) fingerprints equal to a
  fault-free single-engine oracle replaying the tenant's acked schedule.
  Sharding is a placement strategy, not an approximation.
* **Zero acked-then-lost, zero phantoms** — every acknowledged admit
  survives every crash, kill and promotion; nothing unacknowledged
  materialises.

The fault vocabulary is the fleet's deployment reality:

* **Journal faults** (disk_full / fsync_error / torn_write /
  crash_after_append, armed on the shared fault plane) — an
  :class:`~repro.faults.plane.InjectedCrash` escaping a shard is
  indistinguishable from the whole process dying, so the driver rebuilds
  the entire :class:`Fleet` from its state directory. Torn migrations
  (admitted on the target, crash before the source released) are
  exactly what fleet recovery's duplicate-repair exists for.
* **Primary kills** — a random shard stops serving mid-campaign
  (between ops: a crash point *within* an op is the journal faults'
  job). With probability ½ the driver fails over immediately; otherwise
  it keeps issuing ops — those that land on live shards proceed, the
  first that needs the dead shard forces the failover — so promotion
  happens with real traffic in flight around it.
* **Degraded shards** — a disk fault inside an op leaves that shard
  read-only; the driver clears it with a ``snapshot`` op, as a
  supervising client would.
* **Worker kills** (``workers > 0``) — a *real* ``SIGKILL`` of a live
  shard worker process, either between ops or armed to fire mid-RPC
  (after the request bytes left the parent, before the ack returns —
  the fate-unknown window). The supervisor restarts the worker with
  journal recovery and the driver retries the op under the same rid;
  idempotent replay must return the committed outcome. Injected journal
  faults are a single-process trick and cannot cross the process
  boundary, so worker campaigns trade ``persistence_rate`` for
  ``worker_kill_rate``.

Determinism: the schedule and the fault placement draw from independent
seeded streams, so replaying a seed replays the campaign, faults and
kills included. (Worker campaigns pin *which* op a SIGKILL lands on;
where inside the kernel's scheduling the process actually dies is real
nondeterminism — that is the point — but the acked-ops invariants hold
on every interleaving.)
"""

from __future__ import annotations

import random
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..errors import ReproError
from ..faults.campaign import ScheduledOp, _apply_outcome, build_request
from ..faults.plane import (
    PERSISTENCE_FAULTS,
    SITE_JOURNAL_APPEND,
    FaultPlane,
    FaultSpec,
    InjectedCrash,
)
from ..service.host import EngineHost
from ..service.loadgen import churn_spec
from .replication import StandbyPool
from .shards import Fleet, TenantSpec

__all__ = [
    "FleetChaosConfig",
    "FleetChaosReport",
    "generate_fleet_schedule",
    "run_fleet_chaos_campaign",
]

_MAX_ATTEMPTS = 32


@dataclass(frozen=True)
class FleetChaosConfig:
    """Everything a fleet campaign needs, derivable from one seed."""

    seed: int = 0
    ops: int = 200
    tenants: int = 3
    shards: int = 2
    width: int = 6
    height: int = 6
    target_live: int = 10
    priority_levels: int = 15
    #: Probability an op arms a random journal fault (on the shared
    #: plane: whichever shard appends next trips it). Ignored in worker
    #: mode — injection cannot cross the process boundary.
    persistence_rate: float = 0.20
    #: Probability an op is preceded by a primary kill (if none pending).
    kill_rate: float = 0.04
    #: Shard workers to run (0 = in-process shards, the default).
    workers: int = 0
    #: Probability an op is preceded by a real SIGKILL of a worker
    #: process (worker mode only). Half land between ops, half are
    #: armed to fire mid-RPC on the op itself.
    worker_kill_rate: float = 0.0
    backoff_base: float = 0.005
    backoff_cap: float = 0.1

    def topology_spec(self) -> Dict[str, Any]:
        return {"type": "mesh", "width": self.width, "height": self.height}

    @property
    def nodes(self) -> int:
        return self.width * self.height

    def tenant_specs(self) -> List[TenantSpec]:
        return [
            TenantSpec(
                f"tenant-{i}", f"key-{self.seed}-{i}", self.topology_spec()
            )
            for i in range(self.tenants)
        ]


def generate_fleet_schedule(
    cfg: FleetChaosConfig,
) -> List[Tuple[str, ScheduledOp]]:
    """Materialise the campaign's (tenant, op) schedule from the seed.

    Tenants interleave on one timeline — that is what makes migrations
    and kills land between *other* tenants' ops — but each tenant's
    subsequence is a plain churn schedule its oracle can replay alone.
    """
    rng = random.Random(cfg.seed)
    schedule: List[Tuple[str, ScheduledOp]] = []
    for i in range(cfg.ops):
        tenant = f"tenant-{rng.randrange(cfg.tenants)}"
        schedule.append((
            tenant,
            ScheduledOp(
                index=i,
                rid=f"f{cfg.seed}-{i}",
                bias=rng.random(),
                pick=rng.random(),
                spec=churn_spec(rng, cfg.nodes,
                                priority_levels=cfg.priority_levels),
            ),
        ))
    return schedule


def _run_tenant_oracles(
    cfg: FleetChaosConfig, schedule: List[Tuple[str, ScheduledOp]]
) -> Tuple[Dict[str, str], Dict[str, List[Dict[str, Any]]]]:
    """Fault-free single-engine reference per tenant.

    One :class:`EngineHost` (no persistence, no sharding) replays each
    tenant's subsequence; its fingerprint is the bar the sharded,
    crashed, failed-over fleet must clear bit-for-bit.
    """
    hosts = {
        f"tenant-{i}": EngineHost(cfg.topology_spec())
        for i in range(cfg.tenants)
    }
    live: Dict[str, List[int]] = {t: [] for t in hosts}
    outcomes: Dict[str, List[Dict[str, Any]]] = {t: [] for t in hosts}
    for tenant, entry in schedule:
        request = build_request(
            entry, live[tenant], target_live=cfg.target_live
        )
        response = hosts[tenant].handle_request(request)
        if not response.get("ok"):  # pragma: no cover - oracle is clean
            raise ReproError(
                f"oracle op {entry.index} ({tenant}) failed: {response}"
            )
        _apply_outcome(request, response, live[tenant], outcomes[tenant])
    shas = {t: h.fingerprint()[0] for t, h in hosts.items()}
    return shas, outcomes


@dataclass
class _FleetRun:
    """Mutable campaign state threaded through restarts."""

    live: Dict[str, List[int]] = field(default_factory=dict)
    outcomes: Dict[str, List[Dict[str, Any]]] = field(default_factory=dict)
    fleet_restarts: int = 0
    kills: int = 0
    promotions: int = 0
    degraded_recoveries: int = 0
    duplicate_acks: int = 0
    ops_while_dead: int = 0
    worker_kills: int = 0
    worker_retries: int = 0
    worker_restarts: int = 0


def _build_fleet(
    cfg: FleetChaosConfig, state_dir: Path, plane: FaultPlane,
    run: _FleetRun,
) -> Tuple[Fleet, StandbyPool]:
    """(Re)build the fleet + standbys from disk, riding out one crash.

    Fleet recovery itself journals (duplicate-repair releases, re-merge
    migrations), so a fault still armed from the op that crashed the
    previous incarnation can fire *during* recovery. Armed faults are
    one-shot: retrying once more always converges.
    """
    for _ in range(_MAX_ATTEMPTS):  # pragma: no branch
        try:
            fleet = Fleet(
                cfg.tenant_specs(),
                shards=cfg.shards,
                state_dir=state_dir,
                fault_plane=None if cfg.workers else plane,
                workers=cfg.workers,
            )
            return fleet, StandbyPool(fleet)
        except InjectedCrash:
            run.fleet_restarts += 1
    raise ReproError(  # pragma: no cover - one-shot faults converge
        f"fleet recovery did not converge in {_MAX_ATTEMPTS} attempts"
    )


def _promote_dead(
    fleet: Fleet, standbys: StandbyPool, run: _FleetRun
) -> None:
    """Fail every dead primary over to its standby."""
    for tname in sorted(fleet.tenants):
        tf = fleet.tenants[tname]
        for shard in sorted(tf.dead):
            standbys.promote(tname, shard)
            run.promotions += 1


def run_fleet_chaos_campaign(
    cfg: FleetChaosConfig,
    state_dir: Optional[Union[str, Path]] = None,
) -> "FleetChaosReport":
    """Run one full fleet campaign; everything derives from ``cfg.seed``."""
    t0 = time.perf_counter()
    schedule = generate_fleet_schedule(cfg)
    oracle_shas, oracle_outcomes = _run_tenant_oracles(cfg, schedule)

    plane = FaultPlane(cfg.seed + 1)
    driver_rng = random.Random(cfg.seed + 2)
    run = _FleetRun(
        live={f"tenant-{i}": [] for i in range(cfg.tenants)},
        outcomes={f"tenant-{i}": [] for i in range(cfg.tenants)},
    )

    tmp: Optional[tempfile.TemporaryDirectory] = None
    if state_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-fleet-chaos-")
        state_dir = tmp.name
    state_path = Path(state_dir)
    try:
        fleet, standbys = _build_fleet(cfg, state_path, plane, run)
        try:
            for tenant, entry in schedule:
                tf = fleet.tenants[tenant]
                # A primary kill lands between ops (a clean journal
                # boundary; intra-op crash points belong to the journal
                # faults). Half the time the failover is immediate; the
                # other half traffic keeps flowing and the first op that
                # needs the dead shard forces it.
                if (
                    not any(t.dead for t in fleet.tenants.values())
                    and driver_rng.random() < cfg.kill_rate
                ):
                    victim = driver_rng.randrange(len(tf.hosts))
                    standbys.catch_up()
                    tf.kill_host(victim)
                    run.kills += 1
                    if driver_rng.random() < 0.5:
                        _promote_dead(fleet, standbys, run)
                if (
                    fleet.supervisor is not None
                    and driver_rng.random() < cfg.worker_kill_rate
                ):
                    run.worker_kills += 1
                    if driver_rng.random() < 0.5:
                        # Between ops: the next request to land on this
                        # worker finds a corpse and rides the restart.
                        victim = driver_rng.randrange(
                            len(fleet.supervisor.workers)
                        )
                        fleet.supervisor.kill_worker(victim)
                    else:
                        # Mid-RPC: SIGKILL fires after this op's bytes
                        # reach the worker, before any ack — the
                        # fate-unknown window rid idempotency exists for.
                        fleet.supervisor.arm_inflight_kill()
                if (
                    cfg.workers == 0
                    and driver_rng.random() < cfg.persistence_rate
                ):
                    kind = PERSISTENCE_FAULTS[
                        driver_rng.randrange(len(PERSISTENCE_FAULTS))
                    ]
                    plane.arm(SITE_JOURNAL_APPEND, FaultSpec(kind))
                request = build_request(
                    entry, run.live[tenant], target_live=cfg.target_live
                )
                for attempt in range(_MAX_ATTEMPTS):
                    try:
                        response = fleet.handle_request(tenant, request)
                    except InjectedCrash:
                        # A crash anywhere is the whole process dying:
                        # drop every in-memory object and recover the
                        # full fleet (and fresh standbys) from disk.
                        run.fleet_restarts += 1
                        fleet.close()
                        fleet, standbys = _build_fleet(
                            cfg, state_path, plane, run
                        )
                        tf = fleet.tenants[tenant]
                        continue
                    if response.get("ok"):
                        break
                    if response.get("code") == "worker":
                        # The shard's worker died mid-op and is being
                        # restarted with journal recovery; re-issue the
                        # same rid — the idempotency table answers for
                        # whatever the dead worker committed. Back off
                        # between retries: a hot loop starves the dying
                        # child of the CPU it needs to finish exiting.
                        run.worker_retries += 1
                        time.sleep(
                            min(
                                cfg.backoff_cap,
                                cfg.backoff_base * (2 ** min(attempt, 8)),
                            )
                        )
                        continue
                    if response.get("code") == "degraded":
                        run.degraded_recoveries += 1
                        if tf.dead:
                            _promote_dead(fleet, standbys, run)
                        snap = fleet.handle_request(
                            tenant, {"op": "snapshot"}
                        )
                        if not snap.get("ok"):  # pragma: no cover
                            raise ReproError(
                                f"snapshot failed to clear degraded: "
                                f"{snap}"
                            )
                        continue
                    if "down" in str(response.get("error", "")):
                        # The op needs a dead shard: this is the
                        # failover moment, with the rest of the fleet's
                        # traffic already committed around it.
                        run.ops_while_dead += 1
                        _promote_dead(fleet, standbys, run)
                        continue
                    raise ReproError(
                        f"fleet op {entry.index} ({tenant}) failed "
                        f"hard: {response}"
                    )
                else:  # pragma: no cover - defensive
                    raise ReproError(
                        f"fleet op {entry.index} did not converge in "
                        f"{_MAX_ATTEMPTS} attempts"
                    )
                plane.disarm(SITE_JOURNAL_APPEND)
                if response.get("duplicate"):
                    run.duplicate_acks += 1
                _apply_outcome(
                    request, response, run.live[tenant],
                    run.outcomes[tenant],
                )

            # Leave no primary dead: promote stragglers so the final
            # fleet (and the fresh recovery below) is fully serving.
            _promote_dead(fleet, standbys, run)
            if fleet.supervisor is not None:
                # Quiesce: drop any unconsumed mid-RPC kill and bring
                # every worker back to serving before the read-only
                # fingerprint pass — the last op's SIGKILL may still
                # be tearing a worker down.
                fleet.supervisor.disarm_inflight_kill()
                fleet.supervisor.ensure_all()
            live_shas = {
                t: fleet.tenants[t].fingerprint()[0]
                for t in fleet.tenants
            }
            if fleet.supervisor is not None:
                run.worker_restarts = sum(
                    wp.restarts for wp in fleet.supervisor.workers
                )
        finally:
            fleet.close()

        # The verdict: a fresh, fault-free fleet recovered from the
        # chaos run's disks must land on each oracle's exact state.
        final = Fleet(
            cfg.tenant_specs(), shards=cfg.shards, state_dir=state_path
        )
        try:
            recovered: Dict[str, Tuple[str, Dict[str, Any]]] = {
                t: final.tenants[t].fingerprint() for t in final.tenants
            }
        finally:
            final.close()
    finally:
        if tmp is not None:
            tmp.cleanup()

    acked_then_lost: Dict[str, List[int]] = {}
    phantom_ids: Dict[str, List[int]] = {}
    mismatches = 0
    for tenant, outcomes in run.outcomes.items():
        expected: set = set()
        for outcome in outcomes:
            if outcome["op"] == "admit" and outcome["admitted"]:
                expected.update(outcome["ids"])
            elif outcome["op"] == "release":
                expected.difference_update(outcome["ids"])
        got_ids = {int(sid) for sid in recovered[tenant][1]["streams"]}
        lost = sorted(expected - got_ids)
        phantom = sorted(got_ids - expected)
        if lost:
            acked_then_lost[tenant] = lost
        if phantom:
            phantom_ids[tenant] = phantom
        mismatches += sum(
            1 for got, want in zip(outcomes, oracle_outcomes[tenant])
            if got != want
        ) + abs(len(outcomes) - len(oracle_outcomes[tenant]))

    return FleetChaosReport(
        seed=cfg.seed,
        ops=cfg.ops,
        tenants=cfg.tenants,
        shards=cfg.shards,
        committed=sum(len(o) for o in run.outcomes.values()),
        faults_total=plane.total_fired(),
        faults_by_layer=plane.counts_by_layer(),
        fleet_restarts=run.fleet_restarts,
        kills=run.kills,
        promotions=run.promotions,
        ops_while_dead=run.ops_while_dead,
        degraded_recoveries=run.degraded_recoveries,
        duplicate_acks=run.duplicate_acks,
        workers=cfg.workers,
        worker_kills=run.worker_kills,
        worker_retries=run.worker_retries,
        worker_restarts=run.worker_restarts,
        outcome_mismatches=mismatches,
        oracle_shas=oracle_shas,
        live_shas=live_shas,
        recovered_shas={t: sha for t, (sha, _) in recovered.items()},
        acked_then_lost=acked_then_lost,
        phantom_ids=phantom_ids,
        seconds=time.perf_counter() - t0,
    )


@dataclass
class FleetChaosReport:
    """Outcome of one fleet campaign (``repro chaos --fleet``)."""

    seed: int
    ops: int
    tenants: int
    shards: int
    committed: int
    faults_total: int
    faults_by_layer: Dict[str, Dict[str, int]]
    fleet_restarts: int
    kills: int
    promotions: int
    ops_while_dead: int
    degraded_recoveries: int
    duplicate_acks: int
    workers: int
    worker_kills: int
    worker_retries: int
    worker_restarts: int
    outcome_mismatches: int
    oracle_shas: Dict[str, str]
    live_shas: Dict[str, str]
    recovered_shas: Dict[str, str]
    acked_then_lost: Dict[str, List[int]]
    phantom_ids: Dict[str, List[int]]
    seconds: float

    @property
    def bit_identical(self) -> bool:
        """Both the surviving fleet and a fresh disk recovery match
        every tenant's single-engine oracle."""
        return all(
            self.live_shas.get(t) == sha and self.recovered_shas.get(t) == sha
            for t, sha in self.oracle_shas.items()
        )

    @property
    def ok(self) -> bool:
        return (
            self.bit_identical
            and not self.acked_then_lost
            and not self.phantom_ids
            and self.outcome_mismatches == 0
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "ops": self.ops,
            "tenants": self.tenants,
            "shards": self.shards,
            "committed": self.committed,
            "faults": {
                "total": self.faults_total,
                "by_layer": self.faults_by_layer,
            },
            "fleet_restarts": self.fleet_restarts,
            "kills": self.kills,
            "promotions": self.promotions,
            "ops_while_dead": self.ops_while_dead,
            "degraded_recoveries": self.degraded_recoveries,
            "duplicate_acks": self.duplicate_acks,
            "workers": self.workers,
            "worker_kills": self.worker_kills,
            "worker_retries": self.worker_retries,
            "worker_restarts": self.worker_restarts,
            "outcome_mismatches": self.outcome_mismatches,
            "oracle_shas": self.oracle_shas,
            "live_shas": self.live_shas,
            "recovered_shas": self.recovered_shas,
            "bit_identical": self.bit_identical,
            "acked_then_lost": self.acked_then_lost,
            "phantom_ids": self.phantom_ids,
            "seconds": round(self.seconds, 3),
            "ok": self.ok,
        }

    def summary(self) -> str:
        verdict = "OK" if self.ok else "FAILED"
        worker_leg = (
            f"{self.worker_kills} worker SIGKILLs -> "
            f"{self.worker_restarts} restarts "
            f"({self.worker_retries} retried ops), "
            if self.workers else ""
        )
        return (
            f"fleet chaos seed={self.seed}: {self.ops} ops over "
            f"{self.tenants} tenants x {self.shards} shards"
            f"{f' x {self.workers} workers' if self.workers else ''}, "
            f"{self.faults_total} faults, {self.fleet_restarts} fleet "
            f"restarts, {self.kills} kills -> {self.promotions} "
            f"promotions ({self.ops_while_dead} ops hit a dead shard), "
            f"{worker_leg}"
            f"{self.duplicate_acks} duplicate acks -> recovery "
            f"{'bit-identical' if self.bit_identical else 'DIVERGED'}, "
            f"{sum(map(len, self.acked_then_lost.values()))} "
            f"acked-then-lost [{verdict}] ({self.seconds:.1f}s)"
        )
