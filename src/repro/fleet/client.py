"""HTTP client for the fleet gateway, drop-in for ``BrokerClient``.

:class:`GatewayClient` speaks the gateway's ``POST /v1/op`` passthrough
(one broker-protocol request object per HTTP request, keep-alive
connection) while presenting exactly the :class:`~repro.service.loadgen
.BrokerClient` surface — ``send``/``flush``/``recv``/``request``/
``check``/``request_with_retry``/``reconnect``/``close``/``in_flight`` —
so the churn load generator (:func:`repro.service.loadgen.run_load`) and
the perf harness drive either transport unchanged (``repro load
--target http://...``).

One semantic difference is hidden, not exposed: HTTP/1.1 without
pipelining cannot keep multiple requests in flight on one connection,
so :meth:`send` executes the op eagerly and queues the *response*;
:meth:`recv` then pops FIFO exactly as the socket client does. The
observable op/response ordering is identical.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from collections import deque
from typing import Any, Deque, Dict, Optional
from urllib.parse import urlsplit

from ..errors import ReproError
from ..service.protocol import retry_backoff

__all__ = ["GatewayClient"]


class GatewayClient:
    """Blocking keep-alive HTTP client for one gateway connection."""

    def __init__(
        self,
        target: str,
        *,
        api_key: str,
        timeout: float = 30.0,
    ):
        split = urlsplit(target if "//" in target else f"http://{target}")
        if split.scheme not in ("http", ""):
            raise ReproError(
                f"gateway target must be http://host:port, got {target!r}"
            )
        if not split.hostname or not split.port:
            raise ReproError(
                f"gateway target needs host and port, got {target!r}"
            )
        self._host = split.hostname
        self._port = split.port
        self._api_key = api_key
        self._timeout = timeout
        self._seq = 0
        # Responses already received but not yet recv()'d (FIFO).
        self._ready: Deque[Dict[str, Any]] = deque()
        self._connect()

    def _connect(self) -> None:
        self._conn = http.client.HTTPConnection(
            self._host, self._port, timeout=self._timeout
        )
        self._conn.connect()

    def reconnect(self, *, timeout: float = 10.0) -> None:
        """Tear the connection down and dial again, retrying until the
        gateway accepts or ``timeout`` expires."""
        self.close()
        self._ready.clear()
        deadline = time.monotonic() + timeout
        while True:
            try:
                self._connect()
                return
            except OSError:
                if time.monotonic() >= deadline:
                    raise ReproError(
                        f"gateway did not accept a reconnect within "
                        f"{timeout:.0f}s"
                    ) from None
                time.sleep(0.05)

    def _post(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        body = json.dumps(payload, separators=(",", ":")).encode()
        try:
            self._conn.request(
                "POST", "/v1/op", body=body,
                headers={
                    "Content-Type": "application/json",
                    "X-API-Key": self._api_key,
                },
            )
            response = self._conn.getresponse()
            data = response.read()
        except http.client.HTTPException as exc:
            raise ReproError(f"gateway request failed: {exc!r}") from exc
        if response.status in (401, 403):
            raise ReproError(
                f"gateway rejected the API key: {data.decode(errors='replace')}"
            )
        try:
            decoded = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ReproError(
                f"gateway returned non-JSON (status {response.status}): "
                f"{data[:200]!r}"
            ) from exc
        if not isinstance(decoded, dict):
            raise ReproError(f"gateway returned a non-object: {decoded!r}")
        return decoded

    def send(self, op: str, **fields: Any) -> int:
        """Execute one op and queue its response; returns the sequence
        number, consumed FIFO by :meth:`recv` (same contract as the
        socket client's pipelined send)."""
        self._seq += 1
        response = self._post({"op": op, "id": self._seq, **fields})
        if response.get("id") not in (None, self._seq):
            raise ReproError(
                f"response id {response.get('id')} does not match "
                f"request id {self._seq}"
            )
        self._ready.append(response)
        return self._seq

    def flush(self) -> None:
        """No-op: HTTP requests are pushed eagerly by :meth:`send`."""

    def recv(self, seq: Optional[int] = None) -> Dict[str, Any]:
        """Pop the oldest queued response (FIFO)."""
        if not self._ready:
            raise ReproError("recv with no request in flight")
        response = self._ready.popleft()
        if seq is not None and response.get("id") not in (None, seq):
            raise ReproError(
                f"recv out of order: oldest in-flight request is "
                f"{response.get('id')}, asked for {seq}"
            )
        return response

    @property
    def in_flight(self) -> int:
        """Number of responses queued but not yet recv()'d."""
        return len(self._ready)

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one op and return the matching response."""
        seq = self.send(op, **fields)
        return self.recv(seq)

    def check(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Like :meth:`request` but raises on ``ok: false`` responses."""
        response = self.request(op, **fields)
        if not response.get("ok"):
            raise ReproError(
                f"broker op {op!r} failed: {response.get('error')}"
            )
        return response

    def request_with_retry(
        self,
        op: str,
        *,
        rid: str,
        max_attempts: int = 6,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        rng: Optional[random.Random] = None,
        reconnect_timeout: float = 10.0,
        **fields: Any,
    ) -> Dict[str, Any]:
        """Send an idempotent mutation, retrying across dropped
        connections; every attempt carries the same ``rid`` so the fleet
        applies the mutation at most once (``"duplicate": true`` marks a
        replayed acknowledgement)."""
        last_exc: Optional[Exception] = None
        for attempt in range(max_attempts):
            if attempt:
                time.sleep(retry_backoff(
                    attempt - 1, base=backoff_base, cap=backoff_cap,
                    rng=rng,
                ))
                try:
                    self.reconnect(timeout=reconnect_timeout)
                except ReproError as exc:
                    last_exc = exc
                    continue
            try:
                return self.request(op, rid=rid, **fields)
            except (ReproError, OSError, ValueError) as exc:
                last_exc = exc
        raise ReproError(
            f"broker op {op!r} (rid {rid!r}) failed after "
            f"{max_attempts} attempts: {last_exc}"
        )

    # Gateway-specific conveniences (not part of the BrokerClient
    # surface; used by the CLI and tests).

    def get(self, path: str) -> Any:
        """GET an unauthenticated endpoint (/healthz, /metrics).

        Returns the decoded JSON object, or the raw text for
        non-JSON bodies (Prometheus exposition).
        """
        try:
            self._conn.request("GET", path)
            response = self._conn.getresponse()
            data = response.read()
        except http.client.HTTPException as exc:
            raise ReproError(f"gateway request failed: {exc!r}") from exc
        text = data.decode("utf-8", errors="replace")
        ctype = response.getheader("Content-Type", "")
        if "json" in ctype:
            return json.loads(text)
        return text

    def admin(self, action: str, **fields: Any) -> Dict[str, Any]:
        """POST /admin/{action} with this client's API key."""
        body = json.dumps(fields, separators=(",", ":")).encode()
        try:
            self._conn.request(
                "POST", f"/admin/{action}", body=body,
                headers={
                    "Content-Type": "application/json",
                    "X-API-Key": self._api_key,
                },
            )
            response = self._conn.getresponse()
            data = response.read()
        except http.client.HTTPException as exc:
            raise ReproError(f"gateway request failed: {exc!r}") from exc
        decoded = json.loads(data.decode("utf-8"))
        decoded["_status"] = response.status
        return decoded

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
