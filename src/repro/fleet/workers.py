"""Supervised worker processes: shard execution out of the fleet process.

PR 8's fleet put every shard of every tenant behind one event loop and
one GIL, so its throughput win was per-tenant isolation, not
parallelism. This module moves the engines into child processes:

Child side (``python -m repro.fleet.workers --config <json>``)
    :func:`worker_main` recovers one :class:`~repro.service.host.
    EngineHost` per assigned ``tenant/shard-i`` key from that shard's
    *unchanged* journal directory (``state_dir/<tenant>/shard-<i>``, so
    :class:`~repro.fleet.replication.JournalTailer` standbys keep
    tailing the same files), then serves the broker's JSON-lines
    protocol over a per-worker unix socket. The socket is bound only
    after every shard has recovered — binding *is* the readiness
    signal — and the same stale-socket hygiene rules as the broker
    apply (:func:`~repro.service.server.clear_stale_socket`): reclaim
    dead leftovers, refuse live servers, never delete non-sockets,
    unlink on clean shutdown.

Parent side
    :class:`WorkerSupervisor` spawns and monitors the children,
    restarts them on exit (journal recovery happens in the child's
    constructor), and owns one :class:`WorkerClient` RPC connection per
    worker. :class:`WorkerShard` is the shard-client proxy the fleet's
    shard manager composes instead of a local ``EngineHost``: the same
    ``handle_request`` + accessor surface, implemented as RPCs.

Requests are the normal broker ops plus a ``"shard"`` routing field;
``worker_*`` ops (hello/status/dump/bounds/stats/drop_rid/fingerprint/
detach/shutdown) carry the supervision and placement bookkeeping that
:class:`~repro.fleet.shards.TenantFleet` needs across the process
boundary.

Single-writer discipline: a shard's journal is only ever open in one
process. The child serves its shards single-threaded; the supervisor
``detach``\\ es a shard (child closes it and drops the key from the
respawn assignment) before a standby promotion opens the same journal
in the parent.

Mid-op worker death is safe by construction: committed mutations are
journaled with their ``rid`` before the ack, so the supervisor restarts
the worker (which recovers the journal) and the caller retries with the
same rid — the recovered idempotency table replays the committed
outcome instead of double-applying. That turns the crash-torn-migration
window (admit journaled on the target worker, release not yet journaled
on the source worker) into the same duplicate-id artefact fleet
recovery already repairs, now spanning two processes.
"""

from __future__ import annotations

import argparse
import faulthandler
import json
import logging
import os
import selectors
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..errors import AnalysisError, ReproError, StreamError
from ..service.host import DegradedError, EngineHost
from ..service.protocol import ProtocolError, encode, error_response
from ..service.server import clear_stale_socket

__all__ = [
    "WorkerClient",
    "WorkerDied",
    "WorkerProcess",
    "WorkerShard",
    "WorkerSupervisor",
    "worker_main",
]

logger = logging.getLogger(__name__)

#: How long the supervisor waits for a fresh child to recover its
#: journals and bind its socket before declaring the spawn failed.
SPAWN_TIMEOUT = float(os.environ.get("REPRO_WORKER_SPAWN_TIMEOUT", "60"))

#: Per-RPC socket timeout. Generous: a single admission verdict on a
#: large component under the slower backends is milliseconds, not tens
#: of seconds, so hitting this means the worker is wedged, not slow.
RPC_TIMEOUT = float(os.environ.get("REPRO_WORKER_RPC_TIMEOUT", "60"))

#: ``sun_path`` is ~108 bytes on Linux; leave headroom for the name.
_SOCKET_PATH_BUDGET = 90

_CODE_TO_ERROR = {
    "degraded": DegradedError,
    "protocol": ProtocolError,
    "stream": StreamError,
    "analysis": AnalysisError,
}


class WorkerDied(ReproError):
    """The worker's process or IPC connection went away mid-request.

    Raised by :class:`WorkerClient` — never returned as a protocol
    error — so callers can distinguish "the op failed" (the op never
    or definitely happened, per the response) from "the op's fate is
    unknown" (retry with the same rid after the supervisor restarts
    the worker).
    """


# --------------------------------------------------------------------- #
# Child side
# --------------------------------------------------------------------- #


class _WorkerServer:
    """The child's serving loop: N recovered EngineHosts, one socket."""

    def __init__(self, config: Dict[str, Any]):
        self.sock_path = Path(config["socket"])
        self.hosts: Dict[str, EngineHost] = {}
        for key in sorted(config["hosts"]):
            spec = config["hosts"][key]
            self.hosts[key] = EngineHost(
                spec["topology"],
                state_dir=spec["state_dir"],
                analysis=spec.get("analysis"),
                incremental=spec.get("incremental"),
            )
            logger.info(
                "worker %d recovered shard %s (%d streams)",
                os.getpid(), key, self.hosts[key].admitted_count(),
            )
        self.running = True
        self._listener: Optional[socket.socket] = None
        self._selector = selectors.DefaultSelector()
        self._buffers: Dict[socket.socket, bytes] = {}

    def bind(self) -> None:
        """Apply socket hygiene and bind; binding signals readiness."""
        if self.sock_path.exists():
            clear_stale_socket(self.sock_path)
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(str(self.sock_path))
        listener.listen(16)
        listener.setblocking(False)
        self._listener = listener
        self._selector.register(listener, selectors.EVENT_READ, "accept")

    def serve(self) -> None:
        while self.running:
            for sel_key, _ in self._selector.select(timeout=1.0):
                if sel_key.data == "accept":
                    self._accept()
                else:
                    self._read(sel_key.fileobj)

    def _accept(self) -> None:
        assert self._listener is not None
        try:
            conn, _ = self._listener.accept()
        except OSError:  # pragma: no cover - spurious wakeup
            return
        conn.setblocking(True)
        self._buffers[conn] = b""
        self._selector.register(conn, selectors.EVENT_READ, "conn")

    def _drop(self, conn: socket.socket) -> None:
        try:
            self._selector.unregister(conn)
        except (KeyError, ValueError):  # pragma: no cover - defensive
            pass
        self._buffers.pop(conn, None)
        conn.close()

    def _read(self, conn: socket.socket) -> None:
        try:
            chunk = conn.recv(65536)
        except OSError:
            self._drop(conn)
            return
        if not chunk:
            self._drop(conn)
            return
        self._buffers[conn] += chunk
        while self.running:
            buf = self._buffers.get(conn)
            if buf is None or b"\n" not in buf:
                return
            line, self._buffers[conn] = buf.split(b"\n", 1)
            response = self.handle_line(line)
            try:
                conn.sendall(encode(response))
            except OSError:
                self._drop(conn)
                return

    def handle_line(self, line: bytes) -> Dict[str, Any]:
        try:
            request = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return error_response(
                {}, f"request is not valid JSON: {exc}", code="protocol"
            )
        if not isinstance(request, dict):
            return error_response(
                {}, "request must be a JSON object", code="protocol"
            )
        op = request.get("op")
        if isinstance(op, str) and op.startswith("worker_"):
            try:
                return self._worker_op(op, request)
            except ReproError as exc:
                return error_response(request, str(exc), code="protocol")
        shard = request.get("shard")
        host = self.hosts.get(shard)
        if host is None:
            return error_response(
                request,
                f"worker does not host shard {shard!r} "
                f"(has: {sorted(self.hosts)})",
                code="protocol",
            )
        routed = {k: v for k, v in request.items() if k != "shard"}
        return host.handle_request(routed)

    def _shard_of(self, request: Dict[str, Any]) -> EngineHost:
        shard = request.get("shard")
        if shard not in self.hosts:
            raise ProtocolError(
                f"worker does not host shard {shard!r} "
                f"(has: {sorted(self.hosts)})"
            )
        return self.hosts[shard]

    def _worker_op(
        self, op: str, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        if op == "worker_hello":
            return {
                "ok": True,
                "pid": os.getpid(),
                "shards": {
                    key: {
                        "incremental": host.incremental,
                        "default_analysis": host.default_analysis,
                    }
                    for key, host in self.hosts.items()
                },
            }
        if op == "worker_status":
            return {
                "ok": True,
                "pid": os.getpid(),
                "shards": {
                    key: {
                        "admitted": host.admitted_count(),
                        "degraded": host.degraded,
                        "degraded_reason": host.degraded_reason,
                        "next_id": host.next_id,
                    }
                    for key, host in self.hosts.items()
                },
            }
        if op == "worker_dump":
            dump = self._shard_of(request).shard_dump(request.get("ids"))
            dump["ok"] = True
            return dump
        if op == "worker_bounds":
            return {"ok": True,
                    "bounds": self._shard_of(request).upper_bounds()}
        if op == "worker_stats":
            host = self._shard_of(request)
            return {
                "ok": True,
                "engine": host.engine_stats(),
                "admitted": host.admitted_count(),
                "degraded": host.degraded,
            }
        if op == "worker_drop_rid":
            rid = request.get("rid")
            if not isinstance(rid, str):
                raise ProtocolError("'worker_drop_rid' needs a string 'rid'")
            self._shard_of(request).drop_rid(rid)
            return {"ok": True}
        if op == "worker_fingerprint":
            host = self._shard_of(request)
            sha, spec = host.fingerprint()
            return {"ok": True, "sha": sha,
                    "streams": len(spec["streams"])}
        if op == "worker_detach":
            shard = request.get("shard")
            host = self.hosts.pop(shard, None)
            if host is not None:
                host.close()
                logger.info("worker %d detached shard %s",
                            os.getpid(), shard)
            return {"ok": True, "detached": shard,
                    "was_hosted": host is not None}
        if op == "worker_shutdown":
            self.running = False
            return {"ok": True, "stopping": True}
        raise ProtocolError(f"unknown worker op {op!r}")

    def close(self) -> None:
        for conn in list(self._buffers):
            self._drop(conn)
        if self._listener is not None:
            self._selector.unregister(self._listener)
            self._listener.close()
            # Clean shutdown unlinks the socket; only unclean exits
            # (SIGKILL) leave one behind for hygiene to reclaim.
            self.sock_path.unlink(missing_ok=True)
        self._selector.close()
        for host in self.hosts.values():
            host.close()


def worker_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet.workers",
        description="Fleet shard worker process (spawned by the "
                    "WorkerSupervisor; not for interactive use).",
    )
    parser.add_argument("--config", required=True,
                        help="JSON config written by the supervisor")
    args = parser.parse_args(argv)
    logging.basicConfig(
        level=logging.INFO,
        format=f"%(asctime)s worker[{os.getpid()}] %(levelname)s "
               "%(name)s: %(message)s",
        stream=sys.stderr,
    )
    config = json.loads(Path(args.config).read_text())
    server = _WorkerServer(config)

    def _on_sigterm(signum, frame):  # pragma: no cover - signal path
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _on_sigterm)
    # `kill -USR1 <pid>` dumps the worker's stacks to its log — the
    # first question about a wedged worker is always "where is it".
    faulthandler.register(signal.SIGUSR1, file=sys.stderr)
    try:
        server.bind()
        server.serve()
    finally:
        server.close()
    return 0


# --------------------------------------------------------------------- #
# Parent side
# --------------------------------------------------------------------- #


class WorkerClient:
    """Blocking JSON-lines RPC over one worker's unix socket.

    One instance per worker process, shared by every shard proxy routed
    to that worker: calls are serialised under a lock (the child serves
    its shards single-threaded anyway), and any transport failure —
    connect refused, reset, EOF, timeout — surfaces as
    :class:`WorkerDied` after dropping the connection, so the next call
    reconnects against the restarted worker.
    """

    def __init__(self, path: Path):
        self.path = str(path)
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        self._rfile = None

    def _connect_locked(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(RPC_TIMEOUT)
        sock.connect(self.path)
        self._sock = sock
        self._rfile = sock.makefile("rb")

    def _drop_locked(self) -> None:
        if self._rfile is not None:
            try:
                self._rfile.close()
            except OSError:  # pragma: no cover - defensive
                pass
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - defensive
                pass
        self._rfile = None
        self._sock = None

    def close(self) -> None:
        with self._lock:
            self._drop_locked()

    def call(
        self,
        payload: Dict[str, Any],
        *,
        kill_pid: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """One request/response round trip.

        ``kill_pid`` is the chaos harness's in-flight fault: SIGKILL
        that pid after the request bytes are written but before the
        response is read, so the commit/no-commit race of a mid-op
        worker death is actually exercised (both outcomes are safe:
        the caller retries with the same rid).

        ``timeout`` overrides the per-call socket timeout; the spawn
        readiness probe uses a short one so a socket path squatted on
        by a foreign live server fails fast instead of burning the
        whole RPC budget per poll.
        """
        with self._lock:
            try:
                if self._sock is None:
                    self._connect_locked()
                # Unconditional: the connection outlives any short
                # probe timeout a previous call may have left behind.
                self._sock.settimeout(
                    RPC_TIMEOUT if timeout is None else timeout
                )
                self._sock.sendall(encode(payload))
                if kill_pid is not None:
                    os.kill(kill_pid, signal.SIGKILL)
                line = self._rfile.readline()
            except (OSError, ValueError) as exc:
                self._drop_locked()
                raise WorkerDied(f"worker IPC failed: {exc}") from None
            if not line:
                self._drop_locked()
                raise WorkerDied("worker closed the connection mid-request")
            try:
                response = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                self._drop_locked()
                raise WorkerDied(
                    f"worker sent an unparseable response: {exc}"
                ) from None
        if not isinstance(response, dict):  # pragma: no cover - defensive
            raise WorkerDied("worker response was not a JSON object")
        return response


class WorkerProcess:
    """One supervised child: assignment, Popen handle, RPC client."""

    def __init__(self, index: int, socket_path: Path, config_path: Path,
                 log_path: Path):
        self.index = index
        self.socket_path = socket_path
        self.config_path = config_path
        self.log_path = log_path
        #: key -> host spec; mutated by detach so respawns exclude it.
        self.assigned: Dict[str, Dict[str, Any]] = {}
        self.client = WorkerClient(socket_path)
        self.proc: Optional[subprocess.Popen] = None
        self.restarts = 0
        #: Serialises concurrent ensure() calls racing to respawn.
        self.respawn_lock = threading.Lock()
        #: shard key -> {incremental, default_analysis} from worker_hello.
        self.shard_meta: Dict[str, Dict[str, Any]] = {}

    @property
    def pid(self) -> Optional[int]:
        return None if self.proc is None else self.proc.pid

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    def responsive(self) -> bool:
        """True if the worker currently accepts connections.

        ``poll()`` alone is not liveness: a SIGKILLed child can linger
        in the kernel's exit path (or a wedged one can hold its pid)
        long after its listener is gone — ``poll()`` says alive while
        every RPC gets connection-refused. A busy-but-healthy worker
        still accepts (the listen backlog queues us), so a refused
        probe means dead-for-service, whatever the pid table says.
        """
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        probe.settimeout(1.0)
        try:
            probe.connect(str(self.socket_path))
        except OSError:
            return False
        finally:
            probe.close()
        return True

    def _log_tail(self, lines: int = 12) -> str:
        try:
            text = self.log_path.read_text(errors="replace")
        except OSError:
            return "<no worker log>"
        return "\n".join(text.splitlines()[-lines:])

    def spawn(self) -> None:
        """Start the child and block until it has recovered and bound."""
        self.config_path.write_text(json.dumps(
            {"socket": str(self.socket_path), "hosts": self.assigned},
            indent=2, sort_keys=True,
        ))
        env = dict(os.environ)
        # The child must import repro regardless of how the parent got
        # it onto sys.path (installed, PYTHONPATH, or sys.path.insert).
        pkg_root = str(Path(__file__).resolve().parents[2])
        parts = [pkg_root] + [p for p in
                              env.get("PYTHONPATH", "").split(os.pathsep)
                              if p and p != pkg_root]
        env["PYTHONPATH"] = os.pathsep.join(parts)
        with open(self.log_path, "ab") as log:
            self.proc = subprocess.Popen(
                [sys.executable, "-m", "repro.fleet.workers",
                 "--config", str(self.config_path)],
                stdin=subprocess.DEVNULL,
                stdout=log,
                stderr=subprocess.STDOUT,
                env=env,
            )
        deadline = time.monotonic() + SPAWN_TIMEOUT
        while True:
            if self.proc.poll() is not None:
                raise ReproError(
                    f"worker {self.index} exited with code "
                    f"{self.proc.returncode} during startup; log tail:\n"
                    f"{self._log_tail()}"
                )
            try:
                hello = self.client.call(
                    {"op": "worker_hello"}, timeout=2.0
                )
                break
            except WorkerDied:
                if time.monotonic() > deadline:
                    raise ReproError(
                        f"worker {self.index} did not become ready within "
                        f"{SPAWN_TIMEOUT:.0f}s; log tail:\n"
                        f"{self._log_tail()}"
                    ) from None
                time.sleep(0.02)
        self.shard_meta = dict(hello.get("shards", {}))

    def kill(self, sig: int = signal.SIGKILL) -> None:
        """Hard-kill the child (chaos fault) and reap it."""
        if self.proc is None:
            return
        try:
            self.proc.send_signal(sig)
        except (ProcessLookupError, OSError):  # pragma: no cover
            pass
        try:
            self.proc.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover - defensive
            self.proc.kill()
            self.proc.wait(timeout=10)
        self.client.close()

    def stop(self) -> None:
        """Graceful shutdown: worker_shutdown op, then escalate."""
        if self.proc is None:
            return
        if self.proc.poll() is None:
            try:
                self.client.call({"op": "worker_shutdown"})
            except WorkerDied:
                pass
            try:
                self.proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                self.proc.terminate()
                try:
                    self.proc.wait(timeout=5)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    self.proc.kill()
                    self.proc.wait(timeout=5)
        self.client.close()


class WorkerSupervisor:
    """Spawns, monitors and restarts the fleet's worker processes.

    Assignment is by *tenant*: every shard of a tenant lands on the same
    worker (tenants round-robin across workers). The fleet is
    single-writer per tenant, so shards of one tenant never execute
    concurrently anyway — spreading them across workers would buy no
    parallelism while forcing every escalation through two processes.
    Cross-tenant parallelism is what the pool provides, and that is
    what the benchmark drives.
    """

    def __init__(self, state_dir: Path, workers: int):
        if workers < 1:
            raise ReproError(f"need at least one worker, got {workers}")
        self.state_dir = Path(state_dir)
        self.run_dir = self.state_dir / "workers"
        self.run_dir.mkdir(parents=True, exist_ok=True)
        sock_dir = self.run_dir
        probe = sock_dir / f"w{workers - 1}.sock"
        if len(str(probe)) > _SOCKET_PATH_BUDGET:
            # sun_path is ~108 bytes; deep state dirs (pytest tmp trees)
            # overflow it, so fall back to a short private tempdir.
            sock_dir = Path(tempfile.mkdtemp(prefix="repro-w-"))
        self.sock_dir = sock_dir
        self.workers: List[WorkerProcess] = [
            WorkerProcess(
                i,
                socket_path=self.sock_dir / f"w{i}.sock",
                config_path=self.run_dir / f"worker-{i}.json",
                log_path=self.run_dir / f"worker-{i}.log",
            )
            for i in range(workers)
        ]
        self._worker_of: Dict[str, WorkerProcess] = {}
        self._tenant_order: List[str] = []
        self._inflight_kill = False
        self._started = False

    # ------------------------------ assignment ------------------------ #

    def assign_tenant(
        self, tenant: str, shard_specs: Dict[str, Dict[str, Any]]
    ) -> None:
        """Register a tenant's shards (before :meth:`start`)."""
        if self._started:
            raise ReproError("cannot assign tenants after start()")
        if tenant in self._tenant_order:
            raise ReproError(f"tenant {tenant!r} already assigned")
        wp = self.workers[len(self._tenant_order) % len(self.workers)]
        self._tenant_order.append(tenant)
        for key, spec in shard_specs.items():
            wp.assigned[key] = dict(spec)
            self._worker_of[key] = wp

    def worker_for(self, key: str) -> WorkerProcess:
        wp = self._worker_of.get(key)
        if wp is None:
            raise ReproError(f"no worker hosts shard {key!r}")
        return wp

    def shard_meta(self, key: str) -> Dict[str, Any]:
        return self.worker_for(key).shard_meta.get(key, {})

    # ------------------------------ lifecycle ------------------------- #

    def start(self) -> None:
        self._started = True
        try:
            for wp in self.workers:
                wp.spawn()
        except ReproError:
            self.stop()
            raise

    def stop(self) -> None:
        for wp in self.workers:
            wp.stop()

    def ensure(self, key: str) -> bool:
        """Respawn the worker hosting ``key`` if it is dead.

        Returns ``True`` if a respawn happened. The respawned child
        recovers every assigned shard from its journals before binding,
        so by the time this returns the shard serves again.
        """
        return self.ensure_worker(self.worker_for(key))

    def ensure_worker(self, wp: WorkerProcess) -> bool:
        with wp.respawn_lock:
            if wp.alive:
                if wp.responsive():
                    return False
                # The pid is still in the process table but the socket
                # refuses: a SIGKILLed child that has not finished
                # dying (its fds are torn down before the parent can
                # reap it) or a wedged one. Finish the job — the
                # blocking wait() also yields the CPU a dying child on
                # a loaded host needs to actually exit.
                logger.warning(
                    "worker %d (pid %s) is unresponsive; killing before "
                    "respawn", wp.index, wp.pid,
                )
                wp.kill()
            wp.client.close()
            wp.restarts += 1
            logger.warning(
                "worker %d (pid %s) is down; respawning (restart #%d)",
                wp.index, wp.pid, wp.restarts,
            )
            wp.spawn()
            return True

    def ensure_all(self) -> int:
        """Respawn every dead worker; returns how many were restarted."""
        return sum(1 for wp in self.workers if self.ensure_worker(wp))

    def kill_worker(self, index: int, sig: int = signal.SIGKILL) -> int:
        """Chaos fault: hard-kill worker ``index``; returns its pid."""
        if not 0 <= index < len(self.workers):
            raise ReproError(
                f"no worker {index} (have {len(self.workers)})"
            )
        wp = self.workers[index]
        pid = wp.pid
        wp.kill(sig)
        return pid if pid is not None else -1

    def arm_inflight_kill(self) -> None:
        """One-shot chaos fault: SIGKILL the target of the *next* RPC
        after the request bytes are on the wire (see
        :meth:`WorkerClient.call`)."""
        self._inflight_kill = True

    def disarm_inflight_kill(self) -> None:
        """Drop an unconsumed mid-RPC kill (end-of-campaign quiesce)."""
        self._inflight_kill = False

    def detach(self, key: str) -> None:
        """Evict ``key`` from its worker for a parent-side takeover.

        Removes the shard from the respawn assignment *first* (a crash
        right now must not resurrect it in the child), then asks the
        live worker to close it. A dead worker holds no file handles,
        so WorkerDied here means the journal is already free.
        """
        wp = self._worker_of.pop(key, None)
        if wp is None:
            return
        wp.assigned.pop(key, None)
        wp.shard_meta.pop(key, None)
        try:
            wp.client.call({"op": "worker_detach", "shard": key})
        except WorkerDied:
            pass

    # ------------------------------ RPC + status ---------------------- #

    def call(self, key: str, request: Dict[str, Any]) -> Dict[str, Any]:
        """Route one shard-addressed request to its worker."""
        wp = self.worker_for(key)
        payload = dict(request)
        payload["shard"] = key
        kill_pid = None
        if self._inflight_kill and wp.alive:
            self._inflight_kill = False
            kill_pid = wp.pid
        return wp.client.call(payload, kill_pid=kill_pid)

    def status(self) -> List[Dict[str, Any]]:
        """Per-worker supervision facts for /healthz and /metrics."""
        return [
            {
                "index": wp.index,
                "pid": wp.pid,
                "alive": wp.alive,
                "restarts": wp.restarts,
                "shards": sorted(wp.assigned),
            }
            for wp in self.workers
        ]


class WorkerShard:
    """Shard-client proxy: an EngineHost in a worker, seen from the fleet.

    Implements the same surface the fleet's shard manager uses on a
    local :class:`~repro.service.host.EngineHost` (``handle_request``
    plus the shard-client accessors), as RPCs through the supervisor.
    A :class:`WorkerDied` mid-request restarts the worker (journal
    recovery) and surfaces as a retryable ``code: "worker"`` error —
    the op's fate is unknown, which is exactly what at-least-once
    clients with request ids are built for.
    """

    def __init__(self, supervisor: WorkerSupervisor, key: str):
        self.supervisor = supervisor
        self.key = key
        #: Mirrors the child host's degraded flag, updated from response
        #: traffic (set on ``code: "degraded"``, cleared by a successful
        #: mutation/snapshot or a worker restart). A stale value only
        #: ever delays an op by one round trip.
        self.degraded = False
        self.degraded_reason: Optional[str] = None

    # ------------------------------ protocol -------------------------- #

    def handle_request(self, request: Dict[str, Any]) -> Dict[str, Any]:
        try:
            response = self.supervisor.call(self.key, request)
        except WorkerDied as exc:
            return self._died(request, exc)
        except ReproError as exc:  # detached shard: no longer routed
            return error_response(request, str(exc), code="worker")
        self._track(request, response)
        return response

    def _died(
        self, request: Dict[str, Any], exc: WorkerDied
    ) -> Dict[str, Any]:
        self.degraded = False
        self.degraded_reason = None
        try:
            self.supervisor.ensure(self.key)
        except ReproError as restart_exc:
            return error_response(
                request,
                f"shard worker for {self.key} died mid-op ({exc}) and "
                f"could not be restarted: {restart_exc}",
                code="worker",
            )
        return error_response(
            request,
            f"shard worker for {self.key} died mid-op ({exc}); the "
            "supervisor restarted it with journal recovery — retry the "
            "request (same rid) for the committed outcome",
            code="worker",
        )

    def _track(
        self, request: Dict[str, Any], response: Dict[str, Any]
    ) -> None:
        if response.get("code") == "degraded":
            self.degraded = True
            self.degraded_reason = response.get("error")
        elif (response.get("ok")
              and request.get("op") in ("admit", "release", "snapshot")):
            self.degraded = False
            self.degraded_reason = None

    # ------------------------------ accessors ------------------------- #

    def _rpc(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        try:
            response = self.supervisor.call(self.key, payload)
        except WorkerDied as exc:
            self.supervisor.ensure(self.key)
            retryable = ReproError(
                f"shard worker for {self.key} died mid-op ({exc}); "
                "restarted — retry"
            )
            retryable.code = "worker"  # round-trips via _error_code
            raise retryable from None
        if not response.get("ok"):
            raise _CODE_TO_ERROR.get(response.get("code"), ReproError)(
                response.get("error", f"shard {self.key} RPC failed")
            )
        return response

    @property
    def incremental(self) -> bool:
        return bool(self.supervisor.shard_meta(self.key)
                    .get("incremental", True))

    @property
    def default_analysis(self) -> str:
        return str(self.supervisor.shard_meta(self.key)
                   .get("default_analysis", ""))

    @property
    def next_id(self) -> int:
        status = self._rpc({"op": "worker_status"})
        return int(status["shards"][self.key]["next_id"])

    def admitted_ids(self) -> List[int]:
        dump = self._rpc({"op": "worker_dump"})
        return sorted(e["stream"]["id"] for e in dump["streams"])

    def admitted_count(self) -> int:
        status = self._rpc({"op": "worker_status"})
        return int(status["shards"][self.key]["admitted"])

    def upper_bounds(self) -> Dict[str, int]:
        return dict(self._rpc({"op": "worker_bounds"})["bounds"])

    def engine_stats(self) -> Dict[str, Any]:
        return dict(self._rpc({"op": "worker_stats"})["engine"])

    def drop_rid(self, rid: str) -> None:
        self._rpc({"op": "worker_drop_rid", "rid": str(rid)})

    def shard_dump(
        self, ids: Optional[List[int]] = None
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"op": "worker_dump"}
        if ids is not None:
            payload["ids"] = [int(i) for i in ids]
        dump = self._rpc(payload)
        return {
            "streams": dump["streams"],
            "next_id": dump["next_id"],
            "applied": dump["applied"],
        }

    def fingerprint_sha(self) -> str:
        return str(self._rpc({"op": "worker_fingerprint"})["sha"])

    def detach(self) -> None:
        """Hand the shard's journal back to the parent process."""
        self.supervisor.detach(self.key)

    def close(self) -> None:
        """No-op: worker lifecycles belong to the supervisor."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WorkerShard({self.key!r}, degraded={self.degraded})"


if __name__ == "__main__":  # pragma: no cover - child entry point
    raise SystemExit(worker_main())
