"""Channel-set regions: the unit of stream placement in the fleet.

Why channels and not a static grid partition: in the Kim98 analysis a
stream's delay bound is a pure function of the stream and its transitive
higher-priority closure over *shared channels* (finding F-7). Two
admitted sets that never share a channel — directly or through a chain
of intermediaries — cannot influence each other's bounds, so they can
live in different engines with bit-identical verdicts. The closure is
*transitive*, though, which rules out any fixed partition of the channel
space: one new stream can stitch two previously independent groups
together. The sound unit of placement is therefore the *dynamic*
channel-connected component of the admitted set, and this module
maintains exactly that index:

* every admitted stream's channel set (from the shared route table,
  so the fleet and its engines always agree on routes);
* the inverted channel -> streams map, from which connected components
  are discovered by expansion when a placement decision needs them.

The shard manager (:mod:`repro.fleet.shards`) keeps the invariant that
one component never spans two shards; this module only answers the
queries that invariant is maintained with.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from ..topology.base import Topology
from ..topology.route_table import RouteTable

__all__ = ["ChannelIndex", "entry_channels"]

Channel = Tuple[int, int]


def entry_channels(
    route_table: RouteTable, topology: Topology, src: int, dst: int
) -> FrozenSet[Channel]:
    """The channel set a stream from ``src`` to ``dst`` occupies.

    Routed through the shared route table (PR 6), so the placement layer
    sees exactly the channels the admission engines will analyse.
    """
    channels, _ = route_table.lookup(src, dst)
    return channels


class ChannelIndex:
    """Inverted index from channels to the admitted streams using them.

    Tracks one tenant's admitted set across all shards. ``components``
    answers the only structural question placement needs: which admitted
    streams are channel-connected (transitively) to a new batch's
    channel set.
    """

    def __init__(self) -> None:
        self._channels: Dict[int, FrozenSet[Channel]] = {}
        self._users: Dict[Channel, Set[int]] = {}

    def __contains__(self, sid: int) -> bool:
        return sid in self._channels

    def __len__(self) -> int:
        return len(self._channels)

    def ids(self) -> List[int]:
        return sorted(self._channels)

    def channels_of(self, sid: int) -> FrozenSet[Channel]:
        return self._channels[sid]

    def add(self, sid: int, channels: FrozenSet[Channel]) -> None:
        if sid in self._channels:  # pragma: no cover - caller invariant
            raise ValueError(f"stream {sid} already indexed")
        self._channels[sid] = channels
        for ch in channels:
            self._users.setdefault(ch, set()).add(sid)

    def remove(self, sid: int) -> None:
        channels = self._channels.pop(sid)
        for ch in channels:
            users = self._users[ch]
            users.discard(sid)
            if not users:
                del self._users[ch]

    def touching(self, channels: Iterable[Channel]) -> Set[int]:
        """Admitted streams sharing at least one channel with ``channels``."""
        out: Set[int] = set()
        for ch in channels:
            out.update(self._users.get(ch, ()))
        return out

    def component(self, channels: Iterable[Channel]) -> Set[int]:
        """The union of channel-connected components touching ``channels``.

        Expansion to a fixed point: start from the streams sharing a
        channel with the seed set, then repeatedly pull in streams
        sharing a channel with anything already reached. The result is
        every admitted stream whose verdict could interact — in either
        direction, now or after the seed is admitted — with a stream
        routed over ``channels``.
        """
        frontier = self.touching(channels)
        seen: Set[int] = set()
        while frontier:
            sid = frontier.pop()
            if sid in seen:
                continue
            seen.add(sid)
            for neighbour in self.touching(self._channels[sid]):
                if neighbour not in seen:
                    frontier.add(neighbour)
        return seen

    def components(self) -> List[Set[int]]:
        """All channel-connected components of the indexed set."""
        remaining = set(self._channels)
        out: List[Set[int]] = []
        while remaining:
            sid = next(iter(remaining))
            comp = self.component(self._channels[sid]) | {sid}
            out.append(comp)
            remaining -= comp
        return out
