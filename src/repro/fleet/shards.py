"""Shard manager: one tenant's admission state across N engine shards.

Placement model
---------------
Every tenant owns a full topology and a pool of
:class:`~repro.service.host.EngineHost` shards over it. Streams are
placed by *channel-connected component* (:mod:`repro.fleet.regions`):

* a batch whose channels touch no admitted stream goes to the
  least-loaded shard (deterministic tie-break by shard index);
* a batch touching exactly one shard's streams goes to that shard;
* a batch whose channels bridge components living on two or more shards
  *escalates*: the foreign components migrate to a single target shard
  (the one already holding the most involved streams) and the batch is
  decided there, against its complete closure.

The invariant maintained is that a channel-connected component never
spans two shards. Under it every verdict an engine computes sees the
stream's entire transitive HP closure, so fleet decisions are
*bit-identical* to a single engine admitting the same op stream — the
property test in ``tests/test_fleet_equivalence.py`` fuzzes exactly
this claim, and the migration path makes it a safety property rather
than a heuristic.

Migration is admit-then-release: the target shard journals the admission
of the moved streams before the source journals their release, so a
crash between the two leaves *duplicates* (identical specs on both
shards) rather than losses. Fleet recovery detects both artefacts —
duplicate ids and components left spanning shards — and repairs them
through the same journaled ops.

Id allocation lives at the tenant level (the fleet mirrors the engine's
``fresh_id`` / high-water-mark semantics exactly), because ids must come
out identical to the single-engine reference regardless of placement.

Shard clients
-------------
The manager never touches an engine directly: every shard is driven
through the *shard-client* surface (``handle_request`` plus the
accessors :meth:`~repro.service.host.EngineHost.shard_dump`,
``upper_bounds``, ``admitted_count``, ``drop_rid``, ``detach``, ...),
so ``self.hosts`` can hold in-process :class:`EngineHost`\\ s (the
default) or :class:`~repro.fleet.workers.WorkerShard` proxies fronting
supervised child processes (``Fleet(..., workers=N)``). Worker deaths
surface as retryable errors; a death between a migration's journaled
admit and journaled release leaves the same duplicate-id artefact
recovery already repairs, just spanning two processes.
"""

from __future__ import annotations

import hashlib
import json
import logging
import time
from pathlib import Path
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple, Union

from .. import __version__
from ..core import backends as _backends
from ..errors import AnalysisError, ReproError, RoutingError, StreamError
from ..faults.plane import FaultPlane
from ..io import stream_from_spec, stream_to_spec, topology_from_spec
from ..obs.trace import span as _span
from ..service.host import DegradedError, EngineHost
from ..service.metrics import ServiceMetrics
from ..service.persistence import RID_CAP
from ..service.protocol import (
    ProtocolError,
    coerce_int,
    coerce_rid,
    error_response,
)
from ..topology.degraded import normalize_link
from ..topology.route_table import shared_route_table
from ..topology.routing import FaultAwareRouting
from .regions import Channel, ChannelIndex, entry_channels

__all__ = ["TenantFleet", "Fleet", "TenantSpec"]

logger = logging.getLogger(__name__)

_CODE_TO_ERROR = {
    "degraded": DegradedError,
    "protocol": ProtocolError,
    "stream": StreamError,
    "analysis": AnalysisError,
}


def _error_code(exc: ReproError) -> str:
    explicit = getattr(exc, "code", None)
    if isinstance(explicit, str) and explicit:
        return explicit
    for code, cls in _CODE_TO_ERROR.items():
        if isinstance(exc, cls):
            return code
    return "error"


class TenantSpec:
    """Static description of one tenant: name, auth key, topology."""

    def __init__(
        self,
        name: str,
        api_key: str,
        topology_spec: Dict[str, Any],
        *,
        analysis: Optional[str] = None,
    ):
        if not name or "/" in name or name != name.strip():
            raise ReproError(f"invalid tenant name {name!r}")
        self.name = name
        self.api_key = api_key
        self.topology_spec = dict(topology_spec)
        self.analysis = analysis


class TenantFleet:
    """One tenant's engines: placement, escalation, merged decisions."""

    def __init__(
        self,
        name: str,
        topology_spec: Dict[str, Any],
        *,
        shards: int = 2,
        state_dir: Optional[Union[str, Path]] = None,
        use_modify: bool = True,
        residency_margin: int = 0,
        analysis: Optional[str] = None,
        incremental: Optional[bool] = None,
        fault_plane: Optional[FaultPlane] = None,
        shard_clients: Optional[List[Any]] = None,
    ):
        if shards < 1:
            raise ReproError(f"need at least one shard, got {shards}")
        self.name = name
        self.topology_spec = dict(topology_spec)
        self.topology, self.routing = topology_from_spec(self.topology_spec)
        #: The intact network's routing; ``self.routing`` tracks the
        #: tenant's *effective* routing (fault-aware once links failed).
        self.base_routing = self.routing
        #: Failed physical links, as normalised ``(u, v)`` tuples. Kept
        #: in lockstep with every shard (link ops broadcast).
        self.failed_links: Set[Tuple[int, int]] = set()
        self._route_table = shared_route_table(self.routing)
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self.fault_plane = fault_plane
        if shard_clients is not None:
            # Pre-built shard clients (worker-process proxies): the
            # engines live elsewhere; this manager only places and
            # forwards. Recovery below runs over RPC dumps.
            if not shard_clients:
                raise ReproError("shard_clients must be non-empty")
            self.hosts: List[Any] = list(shard_clients)
        else:
            self.hosts = [
                EngineHost(
                    self.topology_spec,
                    state_dir=(
                        None if self.state_dir is None
                        else self.state_dir / f"shard-{i}"
                    ),
                    use_modify=use_modify,
                    residency_margin=residency_margin,
                    analysis=analysis,
                    incremental=incremental,
                    fault_plane=fault_plane,
                )
                for i in range(shards)
            ]
        self.metrics = ServiceMetrics()
        #: sid -> shard index currently holding the stream.
        self.owner: Dict[int, int] = {}
        self.index = ChannelIndex()
        #: Tenant-level fresh-id mark, mirroring the engine's semantics.
        self._next_id = 0
        #: rid -> recorded outcome (fleet-level idempotency).
        self._applied: Dict[str, Dict[str, Any]] = {}
        self.escalations = 0
        self.migrated_streams = 0
        #: Shards whose primary crashed and has not been failed over yet.
        self.dead: Set[int] = set()
        if self.state_dir is not None:
            self._recover_fleet()

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #

    def _recover_fleet(self) -> None:
        """Rebuild placement state from recovered shards and repair the
        component invariant.

        Each shard has already recovered its own snapshot + journal. Two
        artefacts of the migration crash window are possible and both
        are repaired here through normal journaled ops:

        * **duplicate ids** (target admitted, source never released):
          both copies are identical specs, so the copy on the
          lowest-indexed shard is kept and the others are released;
        * **components spanning shards** (partial multi-source
          migration): re-merged via the same migration path a live
          escalation uses.

        A third artefact comes from the link-fault plane: a crash in the
        middle of a ``fail_link`` broadcast leaves shards disagreeing on
        the failed-link set. The union is authoritative — every member
        was journaled by at least one shard, so the op was in flight —
        and lagging shards are brought forward by re-forwarding the op,
        which re-derives the same deterministic evictions.
        """
        shard_links: List[Set[Tuple[int, int]]] = []
        for host in self.hosts:
            links = self._forward(host, {"op": "links"})
            shard_links.append({
                normalize_link(int(u), int(v))
                for u, v in links["failed_links"]
            })
        union: Set[Tuple[int, int]] = set().union(*shard_links)
        for i, have in enumerate(shard_links):
            for link in sorted(union - have):
                logger.warning(
                    "tenant %s: shard %d missed fail_link %s (link-op "
                    "crash window); re-applying", self.name, i, list(link),
                )
                self._forward(
                    self.hosts[i],
                    {"op": "fail_link", "link": [link[0], link[1]]},
                )
        if union:
            self._set_failed_links(union)
        seen: Dict[int, int] = {}
        specs: Dict[int, Dict[str, Any]] = {}
        dumps: List[Dict[str, Any]] = []
        for i, host in enumerate(self.hosts):
            dump = host.shard_dump()
            dumps.append(dump)
            for entry in dump["streams"]:
                sid = int(entry["stream"]["id"])
                if sid in seen:
                    logger.warning(
                        "tenant %s: stream %d duplicated on shards %d/%d "
                        "(migration crash window); releasing the copy on "
                        "shard %d", self.name, sid, seen[sid], i, i,
                    )
                    self._forward(host, {"op": "release", "ids": [sid]})
                    continue
                seen[sid] = i
                specs[sid] = entry["stream"]
        for sid, shard in seen.items():
            self.owner[sid] = shard
            self.index.add(sid, self._spec_channels(specs[sid]))
        # Re-merge any component the crash left spanning shards.
        for comp in self.index.components():
            shards_touched = sorted({self.owner[sid] for sid in comp})
            if len(shards_touched) > 1:
                target = self._escalation_target(comp)
                logger.warning(
                    "tenant %s: component %s spans shards %s; migrating "
                    "to shard %d", self.name, sorted(comp), shards_touched,
                    target,
                )
                self._migrate(comp, target)
        # High-water mark: the engines persist theirs per shard; the
        # tenant mark is the max (never below max(admitted) + 1).
        self._next_id = max(
            [d["next_id"] for d in dumps]
            + [sid + 1 for sid in self.owner]
            + [0]
        )
        # Idempotency: an admit's rid lives on one shard; a cross-shard
        # release's rid lives on several, each holding its subset — merge
        # the released lists (sorted; the request order is not recorded).
        # A broadcast link op's rid lives on *every* shard, each holding
        # its local reroute/evict delta — merge those too.
        for dump in dumps:
            for rid, outcome in dump["applied"].items():
                prior = self._applied.get(rid)
                if (prior and "released" in prior
                        and "released" in outcome):
                    merged = sorted(
                        set(prior["released"]) | set(outcome["released"])
                    )
                    self._applied[rid] = {"released": merged}
                elif (prior
                        and prior.get("op") in ("fail_link", "restore_link")
                        and outcome.get("op") == prior.get("op")
                        and outcome.get("link") == prior.get("link")):
                    self._applied[rid] = self._merge_link_outcomes(
                        [prior, outcome]
                    )
                else:
                    self._applied[rid] = dict(outcome)

    # ------------------------------------------------------------------ #
    # Placement helpers
    # ------------------------------------------------------------------ #

    def _stream_channels(self, stream) -> FrozenSet[Channel]:
        return entry_channels(
            self._route_table, self.topology, stream.src, stream.dst
        )

    def _spec_channels(self, spec: Dict[str, Any]) -> FrozenSet[Channel]:
        return entry_channels(
            self._route_table, self.topology,
            int(spec["src"]), int(spec["dst"]),
        )

    def _held_ids(self, host: Any, ids: List[int]) -> List[int]:
        """Which of ``ids`` the shard durably holds right now (probe)."""
        return sorted(
            int(e["stream"]["id"])
            for e in host.shard_dump(list(ids))["streams"]
        )

    def _probe_stable(self, fn):
        """Run a probe/undo step through a worker bounce.

        The crash-window repair reads and rewrites the very shards
        whose worker just died, and in worker mode every shard of the
        tenant lives on that one process. The first failed call has
        already respawned the worker (the shard proxy ensures before
        raising its retryable error), so retrying here sees the
        recovered journal state instead of aborting the undo half-way
        and leaving ghost admissions for the next attempt to trip on.
        """
        for _ in range(8):
            try:
                return fn()
            except ReproError as exc:
                if getattr(exc, "code", None) != "worker":
                    raise
                time.sleep(0.05)
        return fn()

    def _fresh_id(self) -> int:
        while self._next_id in self.owner:
            self._next_id += 1
        nid = self._next_id
        self._next_id += 1
        return nid

    def _reset_next_id(self, value: int) -> None:
        floor = max((sid + 1 for sid in self.owner), default=0)
        self._next_id = max(int(value), floor)

    def _least_loaded(self) -> int:
        # Placement-table counts, not engine counts: identical under the
        # owner/shard invariant, and free of a per-shard RPC round trip.
        load = [0] * len(self.hosts)
        for shard in self.owner.values():
            load[shard] += 1
        return min(range(len(self.hosts)), key=lambda i: (load[i], i))

    def _escalation_target(self, comp: Set[int]) -> int:
        """The shard keeping its streams in a cross-shard merge: the one
        already holding the most involved streams (ties to the lowest
        index), so escalation moves the minimum number of streams."""
        load: Dict[int, int] = {}
        for sid in comp:
            load[self.owner[sid]] = load.get(self.owner[sid], 0) + 1
        return max(sorted(load), key=lambda s: load[s])

    def _forward(
        self, host: EngineHost, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Run a sub-op on a shard; re-raise its errors as exceptions.

        The shard host returns protocol error *responses*; placement
        logic needs exceptions (so the fleet-level handler emits exactly
        one error response, with the shard's message and code preserved).
        """
        response = host.handle_request(request)
        if response.get("ok"):
            return response
        code = response.get("code")
        exc = _CODE_TO_ERROR.get(code, ReproError)(
            response.get("error", "shard error")
        )
        # Codes outside the typed map (e.g. "worker": a shard worker
        # died mid-op and was restarted; the caller should retry) must
        # round-trip through the fleet's error response unchanged — the
        # retry loop keys on them.
        if code and code not in _CODE_TO_ERROR:
            exc.code = code
        raise exc

    def _gate_shards(self, shard_indexes: Set[int]) -> None:
        """Refuse a mutation while any involved shard is down or
        read-only.

        Checked before anything (migration included) mutates, so a
        degraded shard can never strand a half-escalated component."""
        for i in sorted(shard_indexes):
            if i in self.dead:
                raise ReproError(
                    f"shard {i} is down; fail over to its standby"
                )
            host = self.hosts[i]
            if host.degraded:
                raise DegradedError(
                    f"broker is read-only ({host.degraded_reason}); "
                    "retry after a successful 'snapshot' op"
                )

    def _migrate(self, comp: Set[int], target: int) -> None:
        """Move every stream of ``comp`` not on ``target`` onto it.

        Admit-then-release per source shard: the target journals the
        admission first, so a crash in between duplicates (recoverable)
        instead of losing acked streams. On failure the shards are
        *probed* (``shard_dump``) rather than trusted from bookkeeping:
        a worker can die after journaling a sub-op but before acking it,
        so what each process durably holds is the only truth. Three
        cases fall out: the source release committed unacked (the
        migration actually completed), the target admit committed
        unacked (undo it from the probe), or a plain failure (undo the
        acked admissions). All leave placement consistent.
        """
        by_source: Dict[int, List[int]] = {}
        for sid in comp:
            shard = self.owner[sid]
            if shard != target:
                by_source.setdefault(shard, []).append(sid)
        if not by_source:
            return
        self.escalations += 1
        for source in sorted(by_source):
            ids = sorted(by_source[source])
            src_host = self.hosts[source]
            groups: Dict[str, List[dict]] = {}
            for entry in src_host.shard_dump(ids)["streams"]:
                groups.setdefault(
                    entry["analysis"], []
                ).append(entry["stream"])
            if sum(len(g) for g in groups.values()) != len(ids):
                raise ReproError(  # pragma: no cover - defensive
                    f"placement out of sync: shard {source} no longer "
                    f"holds all of {ids}"
                )
            try:
                for name in sorted(groups):
                    response = self._forward(
                        self.hosts[target],
                        {"op": "admit", "streams": groups[name],
                         "analysis": name},
                    )
                    if not response["admitted"]:  # pragma: no cover
                        raise ReproError(
                            f"migration admit of {ids} rejected on shard "
                            f"{target}; the moved set was feasible in "
                            "place, so this is a placement bug"
                        )
                self._forward(src_host, {"op": "release", "ids": ids})
            except ReproError:
                if not self._probe_stable(
                    lambda: self._held_ids(src_host, ids)
                ):
                    # The source release committed but its ack was lost
                    # (worker death window): the migration is complete.
                    pass
                else:
                    # Undo whatever the target durably admitted —
                    # including commits whose acks died with a worker —
                    # so a failed migration leaves placement as it was.
                    # Probe-and-release as one retried unit: held_ids
                    # is recomputed per attempt so an undo whose own
                    # ack was lost is not released twice.
                    def _undo_target():
                        undo = self._held_ids(self.hosts[target], ids)
                        if undo:
                            self._forward(
                                self.hosts[target],
                                {"op": "release", "ids": undo},
                            )
                    self._probe_stable(_undo_target)
                    raise
            for sid in ids:
                self.owner[sid] = target
            self.migrated_streams += len(ids)

    # ------------------------------------------------------------------ #
    # Protocol surface (same ops and response shapes as the broker)
    # ------------------------------------------------------------------ #

    def handle_request(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Execute one protocol request against the sharded tenant."""
        op = request.get("op")
        t0 = time.perf_counter() if self.metrics.timing_enabled else None
        try:
            with _span("fleet.op", "fleet", op=str(op), tenant=self.name):
                response = self._dispatch(op, request)
            response["ok"] = True
            if "id" in request:
                response["id"] = request["id"]
            self.metrics.record_op(
                op, None if t0 is None else time.perf_counter() - t0
            )
            return response
        except ReproError as exc:
            self.metrics.record_op(
                op or "invalid",
                None if t0 is None else time.perf_counter() - t0,
                error=True,
            )
            return error_response(request, str(exc), code=_error_code(exc))
        except Exception as exc:  # pragma: no cover - defensive
            logger.exception("internal error handling %r", op)
            self.metrics.record_op(
                op or "invalid",
                None if t0 is None else time.perf_counter() - t0,
                error=True,
            )
            return error_response(
                request,
                f"internal error handling {op!r}: {exc!r}",
                code="internal",
            )

    def _dispatch(self, op: str, request: Dict[str, Any]) -> Dict[str, Any]:
        if op in ("hello", "ping"):
            return {
                "server": "repro-fleet",
                "version": __version__,
                "topology": self.topology_spec,
                "nodes": self.topology.num_nodes,
                "incremental": self.hosts[0].incremental,
                "analyses": list(_backends.names()),
                "default_analysis": self.hosts[0].default_analysis,
                "shards": len(self.hosts),
                "tenant": self.name,
            }
        if op == "admit":
            return self._op_admit(request)
        if op == "release":
            return self._op_release(request)
        if op == "query":
            return self._op_query(request)
        if op == "fail_link":
            return self._op_link(request, fail=True)
        if op == "restore_link":
            return self._op_link(request, fail=False)
        if op == "links":
            return {
                "failed_links": self.links_spec(),
                "routing": type(self.routing).__name__,
            }
        if op == "report":
            self._gate_dead()
            return self._merged_report()
        if op == "snapshot":
            self._gate_dead()
            return self._op_snapshot()
        if op == "stats":
            return {
                "service": self.metrics.to_dict(),
                "shards": [
                    {
                        "admitted": h.admitted_count(),
                        "degraded": h.degraded,
                        "engine": h.engine_stats(),
                    }
                    for h in self.hosts
                ],
                "admitted": len(self.owner),
                "escalations": self.escalations,
                "migrated_streams": self.migrated_streams,
                "degraded": self.degraded,
            }
        raise ProtocolError(f"unknown op {op!r}")

    @property
    def degraded(self) -> bool:
        return any(h.degraded for h in self.hosts)

    def _record_applied(
        self, rid: Optional[str], outcome: Dict[str, Any]
    ) -> None:
        if rid is None:
            return
        self._applied[str(rid)] = outcome
        while len(self._applied) > RID_CAP:
            del self._applied[next(iter(self._applied))]

    def _duplicate_response(
        self, rid: Optional[str]
    ) -> Optional[Dict[str, Any]]:
        if rid is None or rid not in self._applied:
            return None
        self.metrics.duplicates += 1
        response = dict(self._applied[rid])
        response["duplicate"] = True
        return response

    def _op_admit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        rid = coerce_rid(request)
        duplicate = self._duplicate_response(rid)
        if duplicate is not None:
            return duplicate
        entries = request.get("streams")
        if not isinstance(entries, list) or not entries:
            raise ProtocolError("'admit' needs a non-empty 'streams' list")
        analysis = request.get("analysis")
        if analysis is not None:
            if not isinstance(analysis, str):
                raise ProtocolError(
                    f"'analysis' must be a string, got {analysis!r}"
                )
            if analysis not in _backends.names():
                raise ProtocolError(
                    f"unknown analysis backend {analysis!r} (known: "
                    f"{', '.join(_backends.names())})"
                )
        next_id_before = self._next_id
        # Build the batch with tenant-level ids, mirroring the engine's
        # fresh-id semantics exactly (ids must match the single-engine
        # reference regardless of placement).
        streams = []
        for entry in entries:
            if not isinstance(entry, dict):
                raise ProtocolError("'streams' entries must be objects")
            sid = (coerce_int(entry["id"], "stream entry 'id'")
                   if entry.get("id") is not None
                   else self._fresh_id())
            try:
                streams.append(
                    stream_from_spec(self.topology, entry, stream_id=sid)
                )
            except (ValueError, TypeError) as exc:
                raise ProtocolError(
                    f"invalid stream entry (id {sid}): {exc}"
                ) from None
        ids = [s.stream_id for s in streams]
        dup = [sid for sid in ids if sid in self.owner]
        if dup or len(set(ids)) != len(ids):
            raise StreamError(
                f"duplicate stream id(s) in admission request: "
                f"{sorted(set(dup or ids))}"
            )
        top = max(ids)
        if top >= self._next_id:
            self._next_id = top + 1
        # Placement: which shards hold components the batch touches?
        batch_channels: Set[Channel] = set()
        for s in streams:
            batch_channels |= self._stream_channels(s)
        comp = self.index.component(batch_channels)
        shards_touched = sorted({self.owner[sid] for sid in comp})
        if not shards_touched:
            target = self._least_loaded()
        elif len(shards_touched) == 1:
            target = shards_touched[0]
        else:
            target = self._escalation_target(comp)
        involved = set(shards_touched) | {target}
        try:
            self._gate_shards(involved)
            if len(shards_touched) > 1:
                self._migrate(comp, target)
            fwd: Dict[str, Any] = {
                "op": "admit",
                "streams": [stream_to_spec(s) for s in streams],
            }
            if analysis is not None:
                fwd["analysis"] = analysis
            if rid is not None:
                fwd["rid"] = rid
            response = self._forward(self.hosts[target], fwd)
        except ReproError:
            # Mirrors the engine's reset on an uncommitted batch: the
            # trial ids were never acknowledged, so a retry of the same
            # request re-evaluates with the same ids.
            self._reset_next_id(next_id_before)
            raise
        if response.get("duplicate"):
            # The shard had the rid but the fleet table didn't: RID_CAP
            # eviction skew, or — in worker mode — a death after the
            # shard journaled the admit but before the fleet recorded
            # it, now being retried. Adopt any committed ids placement
            # doesn't know yet, so the books match what the shard
            # durably holds; otherwise pass the outcome through.
            adopted = [int(i) for i in response.get("ids") or []]
            missing = [sid for sid in adopted if sid not in self.owner]
            if response.get("admitted") and missing:
                for entry in (self.hosts[target]
                              .shard_dump(missing)["streams"]):
                    spec = entry["stream"]
                    self.owner[int(spec["id"])] = target
                    self.index.add(
                        int(spec["id"]), self._spec_channels(spec)
                    )
                self._next_id = max(self._next_id, max(adopted) + 1)
                self._record_applied(
                    rid, {"admitted": True, "ids": adopted}
                )
            else:
                self._reset_next_id(next_id_before)
            return {k: v for k, v in response.items() if k != "ok"}
        if response["admitted"]:
            for s in streams:
                self.owner[s.stream_id] = target
                self.index.add(s.stream_id, self._stream_channels(s))
            self._record_applied(rid, {"admitted": True, "ids": ids})
        else:
            self._reset_next_id(next_id_before)
        # The shard's decision report covers its own streams; the
        # single-engine reference reports bounds for the whole admitted
        # set. Untouched shards' verdicts are unchanged by this op (their
        # closures don't reach the batch), so merging their cached bounds
        # reconstructs the reference response exactly.
        bounds = dict(response["bounds"])
        shard_bounds: Dict[int, Dict[str, int]] = {}
        for sid, shard in self.owner.items():
            if shard != target:
                if shard not in shard_bounds:
                    shard_bounds[shard] = self.hosts[shard].upper_bounds()
                bounds[str(sid)] = shard_bounds[shard][str(sid)]
        response["bounds"] = bounds
        response.pop("ok", None)
        response.pop("duplicate", None)
        return response

    def _op_release(self, request: Dict[str, Any]) -> Dict[str, Any]:
        rid = coerce_rid(request)
        duplicate = self._duplicate_response(rid)
        if duplicate is not None:
            return duplicate
        raw = request.get("ids")
        if not isinstance(raw, list) or not raw:
            raise ProtocolError("'release' needs a non-empty 'ids' list")
        raw = [coerce_int(i, "'release' id") for i in raw]
        ids = list(dict.fromkeys(raw))
        unknown = sorted(sid for sid in ids if sid not in self.owner)
        if unknown:
            raise StreamError(
                f"cannot release stream id(s) {unknown}: not admitted"
            )
        groups: Dict[int, List[int]] = {}
        for sid in ids:
            groups.setdefault(self.owner[sid], []).append(sid)
        self._gate_shards(set(groups))
        # All-or-nothing across shards: on a mid-sequence journal
        # failure, compensate the shards that already committed by
        # re-admitting the captured specs, so the client's error means
        # "nothing was released" on every shard.
        done: List[Tuple[int, Dict[str, List[dict]]]] = []
        for shard in sorted(groups):
            host = self.hosts[shard]
            saved: Dict[str, List[dict]] = {}
            for entry in host.shard_dump(groups[shard])["streams"]:
                saved.setdefault(
                    entry["analysis"], []
                ).append(entry["stream"])
            sub: Dict[str, Any] = {"op": "release", "ids": groups[shard]}
            if rid is not None:
                sub["rid"] = rid
            try:
                self._forward(host, sub)
            except ReproError:
                self._compensate_release(done, rid)
                raise
            done.append((shard, saved))
        for sid in ids:
            del self.owner[sid]
            self.index.remove(sid)
        self._record_applied(rid, {"released": raw})
        return {"released": raw}

    def _compensate_release(
        self,
        done: List[Tuple[int, Dict[str, List[dict]]]],
        rid: Optional[str],
    ) -> None:
        """Re-admit already-released subsets of a failed cross-shard
        release (journaled, like the release was), and drop the rid
        record so a client retry re-applies on every shard."""
        for shard, saved in done:
            host = self.hosts[shard]
            for name in sorted(saved):
                response = self._forward(
                    host, {"op": "admit", "streams": saved[name],
                           "analysis": name},
                )
                if not response["admitted"]:  # pragma: no cover
                    raise ReproError(
                        f"release rollback re-admission of "
                        f"{[e['id'] for e in saved[name]]} rejected on "
                        f"shard {shard}; state diverged from the journal"
                    )
            if rid is not None:
                # The sub-release's rid record would otherwise satisfy a
                # retry without re-applying.
                host.drop_rid(rid)

    def _op_query(self, request: Dict[str, Any]) -> Dict[str, Any]:
        sid = request.get("stream")
        if sid is None:
            raise ProtocolError("'query' needs a 'stream' id")
        sid = coerce_int(sid, "'query' stream")
        if sid not in self.owner:
            raise StreamError(f"no admitted stream with id {sid}")
        if self.owner[sid] in self.dead:
            raise ReproError(
                f"shard {self.owner[sid]} is down; fail over to its standby"
            )
        return {
            k: v
            for k, v in self._forward(
                self.hosts[self.owner[sid]], {"op": "query", "stream": sid}
            ).items()
            if k != "ok"
        }

    # ------------------------------------------------------------------ #
    # Link faults (broadcast reroute-and-readmit)
    # ------------------------------------------------------------------ #

    def links_spec(self) -> List[List[int]]:
        """The failed-link set as sorted ``[u, v]`` pairs (wire form)."""
        return sorted([u, v] for u, v in self.failed_links)

    def _set_failed_links(self, failed) -> None:
        """Point the placement layer at the routing for ``failed``."""
        self.failed_links = set(failed)
        if self.failed_links:
            self.routing = FaultAwareRouting(
                self.base_routing, sorted(self.failed_links)
            )
        else:
            self.routing = self.base_routing
        self._route_table = shared_route_table(self.routing)

    @staticmethod
    def _merge_link_outcomes(
        outcomes: List[Dict[str, Any]]
    ) -> Dict[str, Any]:
        """Union the per-shard deltas of one broadcast link op."""
        merged: Dict[str, Any] = {
            "op": outcomes[0]["op"],
            "link": list(outcomes[0]["link"]),
        }
        for key in ("rerouted", "evicted", "disconnected", "survivors"):
            merged[key] = sorted(
                {int(sid) for out in outcomes for sid in out.get(key, [])}
            )
        return merged

    def _op_link(
        self, request: Dict[str, Any], *, fail: bool
    ) -> Dict[str, Any]:
        """Fail or restore a physical link, tenant-wide.

        Placement first, verdicts second: under the post-swap routing,
        previously independent components can become channel-connected
        (detours overlap), so any component that *would* span shards is
        migrated onto one shard **before** the op is forwarded. The
        migration runs under the old routing, where streams on different
        shards are channel-disjoint, so it cannot change any verdict.
        The op is then broadcast to every shard — each swaps to the same
        fault-aware routing and re-derives its local reroute/evict delta
        — and the merged delta is the client's answer, bit-identical to
        a single engine applying the same swap.
        """
        op = "fail_link" if fail else "restore_link"
        rid = coerce_rid(request)
        duplicate = self._duplicate_response(rid)
        if duplicate is not None:
            return duplicate
        raw = request.get("link")
        if not isinstance(raw, (list, tuple)) or len(raw) != 2:
            raise ProtocolError(f"'{op}' needs a 'link' [u, v] pair")
        link = normalize_link(
            coerce_int(raw[0], "'link' endpoint"),
            coerce_int(raw[1], "'link' endpoint"),
        )
        if fail:
            if not self.topology.has_channel(link[0], link[1]):
                raise ProtocolError(
                    f"no physical link {list(link)} in the topology"
                )
            if link in self.failed_links:
                raise ProtocolError(f"link {list(link)} is already failed")
            new_failed = self.failed_links | {link}
        else:
            if link not in self.failed_links:
                raise ProtocolError(f"link {list(link)} is not failed")
            new_failed = self.failed_links - {link}
        self._gate_shards(set(range(len(self.hosts))))
        if new_failed:
            new_routing = FaultAwareRouting(
                self.base_routing, sorted(new_failed)
            )
        else:
            new_routing = self.base_routing
        new_table = shared_route_table(new_routing)
        # Prospective placement over the post-swap channel sets.
        specs: Dict[int, Dict[str, Any]] = {}
        for host in self.hosts:
            for entry in host.shard_dump()["streams"]:
                specs[int(entry["stream"]["id"])] = entry["stream"]
        prospective = ChannelIndex()
        for sid in sorted(self.owner):
            spec = specs.get(sid)
            if spec is None:  # pragma: no cover - defensive
                raise ReproError(
                    f"placement out of sync: stream {sid} is not on "
                    f"its shard"
                )
            try:
                channels = entry_channels(
                    new_table, self.topology,
                    int(spec["src"]), int(spec["dst"]),
                )
            except RoutingError:
                # Disconnected under the new routing: the shard will
                # evict it, so it interacts with nothing.
                channels = frozenset()
            prospective.add(sid, channels)
        for comp in prospective.components():
            shards_touched = sorted({self.owner[sid] for sid in comp})
            if len(shards_touched) > 1:
                self._migrate(comp, self._escalation_target(comp))
        # Compensation capture *after* migration, so each shard's saved
        # specs reflect what it actually holds when the broadcast runs.
        saved: Dict[int, Dict[str, List[dict]]] = {}
        for i, host in enumerate(self.hosts):
            groups: Dict[str, List[dict]] = {}
            for entry in host.shard_dump()["streams"]:
                groups.setdefault(
                    entry["analysis"], []
                ).append(entry["stream"])
            saved[i] = groups
        sub: Dict[str, Any] = {"op": op, "link": [link[0], link[1]]}
        if rid is not None:
            sub["rid"] = rid
        deltas: List[Dict[str, Any]] = []
        try:
            for host in self.hosts:
                deltas.append(self._forward(host, sub))
        except ReproError:
            self._compensate_link(op, link, saved, rid)
            raise
        self._set_failed_links(new_failed)
        outcome = self._merge_link_outcomes(deltas)
        gone = set(outcome["evicted"]) | set(outcome["disconnected"])
        for sid in sorted(gone):
            if sid in self.owner:
                del self.owner[sid]
        # Every survivor's channel set may have changed: rebuild the
        # placement index wholesale under the new shared route table.
        self.index = ChannelIndex()
        for sid in sorted(self.owner):
            self.index.add(sid, self._spec_channels(specs[sid]))
        self._record_applied(rid, outcome)
        response = dict(outcome)
        response["failed_links"] = self.links_spec()
        response["admitted"] = len(self.owner)
        return response

    def _compensate_link(
        self,
        op: str,
        link: Tuple[int, int],
        saved: Dict[int, Dict[str, List[dict]]],
        rid: Optional[str],
    ) -> None:
        """Undo a partially broadcast link op so the client's error means
        "no shard changed".

        Shards are *probed* rather than trusted from the forward loop's
        bookkeeping — a worker can journal the op and die before acking
        — and every shard that durably applied it gets the inverse op
        plus re-admission of whatever streams the swap evicted (captured
        pre-broadcast; subsets of the feasible pre-op set). The rid is
        dropped everywhere so a client retry re-applies cleanly.
        """
        inverse = "restore_link" if op == "fail_link" else "fail_link"
        for shard, host in enumerate(self.hosts):
            links = self._probe_stable(
                lambda h=host: self._forward(h, {"op": "links"})
            )
            have = {
                normalize_link(int(u), int(v))
                for u, v in links["failed_links"]
            }
            applied = (link in have) if op == "fail_link" else (
                link not in have
            )
            if not applied:
                continue
            self._probe_stable(lambda h=host: self._forward(
                h, {"op": inverse, "link": [link[0], link[1]]}
            ))
            all_ids = [
                int(s["id"])
                for group in saved[shard].values() for s in group
            ]
            held = set(self._probe_stable(
                lambda h=host: self._held_ids(h, all_ids)
            ))
            for name in sorted(saved[shard]):
                missing = [
                    s for s in saved[shard][name]
                    if int(s["id"]) not in held
                ]
                if not missing:
                    continue
                response = self._forward(
                    host,
                    {"op": "admit", "streams": missing, "analysis": name},
                )
                if not response["admitted"]:  # pragma: no cover
                    raise ReproError(
                        f"link-op rollback re-admission of "
                        f"{[e['id'] for e in missing]} rejected on shard "
                        f"{shard}; state diverged from the journal"
                    )
            if rid is not None:
                host.drop_rid(rid)

    def _merged_report(self) -> Dict[str, Any]:
        """The tenant-wide feasibility report, merged across shards.

        Identical to a single engine's ``report`` over the union: each
        stream's verdict is computed against its full closure (the
        component invariant), and ``success`` is the conjunction.
        """
        success = True
        streams: Dict[str, Any] = {}
        total = 0
        for host in self.hosts:
            sub = self._forward(host, {"op": "report"})
            success = success and sub["report"]["success"]
            streams.update(sub["report"]["streams"])
            total += sub["admitted"]
        report = {
            "success": success,
            "streams": {k: streams[k] for k in sorted(streams, key=int)},
        }
        return {"report": report, "admitted": total}

    def _op_snapshot(self) -> Dict[str, Any]:
        paths = []
        cleared = False
        for host in self.hosts:
            sub = self._forward(host, {"op": "snapshot"})
            paths.append(sub["path"])
            cleared = cleared or sub.get("degraded_cleared", False)
        response: Dict[str, Any] = {
            "paths": paths, "streams": len(self.owner),
        }
        if cleared:
            response["degraded_cleared"] = True
        return response

    # ------------------------------------------------------------------ #
    # Fingerprint + lifecycle
    # ------------------------------------------------------------------ #

    def fingerprint(self) -> Tuple[str, Dict[str, Any]]:
        """``(sha256, spec)`` over the tenant's merged state.

        Byte-identical to :meth:`EngineHost.fingerprint` on a single
        engine holding the same streams — the acceptance check the
        equivalence and failover tests assert.
        """
        report = self.handle_request({"op": "report"})
        if not report.get("ok"):  # pragma: no cover - defensive
            raise ReproError(f"report failed while fingerprinting: {report}")
        streams: Dict[str, Any] = {}
        for sid in sorted(self.owner):
            query = self.handle_request({"op": "query", "stream": sid})
            if not query.get("ok"):  # pragma: no cover - defensive
                raise ReproError(f"query {sid} failed: {query}")
            streams[str(sid)] = {
                "stream": query["stream"],
                "upper_bound": query["upper_bound"],
                "feasible": query["feasible"],
                "slack": query["slack"],
                "closure": query["closure"],
            }
        spec = {
            "streams": streams,
            "next_id": self._next_id,
            "report": report["report"],
            "admitted": report["admitted"],
            "failed_links": self.links_spec(),
        }
        blob = json.dumps(spec, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest(), spec

    def _gate_dead(self) -> None:
        if self.dead:
            raise ReproError(
                f"shard(s) {sorted(self.dead)} are down; fail over to "
                "their standbys"
            )

    def kill_host(self, shard: int) -> None:
        """Simulate a primary crash: the shard stops serving immediately.

        Nothing is flushed or closed — every committed journal record is
        already fsynced, which is exactly what a real process death
        leaves behind. Ops needing the shard fail until
        :meth:`replace_host` installs a successor.
        """
        if not 0 <= shard < len(self.hosts):
            raise ReproError(f"no shard {shard} (have {len(self.hosts)})")
        self.dead.add(shard)

    def replace_host(self, shard: int, host: Any) -> None:
        """Swap in a promoted host for a failed primary (failover)."""
        self.hosts[shard] = host
        self.dead.discard(shard)

    def detach_shard(self, shard: int) -> None:
        """Release the shard's journal for a parent-side takeover.

        In-process hosts just close; worker proxies evict the shard
        from their child process first, so a standby promotion never
        opens a journal a worker still writes (single-writer rule).
        """
        if not 0 <= shard < len(self.hosts):
            raise ReproError(f"no shard {shard} (have {len(self.hosts)})")
        self.hosts[shard].detach()

    def close(self) -> None:
        for host in self.hosts:
            host.close()


class Fleet:
    """All tenants: API-key routing, metrics rollup, lifecycle."""

    def __init__(
        self,
        tenants: List[TenantSpec],
        *,
        shards: int = 2,
        state_dir: Optional[Union[str, Path]] = None,
        incremental: Optional[bool] = None,
        fault_plane: Optional[FaultPlane] = None,
        workers: int = 0,
    ):
        if not tenants:
            raise ReproError("fleet needs at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ReproError(f"duplicate tenant names: {sorted(names)}")
        keys = [t.api_key for t in tenants]
        if len(set(keys)) != len(keys):
            raise ReproError("tenant api keys must be unique")
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self.workers = int(workers)
        self.supervisor = None
        if self.workers:
            # Worker-pool mode: shards execute in supervised child
            # processes; this process keeps only placement + routing.
            from .workers import WorkerShard, WorkerSupervisor

            if self.state_dir is None:
                raise ReproError(
                    "worker processes need a persistent fleet "
                    "(state_dir): journals are how restarts recover"
                )
            if fault_plane is not None:
                raise ReproError(
                    "fault_plane injection cannot cross the process "
                    "boundary; use the worker_kill chaos fault instead"
                )
            self.supervisor = WorkerSupervisor(self.state_dir, self.workers)
            for t in tenants:
                self.supervisor.assign_tenant(t.name, {
                    f"{t.name}/shard-{i}": {
                        "state_dir": str(
                            self.state_dir / t.name / f"shard-{i}"
                        ),
                        "topology": t.topology_spec,
                        "analysis": t.analysis,
                        "incremental": incremental,
                    }
                    for i in range(shards)
                })
            self.supervisor.start()
            try:
                self.tenants: Dict[str, TenantFleet] = {
                    t.name: TenantFleet(
                        t.name,
                        t.topology_spec,
                        shards=shards,
                        state_dir=self.state_dir / t.name,
                        analysis=t.analysis,
                        incremental=incremental,
                        shard_clients=[
                            WorkerShard(
                                self.supervisor, f"{t.name}/shard-{i}"
                            )
                            for i in range(shards)
                        ],
                    )
                    for t in tenants
                }
            except ReproError:
                self.supervisor.stop()
                raise
        else:
            self.tenants = {
                t.name: TenantFleet(
                    t.name,
                    t.topology_spec,
                    shards=shards,
                    state_dir=(
                        None if self.state_dir is None
                        else self.state_dir / t.name
                    ),
                    analysis=t.analysis,
                    incremental=incremental,
                    fault_plane=fault_plane,
                )
                for t in tenants
            }
        self._keys: Dict[str, str] = {t.api_key: t.name for t in tenants}

    def tenant_for_key(self, api_key: Optional[str]) -> Optional[str]:
        if api_key is None:
            return None
        return self._keys.get(api_key)

    def handle_request(
        self, tenant: str, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        tf = self.tenants.get(tenant)
        if tf is None:
            return error_response(
                request, f"unknown tenant {tenant!r}", code="auth"
            )
        return tf.handle_request(request)

    def healthy(self) -> bool:
        if self.supervisor is not None and not all(
            wp.alive for wp in self.supervisor.workers
        ):
            return False
        return not any(
            tf.dead or tf.degraded for tf in self.tenants.values()
        )

    def prometheus_text(self, extra=None) -> str:
        """Cross-shard Prometheus rollup, labelled by tenant and shard."""
        from ..obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        for tname in sorted(self.tenants):
            tf = self.tenants[tname]
            reg.counter(
                "repro_fleet_escalations_total",
                "Cross-shard admissions that triggered a component "
                "migration.",
                tenant=tname,
            ).value = float(tf.escalations)
            reg.counter(
                "repro_fleet_migrated_streams_total",
                "Streams moved between shards by escalations.",
                tenant=tname,
            ).value = float(tf.migrated_streams)
            reg.gauge(
                "repro_fleet_tenant_streams",
                "Streams currently admitted for the tenant.",
                tenant=tname,
            ).set(len(tf.owner))
            for op, count in sorted(tf.metrics.op_counts.items()):
                reg.counter(
                    "repro_fleet_ops_total",
                    "Requests handled by the fleet, by tenant and op.",
                    tenant=tname, op=op,
                ).value = float(count)
            shard_streams = [0] * len(tf.hosts)
            for shard_idx in tf.owner.values():
                shard_streams[shard_idx] += 1
            for i, host in enumerate(tf.hosts):
                shard = str(i)
                reg.gauge(
                    "repro_fleet_shard_streams",
                    "Streams admitted on the shard.",
                    tenant=tname, shard=shard,
                ).set(shard_streams[i])
                reg.gauge(
                    "repro_fleet_shard_degraded",
                    "1 while the shard is in read-only degraded mode.",
                    tenant=tname, shard=shard,
                ).set(1.0 if host.degraded else 0.0)
                try:
                    es = host.engine_stats()
                except ReproError:
                    # Worker down mid-scrape; the supervisor gauges on
                    # the gateway make that visible.
                    continue
                for field in ("ops", "admits", "rejects", "releases"):
                    reg.counter(
                        f"repro_fleet_shard_engine_{field}_total",
                        f"Engine {field} on the shard.",
                        tenant=tname, shard=shard,
                    ).value = float(es.get(field, 0))
        if extra is not None:
            extra(reg)
        return reg.render()

    def close(self) -> None:
        for tf in self.tenants.values():
            tf.close()
        if self.supervisor is not None:
            self.supervisor.stop()
