"""Sharded broker fleet: horizontal scale-out for the admission broker.

The paper's host processor is a single point of both failure and
throughput; this package grows it into a small fleet without giving up
the broker's defining property — bit-identical admission verdicts:

:mod:`repro.fleet.regions`
    :class:`ChannelIndex` — the dynamic channel-connected components of
    the admitted set, the sound unit of stream placement (Kim98 bounds
    only couple streams sharing channels, transitively; finding F-7).

:mod:`repro.fleet.shards`
    :class:`TenantFleet` / :class:`Fleet` — partition tenants across
    per-shard :class:`~repro.service.host.EngineHost` engines, keeping
    one component per shard via escalation-by-migration; verdicts and
    reports are byte-identical to a single engine holding the same set.

:mod:`repro.fleet.workers`
    :class:`WorkerSupervisor` / :class:`WorkerShard` — shard execution
    in supervised child processes (``Fleet(..., workers=N)``): one
    JSON-lines unix socket per worker, SIGKILL-safe restarts with
    journal recovery, per-core parallelism across tenants.

:mod:`repro.fleet.replication`
    :class:`ShardStandby` / :class:`StandbyPool` — journal-shipping warm
    standbys with SHA-256-verified promotion on failover.

:mod:`repro.fleet.gateway`
    :class:`GatewayServer` — the asyncio HTTP front end
    (``repro gateway``): per-tenant API keys, /healthz, Prometheus
    /metrics rollup, JSON admission API, kill/failover admin ops.

:mod:`repro.fleet.client`
    :class:`GatewayClient` — BrokerClient-compatible HTTP client, so
    ``repro load --target http://...`` replays the same churn workloads
    against the fleet.
"""

from .client import GatewayClient
from .gateway import GatewayServer
from .regions import ChannelIndex, entry_channels
from .replication import JournalTailer, ShardStandby, StandbyPool
from .shards import Fleet, TenantFleet, TenantSpec
from .workers import WorkerShard, WorkerSupervisor

__all__ = [
    "ChannelIndex",
    "entry_channels",
    "Fleet",
    "TenantFleet",
    "TenantSpec",
    "JournalTailer",
    "ShardStandby",
    "StandbyPool",
    "GatewayServer",
    "GatewayClient",
    "WorkerShard",
    "WorkerSupervisor",
]
