"""HTTP gateway: the fleet's front door (``repro gateway``).

A dependency-free asyncio HTTP/1.1 server (keep-alive, Content-Length
framing) exposing the broker protocol as a JSON-over-HTTP API:

``GET  /healthz``
    Liveness/consistency rollup: per tenant, shard count, dead shards,
    degraded flags, admitted streams, standby lag. ``200`` when every
    shard is up and writable, ``503`` otherwise. Unauthenticated (it
    leaks no tenant data beyond counts).
``GET  /metrics``
    Prometheus rollup across every tenant and shard (plus the gateway's
    own HTTP counters). Unauthenticated, like the broker's scrape port.
``POST /v1/{admit,release,query,report,stats,snapshot,hello}``
    The broker ops, one endpoint each: the JSON body carries the op's
    fields (``streams``, ``analysis``, ``ids``, ``rid``, ...), the
    ``X-API-Key`` header picks the tenant. Responses are the broker
    protocol's response objects verbatim, status 200 even for
    ``ok: false`` (protocol errors are data; HTTP status is transport).
``POST /v1/op``
    Generic passthrough: the body *is* a protocol request object. The
    churn loadgen drives this endpoint, which keeps its op stream
    byte-compatible with the raw socket broker.
``POST /admin/failover`` ``{"tenant": ..., "shard": N}``
    Promote the shard's warm standby (the primary must be dead). The
    API key must belong to the named tenant.
``POST /admin/kill`` ``{"tenant": ..., "shard": N}``
    Simulate a primary crash (testing/chaos; same auth rule).
``POST /admin/kill_worker`` ``{"worker": N}``
    SIGKILL worker process ``N`` (worker-pool mode only; any valid
    tenant key). The monitor task restarts it with journal recovery —
    the drill CI runs to prove supervised restarts converge.
``POST /v1/shutdown``
    Stop the gateway (any valid tenant key).

In the default in-process fleet every admission op executes
synchronously on the event-loop thread — the same single-writer model
as the broker's worker task, so decisions stay linearisable per tenant
without locks. In worker-pool mode (``repro gateway --workers N``) the
shards run in supervised child processes, so ops dispatch to a thread
pool under one asyncio lock per tenant: still single-writer *per
tenant*, but different tenants' admissions now run truly in parallel
across cores. Background tasks tail the journals into the warm standbys
and restart any worker that dies.
"""

from __future__ import annotations

import asyncio
import json
import logging
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..errors import ReproError
from ..obs.metrics import MetricsRegistry
from .replication import StandbyPool
from .shards import Fleet

__all__ = ["GatewayServer"]

logger = logging.getLogger(__name__)

_OPS = ("hello", "ping", "admit", "release", "query", "report",
        "snapshot", "stats", "fail_link", "restore_link", "links")
_MAX_BODY = 8 * 1024 * 1024


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class GatewayServer:
    """HTTP front end over a :class:`Fleet` (+ optional standbys)."""

    def __init__(
        self,
        fleet: Fleet,
        *,
        standbys: Optional[StandbyPool] = None,
        poll_interval: float = 0.2,
    ):
        self.fleet = fleet
        self.standbys = standbys
        self.poll_interval = poll_interval
        self.requests: Dict[Tuple[str, int], int] = {}
        self.auth_failures = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._stopping: Optional[asyncio.Event] = None
        self._poll_task: Optional[asyncio.Task] = None
        self._monitor_task: Optional[asyncio.Task] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._tenant_locks: Dict[str, asyncio.Lock] = {}
        self._clients: set = set()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self, host: str, port: int) -> None:
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._client, host=host, port=port
        )
        if self.standbys is not None:
            self._poll_task = asyncio.create_task(self._poll_standbys())
        if self.fleet.supervisor is not None:
            # Worker-pool mode: fleet ops block on a child-process RPC,
            # so they leave the event loop for a thread pool — one
            # tenant may run at a time (asyncio lock per tenant keeps
            # the single-writer order), different tenants in parallel.
            self._executor = ThreadPoolExecutor(
                max_workers=len(self.fleet.tenants) + 1,
                thread_name_prefix="gw-fleet",
            )
            self._monitor_task = asyncio.create_task(self._monitor_workers())

    @property
    def port(self) -> int:
        """The bound port (useful with port 0 in tests)."""
        assert self._server is not None
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            raise ReproError("gateway not started")
        assert self._stopping is not None
        await self._stopping.wait()
        # Let the connection that asked for shutdown flush its response
        # before its task is cancelled.
        await asyncio.sleep(0.05)
        await self.aclose()

    def request_shutdown(self) -> None:
        if self._stopping is not None:
            self._stopping.set()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._clients):
            task.cancel()
        if self._clients:
            await asyncio.gather(*self._clients, return_exceptions=True)
        self._clients.clear()
        for attr in ("_poll_task", "_monitor_task"):
            task = getattr(self, attr)
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
                setattr(self, attr, None)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self.fleet.close()

    async def _poll_standbys(self) -> None:
        assert self.standbys is not None
        while True:
            try:
                self.standbys.catch_up()
            except ReproError:  # pragma: no cover - defensive
                logger.exception("standby catch-up failed")
            await asyncio.sleep(self.poll_interval)

    async def _monitor_workers(self) -> None:
        """Respawn dead workers between requests, not just on the next
        request that happens to hit one (a wedged worker whose tenants
        are idle would otherwise stay down forever)."""
        supervisor = self.fleet.supervisor
        assert supervisor is not None and self._executor is not None
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.poll_interval)
            try:
                await loop.run_in_executor(
                    self._executor, supervisor.ensure_all
                )
            except ReproError:  # pragma: no cover - defensive
                logger.exception("worker respawn failed")

    async def _dispatch(
        self, tenant: str, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Run a fleet op: inline for in-process shards, via the thread
        pool (serialised per tenant) when shards live in workers."""
        if self._executor is None:
            return self.fleet.handle_request(tenant, request)
        lock = self._tenant_locks.setdefault(tenant, asyncio.Lock())
        loop = asyncio.get_running_loop()
        async with lock:
            return await loop.run_in_executor(
                self._executor, self.fleet.handle_request, tenant, request
            )

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #

    async def _client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._clients.add(task)
        try:
            while True:
                request_line = await reader.readline()
                if not request_line or not request_line.strip():
                    break
                try:
                    method, target, keep_alive, headers, body = (
                        await self._read_request(reader, request_line)
                    )
                except _HttpError as exc:
                    await self._respond(
                        writer, exc.status,
                        {"ok": False, "error": exc.message}, False,
                    )
                    break
                status, payload = await self._route(
                    method, target, headers, body
                )
                self.requests[(urlsplit(target).path, status)] = (
                    self.requests.get((urlsplit(target).path, status), 0) + 1
                )
                await self._respond(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
                if self._stopping is not None and self._stopping.is_set():
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError,
                asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._clients.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader, request_line: bytes
    ):
        parts = request_line.decode("latin-1").split()
        if len(parts) < 3:
            raise _HttpError(400, "malformed request line")
        method, target, version = parts[0], parts[1], parts[2]
        keep_alive = version.upper() != "HTTP/1.0"
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            if b":" in line:
                k, v = line.decode("latin-1").split(":", 1)
                headers[k.strip().lower()] = v.strip()
        if headers.get("connection", "").lower() == "close":
            keep_alive = False
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            raise _HttpError(413, "request body too large")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, keep_alive, headers, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
        keep_alive: bool,
    ) -> None:
        if isinstance(payload, str):
            body = payload.encode("utf-8")
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = (json.dumps(payload, separators=(",", ":")) + "\n").encode()
            ctype = "application/json"
        reason = {200: "OK", 400: "Bad Request", 401: "Unauthorized",
                  403: "Forbidden", 404: "Not Found",
                  405: "Method Not Allowed", 413: "Payload Too Large",
                  503: "Service Unavailable"}.get(status, "Error")
        writer.write(
            (
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: {'keep-alive' if keep_alive else 'close'}"
                "\r\n\r\n"
            ).encode("latin-1")
            + body
        )
        await writer.drain()

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    async def _route(
        self,
        method: str,
        target: str,
        headers: Dict[str, str],
        body: bytes,
    ) -> Tuple[int, Any]:
        split = urlsplit(target)
        path = split.path
        try:
            if path == "/healthz":
                return self._healthz()
            if path == "/metrics":
                return 200, self.fleet.prometheus_text(self._gateway_metrics)
            if path == "/v1/op" or path.startswith("/v1/") or (
                path.startswith("/admin/")
            ):
                tenant = self._authenticate(headers)
                payload = self._parse_body(body)
                if path.startswith("/admin/"):
                    return self._admin(path, tenant, payload)
                return await self._v1(
                    method, path, split.query, tenant, payload
                )
            return 404, {"ok": False, "error": f"no route {path!r}"}
        except _HttpError as exc:
            return exc.status, {"ok": False, "error": exc.message}
        except Exception as exc:  # pragma: no cover - defensive
            logger.exception("gateway error on %s %s", method, path)
            return 500, {"ok": False, "error": f"internal error: {exc!r}"}

    def _authenticate(self, headers: Dict[str, str]) -> str:
        key = headers.get("x-api-key")
        tenant = self.fleet.tenant_for_key(key)
        if tenant is None:
            self.auth_failures += 1
            raise _HttpError(
                401, "missing or unknown API key (X-API-Key header)"
            )
        return tenant

    @staticmethod
    def _parse_body(body: bytes) -> Dict[str, Any]:
        if not body:
            return {}
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"request body is not JSON: {exc}")
        if not isinstance(payload, dict):
            raise _HttpError(400, "request body must be a JSON object")
        return payload

    def _healthz(self) -> Tuple[int, Any]:
        tenants: Dict[str, Any] = {}
        healthy = True
        for name in sorted(self.fleet.tenants):
            tf = self.fleet.tenants[name]
            dead = sorted(tf.dead)
            degraded = [
                i for i, h in enumerate(tf.hosts)
                if i not in tf.dead and h.degraded
            ]
            tenants[name] = {
                "shards": len(tf.hosts),
                "admitted": len(tf.owner),
                "dead": dead,
                "degraded": degraded,
                "escalations": tf.escalations,
            }
            healthy = healthy and not dead and not degraded
        out: Dict[str, Any] = {"ok": healthy, "tenants": tenants}
        if self.standbys is not None:
            out["standbys"] = {
                f"{t}/{s}": sb.ops_applied
                for (t, s), sb in sorted(self.standbys.standbys.items())
            }
        if self.fleet.supervisor is not None:
            workers = []
            for wp in self.fleet.supervisor.workers:
                workers.append({
                    "index": wp.index,
                    "pid": wp.pid,
                    "alive": wp.alive,
                    "restarts": wp.restarts,
                    "shards": sorted(wp.assigned),
                    "journal_lag_bytes": self._worker_journal_lag(wp),
                })
                healthy = healthy and wp.alive
            out["workers"] = workers
            out["ok"] = healthy
        return (200 if healthy else 503), out

    def _worker_journal_lag(self, wp: Any) -> int:
        """Bytes of journal the standbys have not yet shipped, summed
        over the worker's shards (0 without standbys: nothing tails, so
        there is no lag to speak of)."""
        if self.standbys is None:
            return 0
        lag = 0
        for key, spec in wp.assigned.items():
            journal = Path(spec["state_dir"]) / "journal.jsonl"
            try:
                size = journal.stat().st_size
            except OSError:
                continue
            tenant, _, shard_name = key.partition("/")
            try:
                shard = int(shard_name.rsplit("-", 1)[1])
            except (IndexError, ValueError):  # pragma: no cover
                continue
            sb = self.standbys.standbys.get((tenant, shard))
            if sb is not None:
                lag += max(0, size - sb.tailer.offset)
        return lag

    def _gateway_metrics(self, reg: MetricsRegistry) -> None:
        for (path, status), count in sorted(self.requests.items()):
            reg.counter(
                "repro_gateway_http_requests_total",
                "HTTP requests handled by the gateway.",
                path=path, status=str(status),
            ).value = float(count)
        reg.counter(
            "repro_gateway_auth_failures_total",
            "Requests rejected for a missing or unknown API key.",
        ).value = float(self.auth_failures)
        if self.standbys is not None:
            for (tenant, shard), sb in sorted(
                self.standbys.standbys.items()
            ):
                reg.counter(
                    "repro_fleet_standby_ops_applied_total",
                    "Journal records shipped into the warm standby.",
                    tenant=tenant, shard=str(shard),
                ).value = float(sb.ops_applied)
        if self.fleet.supervisor is not None:
            for wp in self.fleet.supervisor.workers:
                worker = str(wp.index)
                reg.gauge(
                    "repro_fleet_worker_up",
                    "1 if the worker process is alive, else 0.",
                    worker=worker,
                ).value = 1.0 if wp.alive else 0.0
                reg.gauge(
                    "repro_fleet_worker_pid",
                    "PID of the worker process (changes on restart).",
                    worker=worker,
                ).value = float(wp.pid or 0)
                reg.counter(
                    "repro_fleet_worker_restarts_total",
                    "Supervised restarts of the worker process.",
                    worker=worker,
                ).value = float(wp.restarts)
                reg.gauge(
                    "repro_fleet_worker_journal_lag_bytes",
                    "Journal bytes not yet shipped to warm standbys, "
                    "summed over the worker's shards.",
                    worker=worker,
                ).value = float(self._worker_journal_lag(wp))

    async def _v1(
        self,
        method: str,
        path: str,
        query: str,
        tenant: str,
        payload: Dict[str, Any],
    ) -> Tuple[int, Any]:
        if path == "/v1/shutdown":
            self.request_shutdown()
            return 200, {"ok": True, "stopping": True}
        if path == "/v1/op":
            if method != "POST":
                raise _HttpError(405, "use POST for /v1/op")
            if "op" not in payload:
                raise _HttpError(400, "request object needs an 'op' field")
            if payload["op"] == "shutdown":
                self.request_shutdown()
                return 200, {
                    "ok": True, "stopping": True, "id": payload.get("id"),
                }
            return 200, await self._dispatch(tenant, payload)
        op = path[len("/v1/"):]
        if op not in _OPS:
            return 404, {"ok": False, "error": f"no route {path!r}"}
        request = dict(payload)
        request["op"] = op
        # GET /v1/query?stream=N is the curl-friendly spelling.
        if query:
            for k, values in parse_qs(query).items():
                request.setdefault(
                    k, values[0] if len(values) == 1 else values
                )
        return 200, await self._dispatch(tenant, request)

    def _admin(
        self, path: str, tenant: str, payload: Dict[str, Any]
    ) -> Tuple[int, Any]:
        if path == "/admin/kill_worker":
            # Workers host shards of many tenants, so this is not a
            # tenant-scoped op — any valid API key may run the drill.
            supervisor = self.fleet.supervisor
            if supervisor is None:
                raise _HttpError(
                    400, "gateway runs in-process shards (no --workers)"
                )
            worker = payload.get("worker")
            n = len(supervisor.workers)
            if not isinstance(worker, int) or not 0 <= worker < n:
                raise _HttpError(
                    400, f"'worker' must be an index in [0, {n})"
                )
            pid = supervisor.kill_worker(worker)
            return 200, {"ok": True, "killed_worker": worker, "pid": pid}
        target = payload.get("tenant", tenant)
        if target != tenant:
            raise _HttpError(
                403, "API key does not belong to the target tenant"
            )
        tf = self.fleet.tenants[tenant]
        shard = payload.get("shard")
        if not isinstance(shard, int) or not 0 <= shard < len(tf.hosts):
            raise _HttpError(
                400, f"'shard' must be an index in [0, {len(tf.hosts)})"
            )
        if path == "/admin/kill":
            tf.kill_host(shard)
            return 200, {"ok": True, "killed": shard}
        if path == "/admin/failover":
            if self.standbys is None:
                raise _HttpError(400, "gateway runs without standbys")
            if shard not in tf.dead:
                # Explicit failover of a live primary is legal (planned
                # maintenance) but it must stop writing first.
                tf.kill_host(shard)
            try:
                self.standbys.promote(tenant, shard)
            except ReproError as exc:
                return 503, {"ok": False, "error": str(exc)}
            return 200, {
                "ok": True, "promoted": shard,
                "admitted": tf.hosts[shard].admitted_count(),
            }
        return 404, {"ok": False, "error": f"no route {path!r}"}
