"""Unit tests for soundness campaigns (repro.analysis.validation)."""

import pytest

from repro.analysis.validation import (
    CampaignResult,
    Violation,
    run_soundness_campaign,
)
from repro.errors import AnalysisError


class TestCampaign:
    def test_small_campaign_is_sound(self):
        result = run_soundness_campaign(
            workloads=2, num_streams=8, priority_levels=2,
            sim_time=4_000,
        )
        assert result.sound
        assert result.violations == ()
        assert result.checked > 0
        assert result.workloads == 2
        assert "sound: 0 violations" in result.summary()

    def test_random_phases_doubles_runs(self):
        with_phases = run_soundness_campaign(
            workloads=1, num_streams=6, priority_levels=2,
            sim_time=3_000, include_random_phases=True,
        )
        without = run_soundness_campaign(
            workloads=1, num_streams=6, priority_levels=2,
            sim_time=3_000, include_random_phases=False,
        )
        assert with_phases.checked == 2 * without.checked

    def test_zero_workloads_rejected(self):
        with pytest.raises(AnalysisError):
            run_soundness_campaign(workloads=0)

    def test_seed0_changes_workloads(self):
        a = run_soundness_campaign(workloads=1, num_streams=6,
                                   priority_levels=2, sim_time=2_000,
                                   include_random_phases=False, seed0=0)
        b = run_soundness_campaign(workloads=1, num_streams=6,
                                   priority_levels=2, sim_time=2_000,
                                   include_random_phases=False, seed0=50)
        assert a.checked > 0 and b.checked > 0


class TestViolationReporting:
    def test_violation_excess(self):
        v = Violation(seed=1, phase_seed=None, stream_id=3, priority=2,
                      observed_max=40, bound=33)
        assert v.excess == 7

    def test_unsound_summary_lists_violations(self):
        result = CampaignResult(
            workloads=1, checked=5, unbounded=0,
            violations=(
                Violation(seed=1, phase_seed=2, stream_id=3, priority=2,
                          observed_max=40, bound=33),
            ),
            wall_seconds=0.1,
        )
        assert not result.sound
        text = result.summary()
        assert "UNSOUND" in text
        assert "observed 40 > U=33 (+7)" in text
