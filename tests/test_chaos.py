"""End-to-end chaos campaign tests (``repro.faults.campaign``).

The unmarked tests keep a small two-stage campaign and the
crash-recovery property in the tier-1 run. The ``chaos``-marked tests
(full-size campaigns, a real SIGKILL against a ``repro serve``
subprocess) are excluded by default — select them with ``pytest -m
chaos`` (CI's chaos-smoke job and the nightly long campaign).
"""

import itertools
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.faults.campaign import (
    ChaosConfig,
    build_request,
    generate_schedule,
    run_chaos_campaign,
    run_oracle,
    state_fingerprint,
)
from repro.faults.plane import (
    SITE_JOURNAL_APPEND,
    FaultPlane,
    FaultSpec,
    InjectedCrash,
)
from repro.service.loadgen import BrokerClient
from repro.service.server import BrokerServer

#: Small but fully two-staged: high fault rates so every layer fires
#: even at this size (the default-size campaigns are chaos-marked).
SMALL = ChaosConfig(
    seed=3,
    ops=48,
    target_live=8,
    persistence_rate=0.5,
    protocol_rate=0.8,
    engine_rate=0.4,
    restart_rate=0.15,
    socket_fraction=0.25,
)


class TestSmallCampaign:
    def test_recovery_is_bit_identical(self, tmp_path):
        report = run_chaos_campaign(SMALL, state_dir=tmp_path / "state")
        assert report.ok, report.summary()
        assert report.bit_identical
        assert report.recovered_sha == report.oracle_sha
        assert report.acked_then_lost == []
        assert report.phantom_ids == []
        assert report.outcome_mismatches == 0
        assert report.committed == SMALL.ops
        assert report.layers_covered == 3
        assert report.faults_total > 0
        assert report.restarts > 0

    def test_campaign_is_reproducible(self):
        first = run_chaos_campaign(SMALL).to_dict()
        second = run_chaos_campaign(SMALL).to_dict()
        first.pop("seconds"), second.pop("seconds")
        assert first == second

    def test_different_seed_different_schedule(self):
        a = generate_schedule(ChaosConfig(seed=1, ops=10))
        b = generate_schedule(ChaosConfig(seed=2, ops=10))
        assert a != b
        assert [e.rid for e in a] == [f"c1-{i}" for i in range(10)]

    def test_report_serialises(self):
        report = run_chaos_campaign(
            ChaosConfig(seed=4, ops=12, socket_fraction=0.0)
        )
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ok"] is True
        assert payload["faults"]["total"] == report.faults_total
        assert "bit-identical" in report.summary()


class TestCrashRecoveryProperty:
    """Kill the broker around every ``kill_every``-th mutation, snapshot
    every ``snap_every`` ops, and demand recovery always lands on the
    fault-free oracle's exact state."""

    @pytest.mark.parametrize("kill_every,snap_every", [
        (1, 0),   # crash on every mutation, never snapshot
        (2, 3),
        (3, 5),
        (5, 2),   # frequent snapshots, rare crashes
    ])
    def test_recovery_matches_oracle(self, tmp_path, kill_every,
                                     snap_every):
        cfg = ChaosConfig(seed=9, ops=24, target_live=6,
                          socket_fraction=0.0)
        schedule = generate_schedule(cfg)
        oracle_sha, _ = run_oracle(cfg, schedule)

        state = tmp_path / f"state-{kill_every}-{snap_every}"
        plane = FaultPlane(seed=cfg.seed)
        kinds = itertools.cycle(("torn_write", "crash_after_append"))
        server = BrokerServer(cfg.topology_spec(), state_dir=state,
                              fault_plane=plane)
        live, restarts = [], 0
        for i, entry in enumerate(schedule):
            if snap_every and i and i % snap_every == 0:
                assert server.handle_request({"op": "snapshot"})["ok"]
            if i % kill_every == 0:
                plane.arm(SITE_JOURNAL_APPEND, FaultSpec(next(kinds)))
            request = build_request(entry, live,
                                    target_live=cfg.target_live)
            response = None
            for _ in range(8):
                try:
                    response = server.handle_request(request)
                except InjectedCrash:
                    restarts += 1
                    server.state.close()
                    server = BrokerServer(cfg.topology_spec(),
                                          state_dir=state,
                                          fault_plane=plane)
                    continue
                break
            assert response is not None and response["ok"], response
            plane.disarm(SITE_JOURNAL_APPEND)
            if request["op"] == "admit":
                if response.get("admitted"):
                    live.extend(response["ids"])
            else:
                for sid in request["ids"]:
                    live.remove(sid)
        server.state.close()
        assert restarts > 0  # the parametrisation must actually kill

        recovered = BrokerServer(cfg.topology_spec(), state_dir=state)
        sha, spec = state_fingerprint(recovered)
        next_id = recovered.engine.next_id
        recovered.state.close()
        assert sha == oracle_sha
        assert sorted(int(s) for s in spec["streams"]) == sorted(live)

        # Recovery is deterministic: the first recovery above compacted,
        # so two further recoveries replay the same snapshot and must
        # agree on the state hash, the next_id high-water mark and every
        # engine gauge.
        def counters(server):
            # Phase timings (*_seconds) are wall-clock measurements, not
            # deterministic gauges — strip them before comparing.
            return {
                k: v for k, v in server.engine.stats.to_dict().items()
                if not k.endswith("_seconds")
            }

        again = BrokerServer(cfg.topology_spec(), state_dir=state)
        gauges = counters(again)
        assert again.engine.next_id == next_id
        assert state_fingerprint(again)[0] == oracle_sha
        again.state.close()
        third = BrokerServer(cfg.topology_spec(), state_dir=state)
        assert counters(third) == gauges
        assert third.engine.next_id == next_id
        third.state.close()


@pytest.mark.chaos
class TestFullCampaigns:
    """Default-size campaigns: >= 50 faults over all three layers."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_default_campaign(self, seed):
        report = run_chaos_campaign(ChaosConfig(seed=seed))
        assert report.ok, report.summary()
        assert report.faults_total >= 50
        assert report.layers_covered == 3
        assert report.duplicate_acks > 0
        assert report.degraded_recoveries > 0
        assert report.restarts > 0


@pytest.mark.chaos
class TestSubprocessSigkill:
    """The one non-simulated kill: SIGKILL a real ``repro serve``
    process mid-session and recover its successor from disk."""

    def _serve(self, sock, state):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--socket", str(sock),
             "--mesh", "6x6", "--state-dir", str(state)],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )
        deadline = time.monotonic() + 30
        while not Path(sock).exists():
            if proc.poll() is not None or time.monotonic() > deadline:
                out = proc.stdout.read().decode(errors="replace")
                raise AssertionError(f"serve did not come up: {out}")
            time.sleep(0.05)
        return proc

    def test_sigkill_recovery_and_retry_dedupe(self, tmp_path):
        sock = tmp_path / "broker.sock"
        state = tmp_path / "state"
        proc = self._serve(sock, state)
        try:
            with BrokerClient.wait_for_unix(sock) as client:
                for i in range(5):
                    resp = client.check(
                        "admit", rid=f"kill-{i}",
                        streams=[{"src": i, "dst": i + 12, "priority": 1,
                                  "period": 200, "length": 3,
                                  "deadline": 200}],
                    )
                    assert resp["admitted"]
                before = client.check("report")
        finally:
            proc.kill()
            proc.wait(timeout=30)

        proc = self._serve(sock, state)
        try:
            with BrokerClient.wait_for_unix(sock) as client:
                after = client.check("report")
                assert after["report"] == before["report"]
                assert after["admitted"] == 5
                # The lost-ack retry of the final admit deduplicates.
                dup = client.check(
                    "admit", rid="kill-4",
                    streams=[{"src": 4, "dst": 16, "priority": 1,
                              "period": 200, "length": 3,
                              "deadline": 200}],
                )
                assert dup["duplicate"] and dup["ids"] == [4]
                client.check("shutdown")
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
                proc.wait(timeout=30)
