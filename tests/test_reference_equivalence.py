"""Equivalence of the vectorised timing-diagram against the paper's
literal pseudocode (tests/reference.py), over hypothesis-generated inputs.

This is the strongest internal check of the reproduction's core data
structure: two independently written implementations — one transcribed
cell by cell from the paper's ``Generate_Init_Diagram``, one vectorised
with cumulative-sum ranking — must produce bit-identical grids for every
stream set, horizon, and removed-instance set.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.streams import MessageStream
from repro.core.timing_diagram import generate_init_diagram
from tests.reference import generate_init_diagram_reference


@st.composite
def diagram_cases(draw):
    n = draw(st.integers(min_value=0, max_value=6))
    rows = []
    for i in range(n):
        rows.append(MessageStream(
            stream_id=i, src=0, dst=1,
            priority=n - i,  # strictly decreasing
            period=draw(st.integers(2, 30)),
            length=draw(st.integers(1, 12)),
            deadline=100,
        ))
    dtime = draw(st.integers(1, 150))
    removed = {}
    for s in rows:
        if draw(st.booleans()):
            max_inst = dtime // s.period + 1
            removed[s.stream_id] = set(draw(st.lists(
                st.integers(0, max_inst), max_size=3
            )))
    return tuple(rows), dtime, removed


class TestEquivalence:
    @given(case=diagram_cases())
    @settings(max_examples=200, deadline=None)
    def test_grids_identical(self, case):
        rows, dtime, removed = case
        fast = generate_init_diagram(99, rows, dtime, removed=removed)
        slow = generate_init_diagram_reference(rows, dtime, removed)
        assert np.array_equal(fast.to_grid(), slow)

    def test_paper_fig4_grid(self):
        """Spot check on the Fig. 4 streams."""
        rows = (
            MessageStream(1, 0, 1, priority=3, period=10, length=2,
                          deadline=10),
            MessageStream(2, 0, 1, priority=2, period=15, length=3,
                          deadline=15),
            MessageStream(3, 0, 1, priority=1, period=13, length=4,
                          deadline=13),
        )
        fast = generate_init_diagram(4, rows, 40)
        slow = generate_init_diagram_reference(rows, 40)
        assert np.array_equal(fast.to_grid(), slow)

    @given(case=diagram_cases())
    @settings(max_examples=100, deadline=None)
    def test_instance_records_match_grid(self, case):
        """Instance records must restate exactly the grid's ALLOCATED and
        WAITING cells of their row."""
        rows, dtime, removed = case
        d = generate_init_diagram(99, rows, dtime, removed=removed)
        for row, stream in enumerate(d.row_streams):
            alloc = set()
            wait = set()
            for inst in d.instances[stream.stream_id]:
                alloc.update(inst.allocated)
                wait.update(inst.waiting)
            assert alloc == set(np.flatnonzero(d.allocated[row]).tolist())
            assert wait == set(np.flatnonzero(d.waiting[row]).tolist())


@st.composite
def modify_cases(draw):
    """Random stream sets with synthetic channel structure rich enough to
    produce indirect blocking chains."""
    from repro.core.hpset import build_all_hp_sets, direct_blockers
    from repro.core.streams import StreamSet

    n = draw(st.integers(min_value=2, max_value=6))
    streams = StreamSet()
    channels = {}
    n_links = draw(st.integers(1, 5))
    for i in range(n):
        streams.add(MessageStream(
            stream_id=i, src=0, dst=1,
            priority=draw(st.integers(1, 4)),
            period=draw(st.integers(5, 40)),
            length=draw(st.integers(1, 8)),
            deadline=draw(st.integers(20, 120)),
        ))
        links = draw(st.sets(st.integers(0, n_links - 1), min_size=1,
                             max_size=n_links))
        channels[i] = frozenset(("l", x) for x in links)
    blockers = direct_blockers(streams, channels)
    hps = build_all_hp_sets(streams, channels=channels)
    return streams, blockers, hps


class TestModifyEquivalence:
    @given(case=modify_cases())
    @settings(max_examples=120, deadline=None)
    def test_modify_matches_reference(self, case):
        from repro.core.modify import modify_diagram
        from tests.reference import (
            _grid_upper_bound,
            modify_diagram_reference,
        )

        streams, blockers, hps = case
        for owner in streams:
            hp = hps[owner.stream_id]
            if not hp.indirect_ids():
                continue
            dtime = owner.deadline
            fast_diag, fast_removed = modify_diagram(
                owner, hp, streams, blockers, dtime
            )
            slow_grid, slow_removed = modify_diagram_reference(
                owner, hp, streams, blockers, dtime
            )
            assert fast_removed == slow_removed
            assert np.array_equal(fast_diag.to_grid(), slow_grid)
            assert owner.latency is None or fast_diag.upper_bound(
                owner.latency
            ) == _grid_upper_bound(slow_grid, owner.latency, dtime)
