"""Shared fixtures: the paper's section 4.4 worked example and common
topology objects.

The example constants were reconstructed from the OCR-damaged paper text by
requiring the printed network latencies (``L = hops + C - 1`` under X-Y
routing) and the final bounds ``U = (7, 8, 26, 20, 33)`` to match exactly —
see DESIGN.md. ``PAPER_HP_OVERRIDE`` injects the HP sets exactly as printed
in the paper (its ``HP_3`` omits ``M_2`` despite a path overlap — a
documented inconsistency in the original).
"""

import pytest

from repro.core.hpset import HPEntry, HPSet
from repro.core.streams import MessageStream, StreamSet
from repro.topology import Mesh2D, XYRouting

#: (src_xy, dst_xy, P, T, C, D, L) for M0..M4 of section 4.4.
PAPER_EXAMPLE = [
    ((7, 3), (7, 7), 5, 15, 4, 15, 7),
    ((1, 1), (5, 4), 4, 10, 2, 10, 8),
    ((2, 1), (7, 5), 3, 40, 4, 40, 12),
    ((4, 1), (8, 5), 2, 45, 9, 45, 16),
    ((6, 1), (9, 3), 1, 50, 6, 50, 10),
]

#: Final bounds the paper reports for the example.
PAPER_EXAMPLE_U = {0: 7, 1: 8, 2: 26, 3: 20, 4: 33}


@pytest.fixture(scope="session")
def mesh10():
    return Mesh2D(10, 10)


@pytest.fixture(scope="session")
def xy10(mesh10):
    return XYRouting(mesh10)


@pytest.fixture()
def paper_streams(mesh10):
    """The five streams of the paper's section 4.4 example."""
    streams = StreamSet()
    for i, (s, r, p, t, c, d, latency) in enumerate(PAPER_EXAMPLE):
        streams.add(
            MessageStream(
                stream_id=i,
                src=mesh10.node_xy(*s),
                dst=mesh10.node_xy(*r),
                priority=p,
                period=t,
                length=c,
                deadline=d,
                latency=latency,
            )
        )
    return streams


@pytest.fixture()
def paper_hp_override():
    """The HP sets exactly as printed in the paper (section 4.4).

    Differs from the path-overlap rule in two places, both traced to the
    same printed-coordinate inconsistency (M2's route overlaps M3's):
    ``HP_3`` omits ``M_2``, and ``HP_4``'s indirect entry for ``M_0`` has
    intermediates ``(2)`` rather than ``(2, 3)``.
    """
    return {
        3: HPSet(3, [HPEntry.direct(1)]),
        4: HPSet(
            4,
            [
                HPEntry.indirect(0, [2]),
                HPEntry.indirect(1, [2, 3]),
                HPEntry.direct(2),
                HPEntry.direct(3),
            ],
        ),
    }
