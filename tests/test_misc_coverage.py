"""Edge-case tests for paths not covered by the per-module suites."""

import pytest

from repro.core.feasibility import FeasibilityAnalyzer
from repro.core.streams import MessageStream, StreamSet
from repro.core.timing_diagram import generate_init_diagram, refill_rows
from repro.errors import AnalysisError, SimulationError
from repro.sim import TraceRecorder, WormholeSimulator
from repro.topology import Mesh2D, XYRouting


@pytest.fixture(scope="module")
def net():
    mesh = Mesh2D(10, 10)
    return mesh, XYRouting(mesh)


def ms(i, mesh, src, dst, priority=1, period=100, length=5, deadline=None):
    return MessageStream(i, mesh.node_xy(*src), mesh.node_xy(*dst),
                         priority=priority, period=period, length=length,
                         deadline=deadline or period)


class TestRefillRows:
    def test_partial_refill_preserves_prefix(self):
        rows = (
            MessageStream(0, 0, 1, priority=3, period=10, length=2,
                          deadline=10),
            MessageStream(1, 0, 1, priority=2, period=15, length=3,
                          deadline=15),
            MessageStream(2, 0, 1, priority=1, period=13, length=4,
                          deadline=13),
        )
        d = generate_init_diagram(9, rows, 40)
        before_row0 = d.allocated[0].copy()
        refill_rows(d, {1: {0}}, start_row=1)
        # Row 0 untouched; row 1's first instance removed; row 2 compacted.
        assert (d.allocated[0] == before_row0).all()
        assert d.instances[1][0].index == 1
        assert d.instances[2][0].allocated[0] == 3  # moved into freed slots

    def test_full_refill_equals_generate(self):
        rows = (
            MessageStream(0, 0, 1, priority=2, period=9, length=3,
                          deadline=9),
            MessageStream(1, 0, 1, priority=1, period=7, length=2,
                          deadline=7),
        )
        d = generate_init_diagram(9, rows, 30)
        refill_rows(d, {}, start_row=0)
        fresh = generate_init_diagram(9, rows, 30)
        assert (d.allocated == fresh.allocated).all()
        assert (d.waiting == fresh.waiting).all()

    def test_bad_start_row(self):
        d = generate_init_diagram(9, (), 10)
        with pytest.raises(AnalysisError):
            refill_rows(d, {}, start_row=5)


class TestAnalyzerEdges:
    def test_diagram_for_horizon_override(self, net):
        mesh, rt = net
        streams = StreamSet([ms(0, mesh, (0, 0), (4, 0))])
        an = FeasibilityAnalyzer(streams, rt)
        d, _ = an.diagram_for(0, horizon=7)
        assert d.dtime == 7
        d2, _ = an.diagram_for(0)
        assert d2.dtime == streams[0].deadline

    def test_fixpoint_flag_threads_through(self, net):
        mesh, rt = net
        streams = StreamSet([
            ms(0, mesh, (0, 0), (4, 0), priority=3, period=30, length=5),
            ms(1, mesh, (1, 0), (5, 0), priority=2, period=40, length=5),
            ms(2, mesh, (4, 0), (8, 0), priority=1, period=200, length=5,
               deadline=400),
        ])
        a = FeasibilityAnalyzer(streams, rt, modify_fixpoint=True)
        b = FeasibilityAnalyzer(streams, rt, modify_fixpoint=False)
        ua, ub = a.upper_bound(2), b.upper_bound(2)
        assert 0 < ua <= ub

    def test_verdict_repr_fields(self, net):
        mesh, rt = net
        streams = StreamSet([ms(0, mesh, (0, 0), (4, 0))])
        verdict = FeasibilityAnalyzer(streams, rt).cal_u(0)
        assert verdict.horizon == streams[0].deadline
        assert verdict.removed_instances == {}


class TestSimulatorEdges:
    def test_release_message_validates_nodes(self, net):
        mesh, rt = net
        streams = StreamSet([ms(0, mesh, (0, 0), (4, 0))])
        sim = WormholeSimulator(mesh, rt, streams)
        bad = MessageStream(9, 0, 9_999, priority=1, period=10, length=1,
                            deadline=10)
        with pytest.raises(Exception):
            sim.release_message(bad, 0)

    def test_incremental_runs(self, net):
        mesh, rt = net
        streams = StreamSet([ms(0, mesh, (0, 0), (4, 0), period=50)])
        sim = WormholeSimulator(mesh, rt, streams)
        sim.release_message(streams[0], 0)
        sim.release_message(streams[0], 50)
        sim.run(30)
        assert sim.stats.stream_stats(0).count == 1
        sim.run(120)
        assert sim.stats.stream_stats(0).count == 2

    def test_trace_records_retransmit_releases(self, net):
        mesh, rt = net
        streams = StreamSet([
            ms(0, mesh, (0, 1), (6, 1), priority=1, period=45, length=40,
               deadline=5_000),
            ms(1, mesh, (1, 1), (5, 1), priority=2, period=100, length=5,
               deadline=5_000),
        ])
        trace = TraceRecorder()
        sim = WormholeSimulator(mesh, rt, streams, vc_mode="preempt_kill",
                                trace=trace)
        sim.simulate_streams(3_000)
        if sim.retransmissions:
            # Retransmitted clones appear in the trace with the original
            # release time, and every finished trace is consistent.
            finished = trace.finished()
            assert all(t.finish >= t.release for t in finished)

    def test_li_mode_high_priority_steals_lower_vcs(self, net):
        """Li's rule: a high-priority header may claim a lower-indexed VC
        when its own class is occupied, keeping it moving where the paper's
        fixed mapping would block."""
        mesh, rt = net
        # Two messages of top priority back to back on the same port plus
        # one low-priority stream elsewhere (to create 2 VC indices).
        streams = StreamSet([
            ms(0, mesh, (0, 0), (5, 0), priority=2, period=18, length=15,
               deadline=5_000),
            ms(1, mesh, (0, 9), (5, 9), priority=1, period=500, length=5,
               deadline=5_000),
        ])
        li = WormholeSimulator(mesh, rt, streams, vc_mode="li")
        fixed = WormholeSimulator(mesh, rt, streams)
        st_li = li.simulate_streams(2_000)
        st_fx = fixed.simulate_streams(2_000)
        # Back-to-back instances of stream 0 self-queue in both modes, but
        # Li may start the next header into the free lower VC earlier.
        assert st_li.stream_stats(0).count == st_fx.stream_stats(0).count
        assert st_li.mean_delay(0) <= st_fx.mean_delay(0)


class TestCLIExtra:
    def test_check_writes_report(self, tmp_path, capsys):
        import json

        from repro.cli import main

        spec = {
            "topology": {"type": "hypercube", "dimension": 3},
            "streams": [{"id": 0, "src": 0, "dst": 7, "priority": 1,
                         "period": 60, "length": 4, "deadline": 60}],
        }
        problem = tmp_path / "p.json"
        problem.write_text(json.dumps(spec))
        out = tmp_path / "report.json"
        assert main(["check", str(problem), "--out", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["success"] is True
        assert report["streams"]["0"]["upper_bound"] == 3 + 4 - 1
