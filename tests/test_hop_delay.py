"""Tests for router pipeline depth (hop_delay) in the simulator.

``hop_delay = r`` models an r-flit-time router pipeline; the matching
analytic latency model is :class:`repro.core.latency.PipelinedLatency`
(``L = r*h + C - 1``). Sustaining one flit per cycle through an r-deep
pipeline needs ``vc_capacity >= r + 1`` (each flit dwells r cycles per
buffer); shallower buffers insert bubbles — both behaviours are asserted.
"""

import pytest

from repro.core.feasibility import FeasibilityAnalyzer
from repro.core.latency import PipelinedLatency
from repro.core.streams import MessageStream, StreamSet
from repro.errors import SimulationError
from repro.sim import WormholeSimulator
from repro.topology import Mesh2D, XYRouting


@pytest.fixture(scope="module")
def net():
    mesh = Mesh2D(10, 10)
    return mesh, XYRouting(mesh)


def ms(i, mesh, src, dst, priority=1, period=10_000, length=5):
    return MessageStream(i, mesh.node_xy(*src), mesh.node_xy(*dst),
                         priority=priority, period=period, length=length,
                         deadline=period)


class TestHopDelay:
    @pytest.mark.parametrize("r", [1, 2, 3, 4])
    def test_no_load_latency_matches_pipelined_model(self, net, r):
        mesh, rt = net
        s = ms(0, mesh, (0, 0), (4, 3), length=5)
        sim = WormholeSimulator(mesh, rt, StreamSet([s]),
                                hop_delay=r, vc_capacity=r + 1)
        stats = sim.simulate_streams(1)
        model = PipelinedLatency(r)
        assert stats.samples(0) == (model.latency(s, 7),)

    def test_shallow_buffers_bubble(self, net):
        mesh, rt = net
        s = ms(0, mesh, (0, 0), (4, 3), length=10)
        deep = WormholeSimulator(mesh, rt, StreamSet([s]),
                                 hop_delay=2, vc_capacity=3)
        shallow = WormholeSimulator(mesh, rt, StreamSet([s]),
                                    hop_delay=2, vc_capacity=2)
        d_deep = deep.simulate_streams(1).samples(0)[0]
        d_shallow = shallow.simulate_streams(1).samples(0)[0]
        assert d_deep == 2 * 7 + 10 - 1
        assert d_shallow > d_deep

    def test_invalid_hop_delay(self, net):
        mesh, rt = net
        s = StreamSet([ms(0, mesh, (0, 0), (1, 0))])
        with pytest.raises(SimulationError):
            WormholeSimulator(mesh, rt, s, hop_delay=0)

    def test_preemption_still_exact_with_pipeline(self, net):
        """A high-priority stream sees exactly its pipelined no-load
        latency regardless of low-priority load."""
        mesh, rt = net
        low = ms(0, mesh, (0, 1), (5, 1), priority=1, period=60, length=30)
        high = ms(1, mesh, (1, 1), (4, 1), priority=2, period=150, length=5)
        sim = WormholeSimulator(mesh, rt, StreamSet([low, high]),
                                hop_delay=2, vc_capacity=3, warmup=500)
        stats = sim.simulate_streams(6_000)
        assert stats.max_delay(1) == 2 * 3 + 5 - 1

    def test_analysis_with_matching_latency_model_is_sound(self, net):
        """Bounds computed with PipelinedLatency(r) must cover delays
        simulated with hop_delay=r (the analysis only needs L to match the
        substrate; interference accounting is unchanged)."""
        mesh, rt = net
        streams = StreamSet([
            ms(0, mesh, (0, 0), (5, 0), priority=2, period=100, length=8),
            ms(1, mesh, (1, 0), (6, 0), priority=1, period=150, length=10),
        ])
        r = 3
        an = FeasibilityAnalyzer(streams, rt,
                                 latency_model=PipelinedLatency(r))
        bounds = {s.stream_id: an.upper_bound(s.stream_id)
                  for s in streams}
        sim = WormholeSimulator(mesh, rt, streams,
                                hop_delay=r, vc_capacity=r + 1)
        stats = sim.simulate_streams(3_000)
        for sid in stats.stream_ids():
            assert stats.max_delay(sid) <= bounds[sid]

    def test_queued_message_gated_after_promotion(self, net):
        """Messages promoted from the source queue still respect the
        injection pipeline depth."""
        mesh, rt = net
        s = ms(0, mesh, (0, 0), (2, 0), length=10, period=5)
        sim = WormholeSimulator(mesh, rt, StreamSet([s]),
                                hop_delay=2, vc_capacity=3)
        stats = sim.simulate_streams(60)
        delays = stats.samples(0)
        assert delays[0] == 2 * 2 + 10 - 1
        # Later messages queue; they can never beat the pipeline floor.
        assert all(d >= delays[0] for d in delays)
